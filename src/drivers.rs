//! Connector construction shared by the `gdprbench` and `gdpr-serve`
//! binaries: one `--db` selector covering every in-process variant plus
//! the `remote` network client.

use gdpr_core::{EngineHandle, GdprConnector};
use std::sync::Arc;

/// Databases `build_connector` accepts.
pub const DB_CHOICES: &str =
    "redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi|disk|disk-sharded|remote";

/// How to reach/configure the store behind the connector.
#[derive(Debug, Clone)]
pub struct ConnectorSpec {
    /// The `--db` selector.
    pub db: String,
    /// Harden the store config (strict TTL, read logging, encryption).
    pub compliant: bool,
    /// Shard count for the sharded variants.
    pub shards: usize,
    /// `host:port` of a running `gdpr-serve` (remote only).
    pub addr: Option<String>,
    /// Client connections to pool (remote only; defaults to 1).
    pub clients: usize,
    /// `Some(pre-shared key)` runs the remote transport encrypted
    /// (`SecureChannel` handshake before the first op); defaults from
    /// `GDPR_ENCRYPT` / `GDPR_ENCRYPT_KEY` like the server side.
    pub encrypt: Option<String>,
    /// Directory for on-disk state. `redis*` variants keep per-shard AOF
    /// files here (opened through [`kvstore::KvStore::open_persistent`],
    /// replaying any existing log); `disk*` variants keep their paged
    /// data files and WALs here (reopened through WAL recovery). Data
    /// survives restarts either way. `disk*` without `--data-dir` runs in
    /// a fresh scratch directory under the system temp dir.
    pub data_dir: Option<String>,
    /// Directory for metadata-index snapshot images (`redis-mi`,
    /// `redis-sharded`, `disk`, `disk-sharded`): the index recovers in
    /// O(index) when an image matches the reopened store, and `close()`
    /// persists it again.
    pub snapshot_dir: Option<String>,
    /// Pre-provision tenants `t0..t{N-1}` on the built engine (`--tenants
    /// N`), so multi-tenant benchmark traffic never pays first-op tenant
    /// setup. 0 = single-tenant (the default degenerate case).
    pub tenants: usize,
}

impl ConnectorSpec {
    pub fn new(db: impl Into<String>) -> ConnectorSpec {
        ConnectorSpec {
            db: db.into(),
            compliant: false,
            shards: gdpr_core::shard_count_from_env(),
            addr: None,
            clients: 1,
            encrypt: gdpr_server::secure::encrypt_key_from_env(),
            data_dir: None,
            snapshot_dir: None,
            tenants: 0,
        }
    }
}

/// The tenant ids `--tenants N` provisions and the benchmark drives:
/// `t0..t{N-1}`.
pub fn tenant_ids(n: usize) -> Vec<gdpr_core::tenant::TenantId> {
    (0..n)
        .map(|i| {
            gdpr_core::tenant::TenantId::new(format!("t{i}")).expect("generated tenant id is valid")
        })
        .collect()
}

/// Open one kvstore shard honoring `data_dir`: file-persistent (with AOF
/// replay) when set, plain in-memory otherwise.
fn open_kv_shard(
    spec: &ConnectorSpec,
    shard: usize,
    clock: clock::SharedClock,
) -> Result<std::sync::Arc<kvstore::KvStore>, String> {
    let mut config = if spec.compliant {
        kvstore::KvConfig::gdpr_compliant_in_memory()
    } else {
        kvstore::KvConfig::default()
    };
    if let Some(dir) = &spec.data_dir {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("--data-dir {dir:?}: {e}"))?;
        config.aof = kvstore::config::AofStorage::File(dir.join(format!("shard-{shard}.aof")));
        config.fsync = kvstore::FsyncPolicy::EverySec;
    }
    kvstore::KvStore::open_persistent(config, clock).map_err(|e| e.to_string())
}

/// Open `n` page stores honoring `data_dir` (scratch temp dir when
/// unset), sharing one clock. `--compliant` fsyncs the WAL on every
/// commit instead of relying on the OS cache.
fn open_disk_fleet(
    spec: &ConnectorSpec,
    n: usize,
) -> Result<Vec<std::sync::Arc<pagestore::PageStore>>, String> {
    let dir = match &spec.data_dir {
        Some(dir) => std::path::PathBuf::from(dir),
        None => connectors::registry::scratch_dir("serve-disk"),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("--data-dir {dir:?}: {e}"))?;
    let config = pagestore::PageStoreConfig {
        fsync_wal: spec.compliant,
        ..Default::default()
    };
    connectors::disk::open_store_fleet(&dir, n, config, clock::wall()).map_err(|e| e.to_string())
}

/// Print how each snapshot-recovered index came up — operators need to
/// see a fallback rebuild (it is the O(n) path the snapshot exists to
/// avoid).
fn report_recovery(name: &str, shard: usize, recovery: Option<&gdpr_core::IndexRecovery>) {
    if let Some(recovery) = recovery {
        println!("{name}: shard {shard}: {recovery}");
    }
}

/// Build a connector for `spec`. The returned handle is what `gdpr-serve`
/// serves and what the workload runner drives — in-process and remote
/// variants are interchangeable behind it.
pub fn build_connector(spec: &ConnectorSpec) -> Result<EngineHandle, String> {
    if spec.snapshot_dir.is_some()
        && !matches!(
            spec.db.as_str(),
            "redis-mi" | "redis-sharded" | "disk" | "disk-sharded"
        )
    {
        return Err(format!(
            "--index-snapshot-dir needs an engine-indexed persistent variant \
             (redis-mi|redis-sharded|disk|disk-sharded), not {}",
            spec.db
        ));
    }
    if spec.data_dir.is_some() && !(spec.db.starts_with("redis") || spec.db.starts_with("disk")) {
        return Err(format!(
            "--data-dir persists store state and needs a redis* or disk* variant, not {}",
            spec.db
        ));
    }
    let conn: Arc<dyn GdprConnector> = match spec.db.as_str() {
        "redis-sharded" | "redis-sharded-scan" => {
            let clock = clock::wall();
            let stores = (0..spec.shards.max(1))
                .map(|i| open_kv_shard(spec, i, clock.clone()))
                .collect::<Result<Vec<_>, String>>()?;
            let conn = if spec.db == "redis-sharded-scan" {
                connectors::ShardedRedisConnector::new(stores)
            } else if let Some(dir) = &spec.snapshot_dir {
                let conn =
                    connectors::ShardedRedisConnector::with_metadata_index_snapshots(stores, dir)
                        .map_err(|e| e.to_string())?;
                for i in 0..conn.shard_count() {
                    report_recovery("redis-sharded", i, conn.index_recovery(i));
                }
                Ok(conn)
            } else {
                connectors::ShardedRedisConnector::with_metadata_index(stores)
            }
            .map_err(|e| e.to_string())?;
            if spec.compliant {
                for i in 0..conn.shard_count() {
                    conn.store(i).start_expiration_driver();
                }
            }
            Arc::new(conn)
        }
        "redis" | "redis-mi" => {
            let store = open_kv_shard(spec, 0, clock::wall())?;
            if spec.compliant {
                store.start_expiration_driver();
            }
            if spec.db == "redis-mi" {
                let conn = if let Some(dir) = &spec.snapshot_dir {
                    let dir = std::path::Path::new(dir);
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("--index-snapshot-dir {dir:?}: {e}"))?;
                    let conn = connectors::RedisConnector::with_metadata_index_snapshot(
                        store,
                        dir.join("metaindex.snap"),
                    )
                    .map_err(|e| e.to_string())?;
                    report_recovery("redis-mi", 0, conn.index_recovery());
                    conn
                } else {
                    connectors::RedisConnector::with_metadata_index(store)
                        .map_err(|e| e.to_string())?
                };
                Arc::new(conn)
            } else {
                Arc::new(connectors::RedisConnector::new(store))
            }
        }
        "postgres" | "postgres-mi" => {
            let config = if spec.compliant {
                relstore::RelConfig::gdpr_compliant_in_memory()
            } else {
                relstore::RelConfig::default()
            };
            let database = relstore::Database::open(config).map_err(|e| e.to_string())?;
            let connector = if spec.db == "postgres-mi" {
                connectors::PostgresConnector::with_metadata_indices(database)
            } else {
                connectors::PostgresConnector::new(database)
            }
            .map_err(|e| e.to_string())?;
            Arc::new(connector)
        }
        "disk" => {
            let store = open_disk_fleet(spec, 1)?.pop().expect("one store");
            println!("disk: shard 0: {}", store.recovery());
            let conn = if let Some(dir) = &spec.snapshot_dir {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("--index-snapshot-dir {dir:?}: {e}"))?;
                let conn = connectors::DiskConnector::with_metadata_index_snapshot(
                    store,
                    dir.join("metaindex.snap"),
                )
                .map_err(|e| e.to_string())?;
                report_recovery("disk", 0, conn.index_recovery());
                conn
            } else {
                connectors::DiskConnector::with_metadata_index(store).map_err(|e| e.to_string())?
            };
            Arc::new(conn)
        }
        "disk-sharded" => {
            let stores = open_disk_fleet(spec, spec.shards.max(1))?;
            for (i, store) in stores.iter().enumerate() {
                println!("disk-sharded: shard {i}: {}", store.recovery());
            }
            let conn = if let Some(dir) = &spec.snapshot_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("--index-snapshot-dir {dir:?}: {e}"))?;
                let conn =
                    connectors::ShardedDiskConnector::with_metadata_index_snapshots(stores, dir)
                        .map_err(|e| e.to_string())?;
                for i in 0..conn.shard_count() {
                    report_recovery("disk-sharded", i, conn.index_recovery(i));
                }
                conn
            } else {
                connectors::ShardedDiskConnector::with_metadata_index(stores)
                    .map_err(|e| e.to_string())?
            };
            Arc::new(conn)
        }
        "remote" => {
            let addr = spec
                .addr
                .as_deref()
                .ok_or_else(|| "--db remote requires --addr HOST:PORT".to_string())?;
            Arc::new(
                connectors::RemoteConnector::connect_pool_with(
                    addr,
                    spec.clients.max(1),
                    spec.encrypt.as_deref(),
                )
                .map_err(|e| e.to_string())?,
            )
        }
        other => return Err(format!("unknown --db {other} (expected {DB_CHOICES})")),
    };
    for tenant in tenant_ids(spec.tenants) {
        conn.provision_tenant(&tenant)
            .map_err(|e| format!("provisioning tenant {tenant:?}: {e}"))?;
    }
    Ok(conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::{GdprQuery, Session};

    /// Every registry variant must be buildable through `--db` — the
    /// variant list lives in `connectors::registry`, so a backend added
    /// there without a driver arm fails here, and vice versa.
    #[test]
    fn builds_every_in_process_variant() {
        for db in connectors::registry::names() {
            let mut spec = ConnectorSpec::new(db);
            spec.shards = 2;
            let conn = build_connector(&spec).unwrap_or_else(|e| panic!("{db}: {e}"));
            assert_eq!(conn.record_count(), 0, "{db}");
            assert_eq!(conn.name(), db, "--db {db} built the wrong variant");
        }
        assert!(build_connector(&ConnectorSpec::new("bogus")).is_err());
        assert!(
            build_connector(&ConnectorSpec::new("remote")).is_err(),
            "remote without --addr must be refused"
        );
        assert!(
            DB_CHOICES.contains("disk|disk-sharded"),
            "usage text must advertise the disk variants"
        );
    }

    #[test]
    fn tenant_preprovisioning_registers_per_tenant_telemetry() {
        let mut spec = ConnectorSpec::new("redis-mi");
        spec.tenants = 3;
        let conn = build_connector(&spec).unwrap();
        let names: Vec<String> = conn
            .tenant_telemetry()
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        for t in ["t0", "t1", "t2"] {
            assert!(names.contains(&t.to_string()), "missing {t} in {names:?}");
        }
    }

    #[test]
    fn remote_spec_connects_to_a_served_engine() {
        let engine = build_connector(&ConnectorSpec::new("redis-mi")).unwrap();
        let server = gdpr_server::GdprServer::bind(
            engine,
            "127.0.0.1:0",
            gdpr_server::ServerConfig::default(),
        )
        .unwrap();
        let mut spec = ConnectorSpec::new("remote");
        spec.addr = Some(server.local_addr().to_string());
        spec.clients = 2;
        let conn = build_connector(&spec).unwrap();
        assert_eq!(conn.name(), "redis-mi");
        conn.execute(
            &Session::controller(),
            &GdprQuery::CreateRecord(gdpr_core::PersonalRecord::new(
                "k1",
                "d",
                gdpr_core::Metadata::new(
                    "neo",
                    vec!["ads".to_string()],
                    std::time::Duration::from_secs(60),
                ),
            )),
        )
        .unwrap();
        assert_eq!(conn.record_count(), 1);
        server.shutdown();
    }

    /// `--encrypt` on both ends talks; a plaintext spec against an
    /// encrypted server is refused at connect, not silently downgraded.
    #[test]
    fn remote_spec_encrypted_roundtrip_and_downgrade_refusal() {
        let engine = build_connector(&ConnectorSpec::new("redis-mi")).unwrap();
        let config = gdpr_server::ServerConfig {
            encrypt: Some("drv-psk".to_string()),
            ..Default::default()
        };
        let server = gdpr_server::GdprServer::bind(engine, "127.0.0.1:0", config).unwrap();
        let mut spec = ConnectorSpec::new("remote");
        spec.addr = Some(server.local_addr().to_string());
        spec.encrypt = Some("drv-psk".to_string());
        let conn = build_connector(&spec).unwrap();
        assert_eq!(conn.name(), "redis-mi");
        assert_eq!(conn.record_count(), 0);
        spec.encrypt = None;
        assert!(
            build_connector(&spec).is_err(),
            "plaintext client must not reach an encrypted server"
        );
        server.shutdown();
    }
}
