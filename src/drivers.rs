//! Connector construction shared by the `gdprbench` and `gdpr-serve`
//! binaries: one `--db` selector covering every in-process variant plus
//! the `remote` network client.

use gdpr_core::{EngineHandle, GdprConnector};
use std::sync::Arc;

/// Databases `build_connector` accepts.
pub const DB_CHOICES: &str =
    "redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi|remote";

/// How to reach/configure the store behind the connector.
#[derive(Debug, Clone)]
pub struct ConnectorSpec {
    /// The `--db` selector.
    pub db: String,
    /// Harden the store config (strict TTL, read logging, encryption).
    pub compliant: bool,
    /// Shard count for the sharded variants.
    pub shards: usize,
    /// `host:port` of a running `gdpr-serve` (remote only).
    pub addr: Option<String>,
    /// Client connections to pool (remote only; defaults to 1).
    pub clients: usize,
}

impl ConnectorSpec {
    pub fn new(db: impl Into<String>) -> ConnectorSpec {
        ConnectorSpec {
            db: db.into(),
            compliant: false,
            shards: gdpr_core::shard_count_from_env(),
            addr: None,
            clients: 1,
        }
    }
}

/// Build a connector for `spec`. The returned handle is what `gdpr-serve`
/// serves and what the workload runner drives — in-process and remote
/// variants are interchangeable behind it.
pub fn build_connector(spec: &ConnectorSpec) -> Result<EngineHandle, String> {
    let conn: Arc<dyn GdprConnector> = match spec.db.as_str() {
        "redis-sharded" | "redis-sharded-scan" => {
            let scan = spec.db == "redis-sharded-scan";
            let conn = if scan {
                let clock = clock::wall();
                let stores = (0..spec.shards.max(1))
                    .map(|_| {
                        kvstore::KvStore::open_with_clock(
                            if spec.compliant {
                                kvstore::KvConfig::gdpr_compliant_in_memory()
                            } else {
                                kvstore::KvConfig::default()
                            },
                            clock.clone(),
                        )
                        .map_err(|e| e.to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                connectors::ShardedRedisConnector::new(stores)
            } else if spec.compliant {
                connectors::ShardedRedisConnector::open_compliant(spec.shards)
            } else {
                connectors::ShardedRedisConnector::open(spec.shards)
            }
            .map_err(|e| e.to_string())?;
            if spec.compliant {
                for i in 0..conn.shard_count() {
                    conn.store(i).start_expiration_driver();
                }
            }
            Arc::new(conn)
        }
        "redis" | "redis-mi" => {
            let config = if spec.compliant {
                kvstore::KvConfig::gdpr_compliant_in_memory()
            } else {
                kvstore::KvConfig::default()
            };
            let store = kvstore::KvStore::open(config).map_err(|e| e.to_string())?;
            if spec.compliant {
                store.start_expiration_driver();
            }
            if spec.db == "redis-mi" {
                Arc::new(
                    connectors::RedisConnector::with_metadata_index(store)
                        .map_err(|e| e.to_string())?,
                )
            } else {
                Arc::new(connectors::RedisConnector::new(store))
            }
        }
        "postgres" | "postgres-mi" => {
            let config = if spec.compliant {
                relstore::RelConfig::gdpr_compliant_in_memory()
            } else {
                relstore::RelConfig::default()
            };
            let database = relstore::Database::open(config).map_err(|e| e.to_string())?;
            let connector = if spec.db == "postgres-mi" {
                connectors::PostgresConnector::with_metadata_indices(database)
            } else {
                connectors::PostgresConnector::new(database)
            }
            .map_err(|e| e.to_string())?;
            Arc::new(connector)
        }
        "remote" => {
            let addr = spec
                .addr
                .as_deref()
                .ok_or_else(|| "--db remote requires --addr HOST:PORT".to_string())?;
            Arc::new(
                connectors::RemoteConnector::connect_pool(addr, spec.clients.max(1))
                    .map_err(|e| e.to_string())?,
            )
        }
        other => return Err(format!("unknown --db {other} (expected {DB_CHOICES})")),
    };
    Ok(conn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::{GdprQuery, Session};

    #[test]
    fn builds_every_in_process_variant() {
        for db in [
            "redis",
            "redis-mi",
            "redis-sharded",
            "redis-sharded-scan",
            "postgres",
            "postgres-mi",
        ] {
            let mut spec = ConnectorSpec::new(db);
            spec.shards = 2;
            let conn = build_connector(&spec).unwrap_or_else(|e| panic!("{db}: {e}"));
            assert_eq!(conn.record_count(), 0, "{db}");
        }
        assert!(build_connector(&ConnectorSpec::new("bogus")).is_err());
        assert!(
            build_connector(&ConnectorSpec::new("remote")).is_err(),
            "remote without --addr must be refused"
        );
    }

    #[test]
    fn remote_spec_connects_to_a_served_engine() {
        let engine = build_connector(&ConnectorSpec::new("redis-mi")).unwrap();
        let server = gdpr_server::GdprServer::bind(
            engine,
            "127.0.0.1:0",
            gdpr_server::ServerConfig::default(),
        )
        .unwrap();
        let mut spec = ConnectorSpec::new("remote");
        spec.addr = Some(server.local_addr().to_string());
        spec.clients = 2;
        let conn = build_connector(&spec).unwrap();
        assert_eq!(conn.name(), "redis-mi");
        conn.execute(
            &Session::controller(),
            &GdprQuery::CreateRecord(gdpr_core::PersonalRecord::new(
                "k1",
                "d",
                gdpr_core::Metadata::new(
                    "neo",
                    vec!["ads".to_string()],
                    std::time::Duration::from_secs(60),
                ),
            )),
        )
        .unwrap();
        assert_eq!(conn.record_count(), 1);
        server.shutdown();
    }
}
