//! `gdpr-serve` — run any connector variant behind the GDPR wire protocol,
//! so GDPRbench (and any `GdprClient`) drives it over real sockets.
//!
//! ```sh
//! gdpr-serve --db redis-sharded --shards 8 --addr 127.0.0.1:7878
//! gdprbench run --db remote --addr 127.0.0.1:7878 --clients 8 --workload processor
//! ```
//!
//! With `--data-dir` the kvstore shards persist to per-shard AOF files
//! (replayed on the next start) and the `disk*` variants keep their paged
//! data files and write-ahead logs there (reopened through checksummed
//! WAL recovery, torn tails truncated away); with `--index-snapshot-dir`
//! the engine-indexed variants (`redis-mi`, `redis-sharded`, `disk`,
//! `disk-sharded`) recover their metadata indexes from checksummed
//! snapshot images in O(index) instead of rescanning the store, and write
//! fresh images on graceful shutdown.
//!
//! When either directory is configured the process owns durable state, so
//! it watches stdin for a graceful-shutdown request: a `shutdown` line or
//! EOF drains the server, snapshots the indexes, flushes the AOFs, and
//! exits 0 (`kill` still works, at the price of an O(n) index rebuild on
//! the next start). Without them the process serves until killed, exactly
//! as before.

use gdprbench_repro::drivers::{build_connector, ConnectorSpec, DB_CHOICES};
use gdprbench_repro::gdpr_server::{GdprServer, ServerConfig};

const USAGE: &str = "\
gdpr-serve — wire-protocol network front-end for the GDPR compliance engine

USAGE:
  gdpr-serve [--db redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi|disk|disk-sharded]
             [--addr HOST:PORT] [--shards N] [--workers N] [--compliant]
             [--tenants N] [--encrypt] [--encrypt-key KEY]
             [--metrics-addr HOST:PORT] [--slow-op-ms MS]
             [--data-dir DIR] [--index-snapshot-dir DIR]

Defaults: --db redis-mi, --addr 127.0.0.1:7878, --shards $GDPR_SHARDS (else 4),
--workers = CPU parallelism. The server pipelines: clients may keep many
requests in flight per connection; responses come back in request order.

--tenants N               pre-provision tenants t0..t{N-1} so multi-tenant
                          benchmark traffic (gdprbench --tenants N) never
                          pays first-op tenant setup; each tenant gets its
                          own audit trail, index partition, and metrics
                          series. Any valid tenant named in a request frame
                          is still provisioned lazily.
--encrypt                 require the SecureChannel handshake on every
                          connection; all frames travel as sealed records.
                          Plaintext clients are dropped without answer.
                          (GDPR_ENCRYPT=1 in the environment does the same.)
--encrypt-key KEY         pre-shared key for --encrypt (default: a well-known
                          benchmark key; also GDPR_ENCRYPT_KEY). Implies
                          --encrypt.
--metrics-addr HOST:PORT  additionally serve the telemetry snapshot (per-op
                          counts, latency histograms, pipeline stage
                          histograms, security counters) as Prometheus text
                          over plain TCP — one HTTP/1.0 response per
                          connection, handled by the same event loop.
--slow-op-ms MS           log ops slower than MS milliseconds to stderr
                          (rate-limited to one line per second; also
                          GDPR_SLOW_OP_MS).
--data-dir DIR            persist store state to DIR: kvstore shards as
                          DIR/shard-N.aof (replayed on restart, torn tails
                          truncated away), disk* variants as paged data
                          files + WALs under DIR/shard-N/ (reopened through
                          WAL recovery)
--index-snapshot-dir DIR  recover metadata indexes from snapshot images in
                          DIR (redis-mi/redis-sharded/disk/disk-sharded);
                          written on graceful shutdown. With either
                          directory set, send the line 'shutdown' (or close
                          stdin) for a graceful exit.";

struct ServeArgs {
    spec: ConnectorSpec,
    addr: String,
    workers: Option<usize>,
    encrypt: Option<String>,
    metrics_addr: Option<String>,
    slow_op_ms: Option<u64>,
}

fn parse_args() -> Result<ServeArgs, String> {
    let mut spec = ConnectorSpec::new("redis-mi");
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = None;
    // Start from the environment (GDPR_ENCRYPT / GDPR_ENCRYPT_KEY);
    // explicit flags override.
    let mut encrypt = gdprbench_repro::gdpr_server::secure::encrypt_key_from_env();
    let mut metrics_addr = None;
    let mut slow_op_ms = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--db" => spec.db = take("db")?,
            "--addr" => addr = take("addr")?,
            "--shards" => {
                spec.shards = take("shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--workers" => {
                workers = Some(
                    take("workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--compliant" => spec.compliant = true,
            "--tenants" => {
                spec.tenants = take("tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--encrypt" => {
                encrypt.get_or_insert_with(|| {
                    gdprbench_repro::gdpr_server::secure::DEFAULT_PSK.to_string()
                });
            }
            "--encrypt-key" => encrypt = Some(take("encrypt-key")?),
            "--metrics-addr" => metrics_addr = Some(take("metrics-addr")?),
            "--slow-op-ms" => {
                slow_op_ms = Some(
                    take("slow-op-ms")?
                        .parse()
                        .map_err(|e| format!("--slow-op-ms: {e}"))?,
                );
            }
            "--data-dir" => spec.data_dir = Some(take("data-dir")?),
            "--index-snapshot-dir" => spec.snapshot_dir = Some(take("index-snapshot-dir")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if spec.db == "remote" {
        return Err(format!(
            "gdpr-serve serves a local engine; --db must be one of {}",
            DB_CHOICES.trim_end_matches("|remote")
        ));
    }
    Ok(ServeArgs {
        spec,
        addr,
        workers,
        encrypt,
        metrics_addr,
        slow_op_ms,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(ms) = args.slow_op_ms {
        // The engines read the threshold from the environment when their
        // telemetry is constructed, so this must precede build_connector.
        std::env::set_var("GDPR_SLOW_OP_MS", ms.to_string());
    }
    let engine = match build_connector(&args.spec) {
        Ok(engine) => engine,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let mut config = ServerConfig::default();
    if let Some(workers) = args.workers {
        config.workers = workers.max(1);
        config.queue_depth = config.workers * 32;
    }
    config.encrypt = args.encrypt;
    config.metrics_addr = args.metrics_addr;
    // Serving many thousands of connections needs more descriptors than
    // the usual 1024 soft default; raise toward the hard limit up front.
    match gdprbench_repro::gdpr_server::sys::raise_nofile_limit(65536) {
        Ok(limit) => {
            if limit < 65536 {
                eprintln!(
                    "gdpr-serve: fd soft limit capped at {limit} by the hard limit; \
                     very high connection counts may hit EMFILE (accepts pause, \
                     established connections keep serving)"
                );
            }
        }
        Err(e) => eprintln!("gdpr-serve: could not raise fd limit: {e}"),
    }
    let name = engine.name().to_string();
    // Keep a handle for the graceful-shutdown flush; the server owns its
    // own clone.
    let durable = std::sync::Arc::clone(&engine);
    let server = match GdprServer::bind(engine, &args.addr, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gdpr-serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "gdpr-serve: serving {name} on {} ({} workers, {} transport); drive it with \
         `gdprbench run --db remote --addr {}{}`",
        server.local_addr(),
        config.workers,
        if config.encrypt.is_some() {
            "encrypted"
        } else {
            "plaintext"
        },
        server.local_addr(),
        if config.encrypt.is_some() {
            " --encrypt"
        } else {
            ""
        },
    );
    if let Some(metrics) = server.metrics_addr() {
        println!("gdpr-serve: Prometheus metrics on http://{metrics}/metrics (plain TCP)");
    }
    if args.spec.tenants > 0 {
        println!(
            "gdpr-serve: pre-provisioned {} tenants (t0..t{}); each has its own \
             audit trail, index partition, and metrics series",
            args.spec.tenants,
            args.spec.tenants - 1
        );
    }
    if args.spec.data_dir.is_some() || args.spec.snapshot_dir.is_some() {
        // Durable state configured: honour a graceful-shutdown request so
        // the index snapshots get written (a later start then recovers in
        // O(index) instead of rescanning the store).
        println!(
            "gdpr-serve: durable state configured; 'shutdown' line or stdin EOF exits gracefully"
        );
        use std::io::BufRead;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(line) if line.trim() == "shutdown" => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        server.shutdown();
        match durable.close() {
            Ok(()) => println!("gdpr-serve: graceful shutdown — index snapshots written"),
            Err(e) => {
                eprintln!("gdpr-serve: failed to persist index snapshots: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
