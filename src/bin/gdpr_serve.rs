//! `gdpr-serve` — run any connector variant behind the GDPR wire protocol,
//! so GDPRbench (and any `GdprClient`) drives it over real sockets.
//!
//! ```sh
//! gdpr-serve --db redis-sharded --shards 8 --addr 127.0.0.1:7878
//! gdprbench run --db remote --addr 127.0.0.1:7878 --clients 8 --workload processor
//! ```
//!
//! The process serves until killed; shutdown on signal is the operator's
//! (or CI's) `kill`, after which in-flight requests complete via the
//! server's graceful drop.

use gdprbench_repro::drivers::{build_connector, ConnectorSpec, DB_CHOICES};
use gdprbench_repro::gdpr_server::{GdprServer, ServerConfig};

const USAGE: &str = "\
gdpr-serve — wire-protocol network front-end for the GDPR compliance engine

USAGE:
  gdpr-serve [--db redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi]
             [--addr HOST:PORT] [--shards N] [--workers N] [--compliant]

Defaults: --db redis-mi, --addr 127.0.0.1:7878, --shards $GDPR_SHARDS (else 4),
--workers = CPU parallelism. The server pipelines: clients may keep many
requests in flight per connection; responses come back in request order.";

struct ServeArgs {
    spec: ConnectorSpec,
    addr: String,
    workers: Option<usize>,
}

fn parse_args() -> Result<ServeArgs, String> {
    let mut spec = ConnectorSpec::new("redis-mi");
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--db" => spec.db = take("db")?,
            "--addr" => addr = take("addr")?,
            "--shards" => {
                spec.shards = take("shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--workers" => {
                workers = Some(
                    take("workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--compliant" => spec.compliant = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if spec.db == "remote" {
        return Err(format!(
            "gdpr-serve serves a local engine; --db must be one of {}",
            DB_CHOICES.trim_end_matches("|remote")
        ));
    }
    Ok(ServeArgs {
        spec,
        addr,
        workers,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let engine = match build_connector(&args.spec) {
        Ok(engine) => engine,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    };
    let mut config = ServerConfig::default();
    if let Some(workers) = args.workers {
        config.workers = workers.max(1);
        config.queue_depth = config.workers * 32;
    }
    let name = engine.name().to_string();
    let server = match GdprServer::bind(engine, &args.addr, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gdpr-serve: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "gdpr-serve: serving {name} on {} ({} workers); drive it with \
         `gdprbench run --db remote --addr {}`",
        server.local_addr(),
        config.workers,
        server.local_addr(),
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
