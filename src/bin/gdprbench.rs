//! The `gdprbench` command-line tool — the YCSB-style driver the paper
//! ships: load a datastore with personal records, run one of the four
//! entity workloads (or a YCSB workload), and report the benchmark's three
//! metrics.
//!
//! ```sh
//! gdprbench run --db redis --workload customer --records 10000 --ops 1000
//! gdprbench run --db postgres-mi --workload regulator --threads 8
//! gdprbench run --db remote --addr 127.0.0.1:7878 --clients 8 --workload processor
//! gdprbench ycsb --db postgres --workload A --records 10000 --ops 100000
//! gdprbench features --db redis
//! ```

use gdprbench_repro::drivers::{build_connector, tenant_ids, ConnectorSpec};
use gdprbench_repro::gdpr_core::tenant::TenantId;
use gdprbench_repro::gdpr_core::GdprConnector;
use gdprbench_repro::workload::gdpr::{
    load_corpus_as, load_corpus_tolerant_as, stable_corpus, GdprWorkloadKind,
};
use gdprbench_repro::workload::runner::GdprRunOptions;
use gdprbench_repro::workload::ycsb::{
    ycsb_key, KvInterface, KvStoreYcsb, RelStoreYcsb, YcsbConfig,
};
use gdprbench_repro::workload::{
    datagen, run_gdpr_workload_open_loop_with, run_gdpr_workload_with, run_ycsb_workload,
};
use std::collections::HashMap;
use std::sync::Arc;

const USAGE: &str = "\
gdprbench — the GDPR benchmark (reproduction of Shastri et al., VLDB 2020)

USAGE:
  gdprbench run      --db <redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi|disk|disk-sharded|remote>
                     --workload <controller|customer|processor|regulator|all>
                     [--records N] [--ops N] [--threads N] [--shards N] [--no-oracle] [--compliant]
                     [--tenant NAME] [--tenants N] [--skew zipf:THETA]
                     [--addr HOST:PORT] [--clients N] [--encrypt] [--encrypt-key KEY]
                     [--arrival-rate OPS_PER_SEC]
  gdprbench ycsb     --db <redis|postgres> --workload <A|B|C|D|E|F|all>
                     [--records N] [--ops N] [--threads N]
  gdprbench features --db <redis|redis-mi|redis-sharded|redis-sharded-scan|postgres|postgres-mi|disk|disk-sharded|remote>
  gdprbench help

The sharded variant hash-partitions records across N engines (default
--shards from $GDPR_SHARDS, else 4); semantics are shard-count invariant.

--db remote drives a running `gdpr-serve` over TCP: --addr names the
server, --clients sizes the connection pool (default: --threads), and the
run measures real networked request/response cost. Note the server keeps
its state across workloads — point `gdprbench run` at a fresh server for
oracle-checked correctness runs. --encrypt (or GDPR_ENCRYPT=1) runs the
SecureChannel transport: the handshake precedes the first op and every
frame travels sealed; the key comes from --encrypt-key / GDPR_ENCRYPT_KEY
and must match the server's.

--tenant NAME     run the whole workload as one named tenant (its own audit
                  trail, index partition, and metrics series; the oracle
                  stays valid). --tenants N spreads the client threads
                  round-robin across tenants t0..t{N-1} instead — each
                  tenant is loaded with its own full corpus and the oracle
                  is disabled (interleaving is not modeled).
--skew zipf:T     re-skew record/user picks with zipf constant T and rank
                  purpose picks zipf instead of uniform (default: the
                  Table 2a distributions; YCSB's zipf constant is 0.99).

--arrival-rate R  run open-loop: ops are due at fixed 1/R intervals and
                  latency is measured from each op's *intended* send time,
                  so percentiles include any time the system fell behind
                  the schedule (no coordinated omission). Reports p50,
                  p99, and p999 instead of the closed-loop metrics; the
                  oracle is disabled.

METRICS (as defined in §4.2.3 of the paper):
  correctness     fraction of responses matching the oracle (single-threaded runs)
  completion time wall time to finish all operations of the workload
  space overhead  total DB bytes / personal-data bytes";

#[derive(Debug)]
struct Args {
    command: String,
    flags: HashMap<String, String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_string());
    let mut flags = HashMap::new();
    while let Some(flag) = argv.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?
            .to_string();
        if key == "no-oracle" || key == "compliant" || key == "encrypt" {
            flags.insert(key, "true".to_string());
        } else {
            let value = argv
                .next()
                .ok_or_else(|| format!("--{key} requires a value"))?;
            flags.insert(key, value);
        }
    }
    Ok(Args { command, flags })
}

impl Args {
    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number {v:?}")),
            None => Ok(default),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

/// The connector spec the common flags describe.
fn spec_from_args(args: &Args, threads: usize) -> Result<ConnectorSpec, String> {
    let mut spec = ConnectorSpec::new(args.get("db", "redis"));
    spec.compliant = args.has("compliant");
    spec.shards = args.get_num("shards", gdprbench_repro::gdpr_core::shard_count_from_env())?;
    spec.addr = args.flags.get("addr").cloned();
    // One pooled connection per client thread unless pinned explicitly.
    spec.clients = args.get_num("clients", threads.max(1))?;
    // --encrypt / --encrypt-key override the GDPR_ENCRYPT environment
    // default already resolved by `ConnectorSpec::new`.
    if let Some(key) = args.flags.get("encrypt-key") {
        spec.encrypt = Some(key.clone());
    } else if args.has("encrypt") && spec.encrypt.is_none() {
        spec.encrypt = Some(gdprbench_repro::gdpr_server::secure::DEFAULT_PSK.to_string());
    }
    Ok(spec)
}

/// The tenants `--tenant NAME` / `--tenants N` describe (empty = the
/// default single tenant).
fn tenants_from_args(args: &Args) -> Result<Vec<TenantId>, String> {
    match (args.flags.get("tenant"), args.flags.get("tenants")) {
        (Some(_), Some(_)) => Err("--tenant and --tenants are mutually exclusive".to_string()),
        (Some(name), None) => Ok(vec![
            TenantId::new(name.clone()).map_err(|e| format!("--tenant: {e}"))?
        ]),
        (None, Some(n)) => {
            let n: usize = n
                .parse()
                .map_err(|_| format!("--tenants: bad number {n:?}"))?;
            Ok(tenant_ids(n))
        }
        (None, None) => Ok(Vec::new()),
    }
}

/// The zipf theta `--skew zipf:THETA` selects.
fn skew_from_args(args: &Args) -> Result<Option<f64>, String> {
    match args.flags.get("skew") {
        None => Ok(None),
        Some(s) => match s.strip_prefix("zipf:") {
            Some(theta) => theta
                .parse()
                .map(Some)
                .map_err(|_| format!("--skew: bad theta in {s:?}")),
            None => Err(format!("--skew: expected zipf:THETA, got {s:?}")),
        },
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let db = args.get("db", "redis");
    let records: usize = args.get_num("records", 1000)?;
    let ops: u64 = args.get_num("ops", 1000)?;
    let threads: usize = args.get_num("threads", 1)?;
    let spec = spec_from_args(args, threads)?;
    let arrival_rate: Option<f64> = match args.flags.get("arrival-rate") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--arrival-rate: bad number {v:?}"))?,
        ),
        None => None,
    };
    let options = GdprRunOptions {
        tenants: tenants_from_args(args)?,
        zipf_theta: skew_from_args(args)?,
    };
    // Interleaved multi-tenant traffic is not modeled by the oracle; one
    // named tenant is just a namespaced single-tenant run and stays valid.
    let oracle = !args.has("no-oracle")
        && threads == 1
        && db != "remote"
        && arrival_rate.is_none()
        && options.tenants.len() <= 1;
    let workload_arg = args.get("workload", "all");
    let kinds: Vec<GdprWorkloadKind> = match workload_arg.as_str() {
        "all" => GdprWorkloadKind::ALL.to_vec(),
        name => vec![GdprWorkloadKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown --workload {name}"))?],
    };

    // Each tenant gets its own full corpus (tenant keyspaces are disjoint).
    let load_tenants: Vec<TenantId> = if options.tenants.is_empty() {
        vec![TenantId::default()]
    } else {
        options.tenants.clone()
    };
    let load = |connector: &dyn GdprConnector, corpus: &_| -> Result<(), String> {
        for tenant in &load_tenants {
            if db == "remote" {
                load_corpus_tolerant_as(connector, corpus, tenant).map_err(|e| e.to_string())?;
            } else {
                load_corpus_as(connector, corpus, tenant).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    };

    if let Some(rate) = arrival_rate {
        println!(
            "gdprbench (open-loop): db={db} records={records} ops={ops} threads={threads} \
             arrival-rate={rate}/s\nlatency measured from each op's intended send time \
             (coordinated-omission-safe)\n"
        );
        println!(
            "{:<11} {:>13} {:>11} {:>8} {:>6} {:>10} {:>10} {:>10}",
            "workload", "completion", "achieved/s", "errors", "late", "p50", "p99", "p999"
        );
        for kind in kinds {
            let connector = build_connector(&spec)?;
            let corpus = stable_corpus(records);
            load(connector.as_ref(), &corpus)?;
            let report = run_gdpr_workload_open_loop_with(
                connector,
                kind,
                corpus,
                ops,
                threads,
                rate,
                options.clone(),
            );
            println!(
                "{:<11} {:>13} {:>11.1} {:>8} {:>6} {:>10} {:>10} {:>10}",
                report.workload,
                format!("{:.2?}", report.completion),
                report.achieved_ops_per_sec(),
                report.errors,
                report.late_sends,
                format!(
                    "{:.2?}",
                    std::time::Duration::from_nanos(report.latency.p50_ns())
                ),
                format!(
                    "{:.2?}",
                    std::time::Duration::from_nanos(report.latency.p99_ns())
                ),
                format!(
                    "{:.2?}",
                    std::time::Duration::from_nanos(report.latency.p999_ns())
                ),
            );
        }
        return Ok(());
    }

    println!("gdprbench: db={db} records={records} ops={ops} threads={threads} oracle={oracle}\n");
    println!(
        "{:<11} {:>13} {:>11} {:>8} {:>12} {:>13}",
        "workload", "completion", "ops/s", "errors", "correctness", "space-factor"
    );
    for kind in kinds {
        // Fresh store per workload so the oracle matches (as the paper
        // reloads between runs). A remote server's state persists across
        // the loop — only the client pool is fresh — so its load phase
        // tolerates records surviving a previous workload.
        let connector = build_connector(&spec)?;
        let corpus = stable_corpus(records);
        load(connector.as_ref(), &corpus)?;
        let report = run_gdpr_workload_with(
            connector,
            kind,
            corpus,
            ops,
            threads,
            oracle,
            options.clone(),
        );
        println!(
            "{:<11} {:>13} {:>11.1} {:>8} {:>12} {:>12.2}x",
            report.workload,
            format!("{:.2?}", report.completion),
            report.throughput_ops_per_sec(),
            report.errors,
            report
                .correctness
                .map_or_else(|| "n/a".to_string(), |c| format!("{:.1}%", c * 100.0)),
            report.space.overhead_factor(),
        );
        // Per-query breakdown.
        let mut rows: Vec<_> = report.per_query.iter().collect();
        rows.sort_by_key(|(name, _)| *name);
        for (name, stats) in rows {
            println!(
                "  {:<26} ok={:<6} err={:<5} mean={:<10} p99={:?}",
                name,
                stats.ok,
                stats.errors,
                format!("{:.2?}", stats.latency.mean()),
                stats.latency.quantile(0.99),
            );
        }
    }
    Ok(())
}

fn cmd_ycsb(args: &Args) -> Result<(), String> {
    let db = args.get("db", "redis");
    let records: u64 = args.get_num("records", 1000)?;
    let ops: u64 = args.get_num("ops", 10_000)?;
    let threads: usize = args.get_num("threads", 1)?;
    let workload_arg = args.get("workload", "all");
    let configs: Vec<YcsbConfig> = match workload_arg.as_str() {
        "all" => YcsbConfig::all(),
        name if name.len() == 1 => vec![YcsbConfig::workload(name.chars().next().unwrap())],
        other => return Err(format!("unknown --workload {other}")),
    };

    println!("gdprbench ycsb: db={db} records={records} ops={ops} threads={threads}\n");
    println!(
        "{:<9} {:>13} {:>12} {:>8}",
        "workload", "completion", "ops/s", "errors"
    );
    for config in configs {
        let adapter: Arc<dyn KvInterface> = match db.as_str() {
            "redis" => {
                let store = gdprbench_repro::kvstore::KvStore::open(Default::default())
                    .map_err(|e| e.to_string())?;
                Arc::new(KvStoreYcsb::new(store))
            }
            "postgres" | "postgres-mi" => {
                let database = gdprbench_repro::relstore::Database::open(Default::default())
                    .map_err(|e| e.to_string())?;
                Arc::new(RelStoreYcsb::new(database)?)
            }
            other => return Err(format!("unknown --db {other}")),
        };
        for i in 0..records {
            adapter.insert(&ycsb_key(i), &datagen::ycsb_value(i, config.value_len))?;
        }
        let report = run_ycsb_workload(adapter, config, records, ops, threads);
        println!(
            "{:<9} {:>13} {:>12.1} {:>8}",
            report.workload,
            format!("{:.2?}", report.completion),
            report.throughput_ops_per_sec(),
            report.errors
        );
    }
    Ok(())
}

fn cmd_features(args: &Args) -> Result<(), String> {
    let db = args.get("db", "redis");
    // A remote server's posture is whatever it was started with; probe it
    // once rather than rebuilding per config.
    let configs: &[bool] = if db == "remote" {
        &[false]
    } else {
        &[false, true]
    };
    for &compliant in configs {
        let mut spec = spec_from_args(args, 1)?;
        spec.compliant = compliant;
        let connector = build_connector(&spec)?;
        let report = connector.features();
        println!(
            "{} ({}): fully compliant = {}",
            db,
            if compliant {
                "compliant config"
            } else {
                "default config"
            },
            report.is_fully_compliant()
        );
        for feature in gdprbench_repro::gdpr_core::ComplianceFeature::ALL {
            println!("  {:<24} {:?}", feature.name(), report.support_for(feature));
        }
        let satisfied = gdprbench_repro::gdpr_core::articles::articles_satisfied_by(&report);
        println!("  satisfies {}/12 Table-1 article rows\n", satisfied.len());
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "ycsb" => cmd_ycsb(&args),
        "features" => cmd_features(&args),
        _ => {
            println!("{USAGE}");
            Ok(())
        }
    };
    if let Err(msg) = result {
        eprintln!("{msg}\n\n{USAGE}");
        std::process::exit(1);
    }
}
