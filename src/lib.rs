//! Facade crate: re-exports the workspace crates for examples and integration tests.
pub use clock;
pub use connectors;
pub use crypto;
pub use gdpr_core;
pub use gdpr_server;
pub use kvstore;
pub use pagestore;
pub use relstore;
pub use workload;

pub mod drivers;
