//! Durability of GDPR semantics across crashes: replaying the stores'
//! persistence logs must preserve erasures (a resurrected record after a
//! crash would be an Article 17 violation) and must never leak plaintext
//! personal data on disk when encryption at rest is on (Article 32).

use gdprbench_repro::connectors::{PostgresConnector, RedisConnector, ShardedRedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprConnector, GdprError, GdprQuery, GdprResponse, Session};
use gdprbench_repro::kvstore::{config::AofStorage, KvConfig, KvStore};
use gdprbench_repro::relstore::{Database, RelConfig, WalStorage};
use std::time::Duration;

fn record(key: &str, user: &str) -> PersonalRecord {
    PersonalRecord::new(
        key,
        format!("secret-data-of-{user}"),
        Metadata::new(user, vec!["billing".into()], Duration::from_secs(86_400)),
    )
}

#[test]
fn erasure_survives_kvstore_crash_recovery() {
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    let conn = RedisConnector::new(std::sync::Arc::clone(&store));
    let controller = Session::controller();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r1", "neo")))
        .unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r2", "neo")))
        .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::DeleteByKey("r1".into()),
    )
    .unwrap();
    let aof = store.aof_memory_buffer().unwrap().lock().clone();

    // "Crash" and recover from the AOF.
    let recovered = KvStore::replay(config, &aof, gdprbench_repro::clock::wall()).unwrap();
    let conn = RedisConnector::new(recovered);
    let regulator = Session::regulator();
    assert_eq!(
        conn.execute(&regulator, &GdprQuery::VerifyDeletion("r1".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(true),
        "an erased record must stay erased across recovery"
    );
    assert_eq!(
        conn.execute(&regulator, &GdprQuery::VerifyDeletion("r2".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(false)
    );
}

#[test]
fn erasure_survives_relstore_crash_recovery() {
    let config = RelConfig {
        wal: WalStorage::Memory,
        ..Default::default()
    };
    let db = Database::open(config.clone()).unwrap();
    let conn = PostgresConnector::new(std::sync::Arc::clone(&db)).unwrap();
    let controller = Session::controller();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r1", "neo")))
        .unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r2", "smith")))
        .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::DeleteByUser("neo".into()),
    )
    .unwrap();
    let wal = db.wal_memory_buffer().unwrap().lock().clone();

    let recovered = Database::recover(config, &wal, gdprbench_repro::clock::wall()).unwrap();
    let table = recovered.table("personal_data").unwrap();
    assert_eq!(table.read().row_count(), 1, "only smith's record survives");
}

/// Sharded recovery: each shard replays its own AOF. Restarting with the
/// original shard count rebuilds cleanly; restarting with a *different*
/// shard count leaves records in shards that no longer own their keys,
/// which must fail loudly (`ShardMisroute`) — silent misrouting would make
/// point lookups miss live personal data — and `rebalance()` must then
/// migrate every record home, after which erasures still hold.
#[test]
fn sharded_restart_with_changed_shard_count_fails_loudly_or_rebuilds() {
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        ..Default::default()
    };
    // Every fleet shares one clock instance — the sharded engine rejects
    // mixed clocks (their epochs are not comparable).
    let clk = gdprbench_repro::clock::wall();
    let stores: Vec<_> = (0..2)
        .map(|_| KvStore::open_with_clock(config.clone(), clk.clone()).unwrap())
        .collect();
    let conn = ShardedRedisConnector::with_metadata_index(stores.clone()).unwrap();
    let controller = Session::controller();
    for i in 0..16 {
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record(&format!("r{i}"), "neo")),
        )
        .unwrap();
    }
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::DeleteByKey("r0".into()),
    )
    .unwrap();
    let aofs: Vec<Vec<u8>> = stores
        .iter()
        .map(|s| s.aof_memory_buffer().unwrap().lock().clone())
        .collect();
    let replay_fleet = |clk: &gdprbench_repro::clock::SharedClock| -> Vec<_> {
        aofs.iter()
            .map(|aof| KvStore::replay(config.clone(), aof, clk.clone()).unwrap())
            .collect()
    };

    // Same shard count: clean rebuild, placement verified, erasure holds.
    let recovered =
        ShardedRedisConnector::with_metadata_index(replay_fleet(&gdprbench_repro::clock::wall()))
            .unwrap();
    recovered.verify_placement().unwrap();
    assert_eq!(recovered.record_count(), 15);
    let regulator = Session::regulator();
    assert_eq!(
        recovered
            .execute(&regulator, &GdprQuery::VerifyDeletion("r0".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(true),
        "an erased record must stay erased across sharded recovery"
    );

    // Different shard count: the same two AOFs plus an empty third shard.
    let mis_clk = gdprbench_repro::clock::wall();
    let mut misrouted_stores = replay_fleet(&mis_clk);
    misrouted_stores.push(KvStore::open_with_clock(config.clone(), mis_clk.clone()).unwrap());
    let misrouted = ShardedRedisConnector::with_metadata_index(misrouted_stores).unwrap();
    let err = misrouted.verify_placement().unwrap_err();
    assert!(
        matches!(err, GdprError::ShardMisroute { shard_count: 3, .. }),
        "changed shard count must be detected loudly, got {err}"
    );

    // Rebalance migrates records to their owners; nothing misroutes, every
    // live record answers, and the erasure still holds.
    let moved = misrouted.rebalance().unwrap();
    assert!(moved > 0, "a 2→3 reshard must move records");
    misrouted.verify_placement().unwrap();
    assert_eq!(misrouted.record_count(), 15);
    let resp = misrouted
        .execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("neo".into()),
        )
        .unwrap();
    assert_eq!(resp.cardinality(), 15);
    for i in 1..16 {
        assert_eq!(
            misrouted
                .execute(&regulator, &GdprQuery::VerifyDeletion(format!("r{i}")))
                .unwrap(),
            GdprResponse::DeletionVerified(false),
            "live record r{i} must be found after rebalancing"
        );
    }
    assert_eq!(
        misrouted
            .execute(&regulator, &GdprQuery::VerifyDeletion("r0".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(true)
    );
}

#[test]
fn encrypted_persistence_never_leaks_plaintext() {
    // kvstore: AOF sealed with the at-rest cipher.
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config).unwrap();
    let conn = RedisConnector::new(store.clone());
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(record("r1", "plaintext-marker-user")),
    )
    .unwrap();
    let aof = store.aof_memory_buffer().unwrap().lock().clone();
    assert!(
        !aof.windows(b"plaintext-marker-user".len())
            .any(|w| w == b"plaintext-marker-user"),
        "user identity must not appear in the persisted AOF"
    );
    assert!(
        !aof.windows(b"secret-data".len())
            .any(|w| w == b"secret-data"),
        "personal data must not appear in the persisted AOF"
    );

    // relstore: WAL sealed likewise.
    let config = RelConfig {
        wal: WalStorage::Memory,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let db = Database::open(config).unwrap();
    let conn = PostgresConnector::new(std::sync::Arc::clone(&db)).unwrap();
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(record("r1", "plaintext-marker-user")),
    )
    .unwrap();
    let wal = db.wal_memory_buffer().unwrap().lock().clone();
    assert!(!wal
        .windows(b"plaintext-marker-user".len())
        .any(|w| w == b"plaintext-marker-user"));
}

#[test]
fn encrypted_snapshot_restores_gdpr_records() {
    // The RDB-style snapshot is the artifact LUKS protects for an in-memory
    // store: it must roundtrip records (with TTL deadlines) and stay opaque.
    let config = KvConfig {
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    let conn = RedisConnector::new(std::sync::Arc::clone(&store));
    let controller = Session::controller();
    for i in 0..20 {
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record(&format!("r{i}"), "neo")),
        )
        .unwrap();
    }
    let snap = store.snapshot_bytes();
    assert!(
        !snap
            .windows(b"secret-data".len())
            .any(|w| w == b"secret-data"),
        "sealed snapshot must not leak personal data"
    );

    let restored = KvStore::open(config).unwrap();
    assert_eq!(restored.restore_snapshot(&snap).unwrap(), 20);
    let conn = RedisConnector::new(restored);
    let resp = conn
        .execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("neo".into()),
        )
        .unwrap();
    assert_eq!(resp.cardinality(), 20);
}

#[test]
fn recovery_rejects_tampered_logs() {
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    store.set(b"k", b"v").unwrap();
    let mut aof = store.aof_memory_buffer().unwrap().lock().clone();
    let last = aof.len() - 1;
    aof[last] ^= 0x80;
    assert!(
        KvStore::replay(config, &aof, gdprbench_repro::clock::wall()).is_err(),
        "tampered AOF must fail authentication"
    );
}
