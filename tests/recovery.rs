//! Durability of GDPR semantics across crashes: replaying the stores'
//! persistence logs must preserve erasures (a resurrected record after a
//! crash would be an Article 17 violation) and must never leak plaintext
//! personal data on disk when encryption at rest is on (Article 32).

use gdprbench_repro::connectors::{PostgresConnector, RedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, GdprResponse, Session};
use gdprbench_repro::kvstore::{config::AofStorage, KvConfig, KvStore};
use gdprbench_repro::relstore::{Database, RelConfig, WalStorage};
use std::time::Duration;

fn record(key: &str, user: &str) -> PersonalRecord {
    PersonalRecord::new(
        key,
        format!("secret-data-of-{user}"),
        Metadata::new(user, vec!["billing".into()], Duration::from_secs(86_400)),
    )
}

#[test]
fn erasure_survives_kvstore_crash_recovery() {
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    let conn = RedisConnector::new(std::sync::Arc::clone(&store));
    let controller = Session::controller();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r1", "neo")))
        .unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r2", "neo")))
        .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::DeleteByKey("r1".into()),
    )
    .unwrap();
    let aof = store.aof_memory_buffer().unwrap().lock().clone();

    // "Crash" and recover from the AOF.
    let recovered = KvStore::replay(config, &aof, gdprbench_repro::clock::wall()).unwrap();
    let conn = RedisConnector::new(recovered);
    let regulator = Session::regulator();
    assert_eq!(
        conn.execute(&regulator, &GdprQuery::VerifyDeletion("r1".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(true),
        "an erased record must stay erased across recovery"
    );
    assert_eq!(
        conn.execute(&regulator, &GdprQuery::VerifyDeletion("r2".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(false)
    );
}

#[test]
fn erasure_survives_relstore_crash_recovery() {
    let config = RelConfig {
        wal: WalStorage::Memory,
        ..Default::default()
    };
    let db = Database::open(config.clone()).unwrap();
    let conn = PostgresConnector::new(std::sync::Arc::clone(&db)).unwrap();
    let controller = Session::controller();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r1", "neo")))
        .unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record("r2", "smith")))
        .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::DeleteByUser("neo".into()),
    )
    .unwrap();
    let wal = db.wal_memory_buffer().unwrap().lock().clone();

    let recovered = Database::recover(config, &wal, gdprbench_repro::clock::wall()).unwrap();
    let table = recovered.table("personal_data").unwrap();
    assert_eq!(table.read().row_count(), 1, "only smith's record survives");
}

#[test]
fn encrypted_persistence_never_leaks_plaintext() {
    // kvstore: AOF sealed with the at-rest cipher.
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config).unwrap();
    let conn = RedisConnector::new(store.clone());
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(record("r1", "plaintext-marker-user")),
    )
    .unwrap();
    let aof = store.aof_memory_buffer().unwrap().lock().clone();
    assert!(
        !aof.windows(b"plaintext-marker-user".len())
            .any(|w| w == b"plaintext-marker-user"),
        "user identity must not appear in the persisted AOF"
    );
    assert!(
        !aof.windows(b"secret-data".len())
            .any(|w| w == b"secret-data"),
        "personal data must not appear in the persisted AOF"
    );

    // relstore: WAL sealed likewise.
    let config = RelConfig {
        wal: WalStorage::Memory,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let db = Database::open(config).unwrap();
    let conn = PostgresConnector::new(std::sync::Arc::clone(&db)).unwrap();
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(record("r1", "plaintext-marker-user")),
    )
    .unwrap();
    let wal = db.wal_memory_buffer().unwrap().lock().clone();
    assert!(!wal
        .windows(b"plaintext-marker-user".len())
        .any(|w| w == b"plaintext-marker-user"));
}

#[test]
fn encrypted_snapshot_restores_gdpr_records() {
    // The RDB-style snapshot is the artifact LUKS protects for an in-memory
    // store: it must roundtrip records (with TTL deadlines) and stay opaque.
    let config = KvConfig {
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    let conn = RedisConnector::new(std::sync::Arc::clone(&store));
    let controller = Session::controller();
    for i in 0..20 {
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record(&format!("r{i}"), "neo")),
        )
        .unwrap();
    }
    let snap = store.snapshot_bytes();
    assert!(
        !snap
            .windows(b"secret-data".len())
            .any(|w| w == b"secret-data"),
        "sealed snapshot must not leak personal data"
    );

    let restored = KvStore::open(config).unwrap();
    assert_eq!(restored.restore_snapshot(&snap).unwrap(), 20);
    let conn = RedisConnector::new(restored);
    let resp = conn
        .execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("neo".into()),
        )
        .unwrap();
    assert_eq!(resp.cardinality(), 20);
}

#[test]
fn recovery_rejects_tampered_logs() {
    let config = KvConfig {
        aof: AofStorage::Memory,
        fsync: gdprbench_repro::kvstore::FsyncPolicy::Never,
        encrypt_at_rest: true,
        ..Default::default()
    };
    let store = KvStore::open(config.clone()).unwrap();
    store.set(b"k", b"v").unwrap();
    let mut aof = store.aof_memory_buffer().unwrap().lock().clone();
    let last = aof.len() - 1;
    aof[last] ^= 0x80;
    assert!(
        KvStore::replay(config, &aof, gdprbench_repro::clock::wall()).is_err(),
        "tampered AOF must fail authentication"
    );
}
