//! Pipelined multi-client stress over loopback TCP: many connections, each
//! keeping many requests in flight, against one served sharded engine.
//! Every response must answer exactly the request it was issued for — no
//! reordering within a connection (the client verifies the echoed `seq`
//! and this test verifies the payloads) and no crossing between
//! connections (each thread's records carry a thread tag that must never
//! surface on another thread's point reads).

use gdprbench_repro::connectors::{GdprClient, ShardedRedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{EngineHandle, GdprError, GdprQuery, GdprResponse, Session};
use gdprbench_repro::gdpr_server::{GdprServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn record(key: &str, user: &str, data: String) -> PersonalRecord {
    PersonalRecord::new(
        key,
        data,
        Metadata::new(user, vec!["ads".to_string()], Duration::from_secs(3600)),
    )
}

fn serve_sharded(shards: usize) -> (GdprServer, String) {
    let clock = clock::wall();
    let stores = (0..shards)
        .map(|_| {
            gdprbench_repro::kvstore::KvStore::open_with_clock(
                gdprbench_repro::kvstore::KvConfig::default(),
                clock.clone(),
            )
            .unwrap()
        })
        .collect();
    let engine: EngineHandle =
        Arc::new(ShardedRedisConnector::with_metadata_index(stores).unwrap());
    let server = GdprServer::bind(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Four client connections, each pipelining creates then reads in large
/// bursts, while fan-out queries run concurrently: every pipelined
/// response must line up 1:1 with its request, and point reads must only
/// ever return the issuing thread's own payloads.
#[test]
fn pipelined_multi_client_responses_never_reorder_or_cross() {
    let (server, addr) = serve_sharded(8);
    let threads = 4usize;
    let batches = 6usize;
    let batch_size = 25usize;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let addr = addr.clone();
            scope.spawn(move || {
                let client = GdprClient::connect(&addr).unwrap();
                let controller = Session::controller();
                for b in 0..batches {
                    // Burst a batch of creates; every single response must
                    // be Created, in order.
                    let creates: Vec<(Session, GdprQuery)> = (0..batch_size)
                        .map(|i| {
                            let key = format!("t{t}-b{b}-i{i}");
                            (
                                controller.clone(),
                                GdprQuery::CreateRecord(record(
                                    &key,
                                    &format!("user-{t}"),
                                    format!("payload:{key}"),
                                )),
                            )
                        })
                        .collect();
                    for (i, result) in client.pipeline(&creates).unwrap().into_iter().enumerate() {
                        assert_eq!(
                            result.unwrap(),
                            GdprResponse::Created,
                            "thread {t} batch {b} item {i}"
                        );
                    }

                    // Burst point reads of this thread's own keys plus a
                    // fan-out and a guaranteed miss, interleaved: response
                    // i must answer request i, with this thread's payload.
                    let mut queries: Vec<(Session, GdprQuery)> = (0..batch_size)
                        .map(|i| {
                            (
                                Session::processor("ads"),
                                GdprQuery::ReadDataByKey(format!("t{t}-b{b}-i{i}")),
                            )
                        })
                        .collect();
                    queries.push((
                        Session::customer(format!("user-{t}")),
                        GdprQuery::ReadDataByUser(format!("user-{t}")),
                    ));
                    queries.push((
                        Session::processor("ads"),
                        GdprQuery::ReadDataByKey(format!("missing-t{t}-b{b}")),
                    ));
                    let results = client.pipeline(&queries).unwrap();
                    assert_eq!(results.len(), queries.len());
                    for (i, result) in results.iter().take(batch_size).enumerate() {
                        let key = format!("t{t}-b{b}-i{i}");
                        match result {
                            Ok(GdprResponse::Data(pairs)) => {
                                assert_eq!(pairs.len(), 1);
                                assert_eq!(pairs[0].0, key, "reordered response on t{t}");
                                assert_eq!(
                                    pairs[0].1,
                                    format!("payload:{key}"),
                                    "cross-connection payload on t{t}"
                                );
                            }
                            other => panic!("thread {t}: expected data for {key}, got {other:?}"),
                        }
                    }
                    // The fan-out returns exactly this thread's records so
                    // far — user-{t} is written by thread t only.
                    match &results[batch_size] {
                        Ok(GdprResponse::Data(pairs)) => {
                            assert_eq!(pairs.len(), (b + 1) * batch_size, "thread {t}");
                            assert!(
                                pairs.iter().all(|(k, _)| k.starts_with(&format!("t{t}-"))),
                                "thread {t} saw another connection's records"
                            );
                        }
                        other => panic!("thread {t}: expected fan-out data, got {other:?}"),
                    }
                    // And the guaranteed miss is a NotFound in exactly the
                    // last slot.
                    assert!(
                        matches!(results[batch_size + 1], Err(GdprError::NotFound(_))),
                        "thread {t}: miss answered out of order"
                    );
                }
            });
        }
    });

    // Every record from every connection landed exactly once.
    let probe = GdprClient::connect(&addr).unwrap();
    assert_eq!(
        probe.record_count().unwrap(),
        threads * batches * batch_size
    );
    let stats = probe.conn_stats().unwrap();
    assert_eq!(stats.server_connections as usize, threads + 1);
    server.shutdown();
}

/// A single connection saturating the server's bounded queue: backpressure
/// must slow the pipeline down, never drop or reorder it.
#[test]
fn deep_pipeline_through_a_tiny_queue_stays_ordered() {
    let (server, addr) = serve_sharded(2);
    let client = GdprClient::connect(&addr).unwrap();
    let controller = Session::controller();
    let n = 300usize;
    let creates: Vec<(Session, GdprQuery)> = (0..n)
        .map(|i| {
            (
                controller.clone(),
                GdprQuery::CreateRecord(record(&format!("k{i}"), "neo", format!("d{i}"))),
            )
        })
        .collect();
    let results = client.pipeline(&creates).unwrap();
    assert!(results
        .into_iter()
        .all(|r| r.unwrap() == GdprResponse::Created));
    let reads: Vec<(Session, GdprQuery)> = (0..n)
        .map(|i| {
            (
                Session::processor("ads"),
                GdprQuery::ReadDataByKey(format!("k{i}")),
            )
        })
        .collect();
    for (i, result) in client.pipeline(&reads).unwrap().into_iter().enumerate() {
        match result.unwrap() {
            GdprResponse::Data(pairs) => assert_eq!(pairs[0].1, format!("d{i}")),
            other => panic!("expected data, got {other:?}"),
        }
    }
    server.shutdown();
}
