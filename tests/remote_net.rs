//! Networked smoke against an *external* `gdpr-serve` process, named by
//! `GDPR_REMOTE_ADDR` (the CI `networked` job builds release, starts the
//! server in the background, and points this test at it). Without the env
//! var the test is a no-op, so plain `cargo test` stays hermetic.
//!
//! Unlike the in-process suites, the server here outlives the test and
//! keeps state between runs — every key is salted with the process id so
//! reruns against a warm server stay correct.

use gdprbench_repro::connectors::GdprClient;
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprError, GdprQuery, GdprResponse, Session};
use std::time::Duration;

fn external_addr() -> Option<String> {
    std::env::var("GDPR_REMOTE_ADDR")
        .ok()
        .filter(|a| !a.is_empty())
}

/// Connect with retries: CI starts the server moments before the test.
fn connect(addr: &str) -> GdprClient {
    let mut last = None;
    for _ in 0..50 {
        match GdprClient::connect(addr) {
            Ok(client) => return client,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
    panic!("cannot reach gdpr-serve at {addr}: {last:?}");
}

#[test]
fn external_server_round_trips_the_full_lifecycle() {
    let Some(addr) = external_addr() else {
        eprintln!("GDPR_REMOTE_ADDR not set; skipping external-server smoke");
        return;
    };
    let client = connect(&addr);

    // Framing liveness.
    assert_eq!(client.ping(b"smoke").unwrap(), b"smoke");
    let name = client.server_name().unwrap();
    assert!(!name.is_empty());

    let salt = std::process::id();
    let user = format!("smoke-user-{salt}");
    let controller = Session::controller();

    // Create → point read → predicate read → erase → verify.
    for i in 0..10 {
        let key = format!("smoke-{salt}-{i}");
        let mut metadata = Metadata::new(
            user.clone(),
            vec!["smoke-test".to_string()],
            Duration::from_secs(3600),
        );
        metadata.sharing.push("smoke-corp".to_string());
        assert_eq!(
            client
                .execute(
                    &controller,
                    &GdprQuery::CreateRecord(PersonalRecord::new(
                        &key,
                        format!("data-{i}"),
                        metadata,
                    )),
                )
                .unwrap(),
            GdprResponse::Created
        );
    }
    let customer = Session::customer(user.clone());
    let resp = client
        .execute(&customer, &GdprQuery::ReadDataByUser(user.clone()))
        .unwrap();
    assert_eq!(resp.cardinality(), 10);

    // Errors roundtrip as GDPR errors.
    assert!(matches!(
        client.execute(
            &customer,
            &GdprQuery::ReadDataByUser("someone-else".to_string())
        ),
        Err(GdprError::AccessDenied { .. })
    ));

    // Pipelined burst stays ordered against a real remote process.
    let reads: Vec<(Session, GdprQuery)> = (0..10)
        .map(|i| {
            (
                Session::processor("smoke-test"),
                GdprQuery::ReadDataByKey(format!("smoke-{salt}-{i}")),
            )
        })
        .collect();
    for (i, result) in client.pipeline(&reads).unwrap().into_iter().enumerate() {
        match result.unwrap() {
            GdprResponse::Data(pairs) => assert_eq!(pairs[0].1, format!("data-{i}")),
            other => panic!("expected data, got {other:?}"),
        }
    }

    // Right to be forgotten, then the regulator verifies over the wire.
    assert_eq!(
        client
            .execute(&customer, &GdprQuery::DeleteByUser(user.clone()))
            .unwrap(),
        GdprResponse::Deleted(10)
    );
    assert_eq!(
        client
            .execute(
                &Session::regulator(),
                &GdprQuery::VerifyDeletion(format!("smoke-{salt}-0"))
            )
            .unwrap(),
        GdprResponse::DeletionVerified(true)
    );

    // The audit trail recorded this session's operations.
    match client
        .execute(
            &Session::regulator(),
            &GdprQuery::GetSystemLogs {
                from_ms: 0,
                to_ms: u64::MAX,
            },
        )
        .unwrap()
    {
        GdprResponse::Logs(lines) => {
            assert!(lines
                .iter()
                .any(|l| l.operation == "delete-record-by-usr" && l.detail.contains(&user)));
        }
        other => panic!("expected logs, got {other:?}"),
    }

    let stats = client.conn_stats().unwrap();
    assert!(stats.requests > 20);
    assert!(stats.errors >= 1, "the denied read counts as a GDPR error");
}
