//! Cross-crate integration: the full personal-data lifecycle through the
//! public API, on every connector variant.

use gdprbench_repro::connectors::{PostgresConnector, RedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{
    GdprConnector, GdprError, GdprQuery, GdprResponse, MetadataField, MetadataUpdate, Session,
};
use std::time::Duration;

fn all_connectors() -> Vec<Box<dyn GdprConnector>> {
    vec![
        Box::new(RedisConnector::open_compliant().unwrap()),
        Box::new(PostgresConnector::open_compliant().unwrap()),
        Box::new(
            PostgresConnector::with_metadata_indices(
                gdprbench_repro::relstore::Database::open(
                    gdprbench_repro::relstore::RelConfig::gdpr_compliant_in_memory(),
                )
                .unwrap(),
            )
            .unwrap(),
        ),
    ]
}

fn record(key: &str, user: &str, purposes: &[&str]) -> PersonalRecord {
    PersonalRecord::new(
        key,
        format!("payload-{key}"),
        Metadata::new(
            user,
            purposes.iter().map(|s| s.to_string()).collect(),
            Duration::from_secs(86_400),
        ),
    )
}

/// The complete lifecycle: collect → process → object → rectify → port →
/// share → investigate → erase → verify, on every connector.
#[test]
fn full_personal_data_lifecycle() {
    for conn in all_connectors() {
        let name = conn.name().to_string();
        let controller = Session::controller();
        let neo = Session::customer("neo");
        let regulator = Session::regulator();

        // Collection.
        for (key, purposes) in [("r1", vec!["ads", "billing"]), ("r2", vec!["billing"])] {
            conn.execute(
                &controller,
                &GdprQuery::CreateRecord(record(key, "neo", &purposes)),
            )
            .unwrap();
        }
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record("r3", "smith", &["ads"])),
        )
        .unwrap();

        // Processing under purpose.
        let ads = Session::processor("ads");
        let visible = conn
            .execute(&ads, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap();
        assert_eq!(visible.cardinality(), 2, "{name}");

        // Objection narrows processing.
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "r1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
        let visible = conn
            .execute(&ads, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap();
        assert_eq!(visible.cardinality(), 1, "{name}: objection must bite");

        // Rectification.
        conn.execute(
            &neo,
            &GdprQuery::UpdateDataByKey {
                key: "r2".into(),
                data: "corrected".into(),
            },
        )
        .unwrap();

        // Portability: all of neo's data with metadata.
        let data = conn
            .execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
            .unwrap();
        assert_eq!(data.cardinality(), 2, "{name}");
        assert!(data
            .as_data()
            .unwrap()
            .contains(&("r2".to_string(), "corrected".to_string())));
        let meta = conn
            .execute(&neo, &GdprQuery::ReadMetadataByUser("neo".into()))
            .unwrap();
        assert_eq!(meta.cardinality(), 2, "{name}");

        // Sharing management + regulator investigation.
        conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByUser {
                user: "neo".into(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
            },
        )
        .unwrap();
        let shared = conn
            .execute(
                &regulator,
                &GdprQuery::ReadMetadataBySharedWith("x-corp".into()),
            )
            .unwrap();
        assert_eq!(shared.cardinality(), 2, "{name}");

        // Erasure + verification.
        conn.execute(&neo, &GdprQuery::DeleteByUser("neo".into()))
            .unwrap();
        assert_eq!(conn.record_count(), 1, "{name}");
        assert_eq!(
            conn.execute(&regulator, &GdprQuery::VerifyDeletion("r1".into()))
                .unwrap(),
            GdprResponse::DeletionVerified(true),
            "{name}"
        );

        // The audit trail saw the whole story.
        let logs = conn
            .execute(
                &regulator,
                &GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            )
            .unwrap();
        let lines = match logs {
            GdprResponse::Logs(lines) => lines,
            other => panic!("{name}: expected logs, got {other:?}"),
        };
        for op in [
            "create-record",
            "read-data-by-pur",
            "update-metadata-by-key",
            "update-data-by-key",
            "read-data-by-usr",
            "delete-record-by-usr",
            "verify-deletion",
        ] {
            assert!(
                lines.iter().any(|l| l.operation == op),
                "{name}: audit trail missing {op}"
            );
        }
    }
}

/// Role boundaries hold identically everywhere.
#[test]
fn acl_matrix_is_uniform_across_connectors() {
    for conn in all_connectors() {
        let name = conn.name().to_string();
        let controller = Session::controller();
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record("r1", "neo", &["ads"])),
        )
        .unwrap();

        let denied: Vec<(Session, GdprQuery)> = vec![
            (
                Session::customer("smith"),
                GdprQuery::ReadDataByUser("neo".into()),
            ),
            (
                Session::customer("smith"),
                GdprQuery::DeleteByKey("r1".into()),
            ),
            (
                Session::processor("billing"),
                GdprQuery::ReadDataByKey("r1".into()),
            ),
            (
                Session::processor("ads"),
                GdprQuery::DeleteByKey("r1".into()),
            ),
            (Session::regulator(), GdprQuery::ReadDataByKey("r1".into())),
            (
                Session::controller(),
                GdprQuery::ReadDataByUser("neo".into()),
            ),
        ];
        for (session, query) in denied {
            let result = conn.execute(&session, &query);
            assert!(
                matches!(result, Err(GdprError::AccessDenied { .. })),
                "{name}: {} as {} should be denied, got {result:?}",
                query.name(),
                session.role
            );
        }
        // The record is untouched by all the denied attempts.
        assert_eq!(conn.record_count(), 1, "{name}");
    }
}

/// GET-SYSTEM-FEATURES reflects configuration truthfully.
#[test]
fn feature_reports_match_configuration() {
    // A bare store is not compliant...
    let bare = RedisConnector::new(
        gdprbench_repro::kvstore::KvStore::open(gdprbench_repro::kvstore::KvConfig::default())
            .unwrap(),
    );
    assert!(!bare.features().is_fully_compliant());
    assert!(!bare.features().gaps().is_empty());

    // ...the retrofitted ones are.
    for conn in all_connectors() {
        assert!(
            conn.features().is_fully_compliant(),
            "{}: {:?}",
            conn.name(),
            conn.features()
        );
        let resp = conn
            .execute(&Session::controller(), &GdprQuery::GetSystemFeatures)
            .unwrap();
        assert!(matches!(resp, GdprResponse::Features(f) if f.is_fully_compliant()));
    }
}

/// The "metadata explosion" invariant: for benchmark-shaped records, stored
/// bytes far exceed personal-data bytes on every connector.
#[test]
fn space_overhead_exceeds_one_everywhere() {
    for conn in all_connectors() {
        let controller = Session::controller();
        for i in 0..200 {
            let r = gdprbench_repro::workload::datagen::record_of(
                i,
                &gdprbench_repro::workload::datagen::CorpusConfig::default(),
            );
            conn.execute(&controller, &GdprQuery::CreateRecord(r))
                .unwrap();
        }
        let space = conn.space_report();
        assert!(space.personal_data_bytes >= 200 * 10);
        assert!(space.overhead_factor() > 1.0, "{}: {space:?}", conn.name());
    }
}
