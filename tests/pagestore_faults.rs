//! Page-level fault injection against the disk-native backend.
//!
//! The contract under test (`pagestore`): reopening a store directory
//! must **never panic** and **never serve a wrong record** — whatever
//! bytes sit in `wal.log` or `pages.db`. A torn or corrupted WAL tail
//! rolls back to the last intact commit, so the recovered state is always
//! some *committed prefix* of the transaction history; a corrupted page
//! image is detected by its checksum and surfaces as an error, never as
//! silently wrong data. After every single reopen, the engine's metadata
//! index must answer every predicate in the taxonomy identically to the
//! reference scan semantics (`keys_for ≡ scan`), mirroring
//! `tests/recovery_faults.rs` one layer down the stack.

use gdprbench_repro::clock;
use gdprbench_repro::connectors::DiskConnector;
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::store::RecordPredicate;
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, Session};
use gdprbench_repro::pagestore::{PageStore, PageStoreConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch directory per call (tests run concurrently).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gdpr-pagestore-faults-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small pool (recovery pages through eviction) and manual checkpoints
/// only — the tests control exactly what sits in which file.
fn config() -> PageStoreConfig {
    PageStoreConfig {
        pool_pages: 4,
        checkpoint_frames: usize::MAX,
        ..Default::default()
    }
}

fn open(dir: &Path) -> Arc<PageStore> {
    PageStore::open(dir, config(), clock::wall()).unwrap()
}

/// A small but metadata-diverse corpus: every index dimension (user,
/// purpose, objection, sharing, decision opt-out, TTL) is populated on
/// some records and absent on others.
fn corpus() -> Vec<PersonalRecord> {
    (0..20)
        .map(|i| {
            let mut m = Metadata::new(
                format!("u{}", i % 4),
                vec![["ads", "2fa", "analytics"][i % 3].to_string()],
                Duration::from_secs(3_600 + i as u64),
            );
            if i % 3 == 0 {
                m.purposes.push("billing".into());
            }
            if i % 4 == 0 {
                m.objections.push("ads".into());
            }
            if i % 5 == 0 {
                m.sharing.push("x-corp".into());
            }
            if i % 6 == 0 {
                m.decisions.push(Metadata::DEC_OPT_OUT.to_string());
            }
            if i % 2 == 0 {
                m.ttl = None;
            }
            PersonalRecord::new(format!("k{i:02}"), format!("data-{i}"), m)
        })
        .collect()
}

/// The full predicate taxonomy over the corpus's term vocabulary,
/// including terms nothing matches.
fn taxonomy() -> Vec<RecordPredicate> {
    let mut preds = vec![RecordPredicate::DecisionEligible];
    for user in ["u0", "u1", "u2", "u3", "nobody"] {
        preds.push(RecordPredicate::User(user.into()));
    }
    for term in ["ads", "2fa", "analytics", "billing", "ghost"] {
        preds.push(RecordPredicate::DeclaredPurpose(term.into()));
        preds.push(RecordPredicate::AllowsPurpose(term.into()));
        preds.push(RecordPredicate::NotObjecting(term.into()));
    }
    for party in ["x-corp", "y-corp"] {
        preds.push(RecordPredicate::SharedWith(party.into()));
    }
    preds
}

/// The post-recovery invariant: for every predicate, the rebuilt index's
/// candidate set equals the reference scan semantics over `expected`.
fn assert_index_matches_scan(conn: &DiskConnector, expected: &[PersonalRecord], ctx: &str) {
    let index = conn.metadata_index().expect("indexed variant");
    for pred in taxonomy() {
        let mut want: Vec<String> = expected
            .iter()
            .filter(|r| pred.matches(r))
            .map(|r| r.key.clone())
            .collect();
        want.sort();
        let got = index
            .keys_for(&pred)
            .unwrap_or_else(|| panic!("{ctx}: {pred:?} must stay index-answerable"));
        assert_eq!(got, want, "{ctx}: wrong index for {pred:?}");
    }
    assert_eq!(index.len(), expected.len(), "{ctx}: index cardinality");
}

/// Scan the reopened store and require its state to be exactly the first
/// `generation` creates of the corpus — the committed-prefix property.
fn assert_state_is_prefix(store: &Arc<PageStore>, records: &[PersonalRecord], ctx: &str) {
    let g = store.generation() as usize;
    assert!(g <= records.len(), "{ctx}: generation {g} beyond history");
    let mut got: Vec<String> = store
        .scan()
        .unwrap_or_else(|e| panic!("{ctx}: committed state must scan, got {e}"))
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    got.sort();
    let mut want: Vec<String> = records[..g].iter().map(|r| r.key.clone()).collect();
    want.sort();
    assert_eq!(got, want, "{ctx}: state is not the generation-{g} prefix");
}

/// Seed a fresh store with the corpus (one commit per create, no
/// checkpoint: the WAL carries the whole history). Returns the dir.
fn seeded_dir(tag: &str) -> (PathBuf, Vec<PersonalRecord>) {
    let dir = scratch_dir(tag);
    let store = open(&dir);
    let conn = DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let controller = Session::controller();
    let records = corpus();
    for r in &records {
        conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
            .unwrap();
    }
    assert_eq!(store.generation() as usize, records.len());
    (dir, records)
}

fn copy_state(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for f in ["pages.db", "wal.log"] {
        std::fs::copy(from.join(f), to.join(f)).unwrap();
    }
}

/// Truncating the WAL at every prefix must never panic, always recover a
/// committed prefix of the history, and always leave `keys_for ≡ scan`.
/// Byte-granular over the header and first frames (where every torn-write
/// shape exists in miniature), frame-edge and prime-stride sampled beyond
/// — with the full predicate battery on a spread of prefixes.
#[test]
fn wal_truncation_at_every_prefix_recovers_a_committed_prefix() {
    let (dir, records) = seeded_dir("truncate");
    let wal = std::fs::read(dir.join("wal.log")).unwrap();
    let frame = gdprbench_repro::pagestore::wal::FRAME_SIZE;
    let header = gdprbench_repro::pagestore::wal::WAL_HEADER;

    let mut cuts: Vec<usize> = (0..(header + frame + 64).min(wal.len())).collect();
    cuts.extend((0..wal.len()).step_by(97));
    for edge in (header..=wal.len()).step_by(frame) {
        for cut in [edge.saturating_sub(1), edge, edge + 1, edge + frame / 2] {
            if cut <= wal.len() {
                cuts.push(cut);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    let reopen_dir = scratch_dir("truncate-reopen");
    for (i, &cut) in cuts.iter().enumerate() {
        std::fs::copy(dir.join("pages.db"), reopen_dir.join("pages.db")).unwrap();
        std::fs::write(reopen_dir.join("wal.log"), &wal[..cut]).unwrap();
        let store = open(&reopen_dir);
        assert_state_is_prefix(&store, &records, &format!("truncated at {cut}"));
        if i % 23 == 0 {
            let g = store.generation() as usize;
            let conn = DiskConnector::with_metadata_index(store).unwrap();
            assert_index_matches_scan(&conn, &records[..g], &format!("truncated at {cut}"));
        }
    }
    // The untouched WAL recovers the full history.
    copy_state(&dir, &reopen_dir);
    let store = open(&reopen_dir);
    assert_eq!(store.generation() as usize, records.len());
    assert_state_is_prefix(&store, &records, "intact WAL");
}

/// Flipping any bit in a WAL frame must kill that frame's checksum and
/// roll the recovered state back to the last commit before it — never
/// panic, never a record the surviving history does not back.
#[test]
fn bit_flips_in_wal_frames_roll_back_to_an_intact_commit() {
    let (dir, records) = seeded_dir("wal-flip");
    let wal = std::fs::read(dir.join("wal.log")).unwrap();

    // A seeded xorshift picks flip positions and masks across the file;
    // the header, a frame header, an image body, and the final frame are
    // also hit explicitly.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut flips: Vec<(usize, u8)> = (0..192)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as usize) % wal.len(), ((state >> 32) as u8) | 1)
        })
        .collect();
    let frame = gdprbench_repro::pagestore::wal::FRAME_SIZE;
    let header = gdprbench_repro::pagestore::wal::WAL_HEADER;
    flips.extend([
        (0, 0xFF),           // magic
        (8, 0x01),           // page-size field
        (header, 0x01),      // first frame: page id
        (header + 16, 0x80), // first frame: checksum
        (header + 24, 0x01), // first frame: image
        (wal.len() - 1, 0x40),
        (wal.len() - frame, 0x02),
    ]);

    let reopen_dir = scratch_dir("wal-flip-reopen");
    for (i, (pos, mask)) in flips.into_iter().enumerate() {
        let mut bad = wal.clone();
        bad[pos] ^= mask;
        std::fs::copy(dir.join("pages.db"), reopen_dir.join("pages.db")).unwrap();
        std::fs::write(reopen_dir.join("wal.log"), &bad).unwrap();
        let store = open(&reopen_dir);
        let ctx = format!("flip {mask:#x} at byte {pos}");
        if pos >= header {
            // Everything before the flipped frame must survive: the flip
            // sits in frame (pos - header) / frame_size, so at least that
            // many commits-worth of frames precede it. (Commits span
            // multiple frames; the generation bound is what's exact.)
            assert!(
                store.recovery().truncated_bytes > 0
                    || store.generation() as usize == records.len(),
                "{ctx}: a mid-file flip must truncate a tail (or hit slack)"
            );
        }
        assert_state_is_prefix(&store, &records, &ctx);
        if i % 31 == 0 {
            let g = store.generation() as usize;
            let conn = DiskConnector::with_metadata_index(store).unwrap();
            assert_index_matches_scan(&conn, &records[..g], &ctx);
        }
    }
}

/// Flipping bits in the data file after a checkpoint: a corrupted page is
/// caught by its checksum and surfaces as an error — the store must
/// never return wrong data and never panic, and pages still shadowed by
/// WAL images must keep reading correctly through them.
#[test]
fn bit_flips_in_page_file_are_detected_never_served() {
    let (dir, records) = seeded_dir("page-flip");
    open(&dir).checkpoint().unwrap(); // recovery + flush everything into pages.db
    let pages = std::fs::read(dir.join("pages.db")).unwrap();
    assert!(pages.len() > 4096, "checkpoint must materialise the tree");

    let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
    let flips: Vec<(usize, u8)> = (0..96)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as usize) % pages.len(), ((state >> 32) as u8) | 1)
        })
        .collect();

    let reopen_dir = scratch_dir("page-flip-reopen");
    let mut detected = 0;
    for (pos, mask) in flips {
        let mut bad = pages.clone();
        bad[pos] ^= mask;
        std::fs::create_dir_all(&reopen_dir).unwrap();
        std::fs::write(reopen_dir.join("pages.db"), &bad).unwrap();
        let _ = std::fs::remove_file(reopen_dir.join("wal.log"));
        let ctx = format!("page flip {mask:#x} at byte {pos}");
        // Meta-page corruption is caught at open; elsewhere at first read.
        let store = match PageStore::open(&reopen_dir, config(), clock::wall()) {
            Ok(store) => store,
            Err(e) => {
                assert!(
                    pos < 4096,
                    "{ctx}: only meta corruption may fail open ({e})"
                );
                detected += 1;
                continue;
            }
        };
        match store.scan() {
            Ok(pairs) => {
                // The flip landed in page slack or a freed page: the data
                // that is actually reachable must still be exact.
                let mut got: Vec<String> = pairs.into_iter().map(|(k, _)| k).collect();
                got.sort();
                let want: Vec<String> = records.iter().map(|r| r.key.clone()).collect();
                assert_eq!(got, want, "{ctx}: survived flip must not change state");
            }
            Err(_) => detected += 1,
        }
    }
    assert!(
        detected > 0,
        "the sweep must hit live pages (else it tests nothing)"
    );
}

/// Crash-point simulation around the WAL→data-file checkpoint: freeze the
/// two files at every interesting instant and reopen each combination.
/// Stale data pages + newer WAL must recover the newer state; data pages
/// flushed but WAL not yet truncated must replay idempotently; a lost
/// (never-synced) WAL must fall back to exactly the checkpoint state.
#[test]
fn crash_points_between_wal_append_and_page_write_recover_consistently() {
    let dir = scratch_dir("crash");
    let store = open(&dir);
    let conn = DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let controller = Session::controller();
    let records = corpus();
    for r in &records {
        conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
            .unwrap();
    }
    store.checkpoint().unwrap();
    let checkpoint_gen = store.generation();
    let at_checkpoint = scratch_dir("crash-at-checkpoint");
    copy_state(&dir, &at_checkpoint);

    // Move history past the checkpoint: rewrites, a delete, an add — the
    // WAL now carries page images that *contradict* the checkpointed ones.
    let mut after: Vec<PersonalRecord> = records.clone();
    for key in ["k03", "k07", "k11"] {
        let owner = after
            .iter()
            .find(|r| r.key == key)
            .unwrap()
            .metadata
            .user
            .clone();
        conn.execute(
            &Session::customer(owner),
            &GdprQuery::UpdateDataByKey {
                key: key.into(),
                data: format!("rewritten-{key}"),
            },
        )
        .unwrap();
        after.iter_mut().find(|r| r.key == key).unwrap().data = format!("rewritten-{key}");
    }
    conn.execute(&controller, &GdprQuery::DeleteByKey("k19".into()))
        .unwrap();
    after.retain(|r| r.key != "k19");
    let extra = PersonalRecord::new(
        "k-late",
        "late-data",
        Metadata::new("u1", vec!["2fa".into()], Duration::from_secs(3_600)),
    );
    conn.execute(&controller, &GdprQuery::CreateRecord(extra.clone()))
        .unwrap();
    after.push(extra);
    let final_gen = store.generation();
    assert!(final_gen > checkpoint_gen);

    // Crash point A — WAL appended, data file never rewritten (the copy
    // holds the *checkpoint-time* pages with the *final* WAL).
    let point_a = scratch_dir("crash-a");
    std::fs::copy(at_checkpoint.join("pages.db"), point_a.join("pages.db")).unwrap();
    std::fs::copy(dir.join("wal.log"), point_a.join("wal.log")).unwrap();

    // Crash point B — mid-checkpoint: data file flushed with the final
    // images but the WAL not yet truncated (replay is idempotent).
    store.checkpoint().unwrap();
    let point_b = scratch_dir("crash-b");
    std::fs::copy(dir.join("pages.db"), point_b.join("pages.db")).unwrap();
    std::fs::copy(point_a.join("wal.log"), point_b.join("wal.log")).unwrap();

    // Crash point C — checkpoint completed (clean files, empty WAL).
    let point_c = scratch_dir("crash-c");
    copy_state(&dir, &point_c);

    let mut sorted_after = after.clone();
    sorted_after.sort_by(|a, b| a.key.cmp(&b.key));
    for (tag, point, expect_replay) in [
        ("wal-ahead-of-pages", &point_a, true),
        ("mid-checkpoint", &point_b, true),
        ("clean-checkpoint", &point_c, false),
    ] {
        let store = open(point);
        assert_eq!(
            store.recovery().wal_frames > 0,
            expect_replay,
            "{tag}: wrong recovery path, got {}",
            store.recovery()
        );
        assert_eq!(store.generation(), final_gen, "{tag}");
        let got: Vec<(String, Vec<u8>)> = store.scan().unwrap();
        let want: Vec<String> = sorted_after.iter().map(|r| r.key.clone()).collect();
        assert_eq!(
            got.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            want,
            "{tag}: key set diverged"
        );
        let conn = DiskConnector::with_metadata_index(store).unwrap();
        assert_index_matches_scan(&conn, &after, tag);
        // The rewrites must read back rewritten — a stale checkpoint page
        // served over a newer WAL image would surface exactly here.
        for key in ["k03", "k07", "k11"] {
            let resp = conn
                .execute(
                    &Session::processor("2fa"),
                    &GdprQuery::ReadDataByKey(key.into()),
                )
                .or_else(|_| {
                    conn.execute(
                        &Session::processor("ads"),
                        &GdprQuery::ReadDataByKey(key.into()),
                    )
                })
                .or_else(|_| {
                    conn.execute(
                        &Session::processor("analytics"),
                        &GdprQuery::ReadDataByKey(key.into()),
                    )
                })
                .unwrap();
            let data = format!("{resp:?}");
            assert!(
                data.contains(&format!("rewritten-{key}")),
                "{tag}: {key} must serve the post-checkpoint rewrite, got {data}"
            );
        }
    }

    // Crash point D — the post-checkpoint WAL never reached disk at all:
    // stale pages, stale (empty) WAL. Recovery lands on exactly the
    // checkpoint state — older, but a consistent committed prefix.
    let point_d = scratch_dir("crash-d");
    copy_state(&at_checkpoint, &point_d);
    let store = open(&point_d);
    assert_eq!(
        store.generation(),
        checkpoint_gen,
        "lost WAL → checkpoint state"
    );
    let got: Vec<String> = store.scan().unwrap().into_iter().map(|(k, _)| k).collect();
    let mut want: Vec<String> = records.iter().map(|r| r.key.clone()).collect();
    want.sort();
    assert_eq!(got, want, "lost WAL must serve the checkpoint corpus");
    let conn = DiskConnector::with_metadata_index(store).unwrap();
    assert_index_matches_scan(&conn, &records, "lost WAL");
}

/// TTL deadlines survive WAL recovery bit-exactly: a record created with
/// a TTL, recovered through the WAL, fires the inclusive-boundary purge
/// (`deadline == now` is expired) exactly as a never-crashed store would.
#[test]
fn recovered_deadlines_fire_at_the_inclusive_boundary() {
    let dir = scratch_dir("ttl");
    let sim = clock::sim();
    let store = PageStore::open(&dir, config(), sim.clone()).unwrap();
    let conn = DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let controller = Session::controller();
    let mut record = PersonalRecord::new(
        "ttl-1",
        "d",
        Metadata::new("neo", vec!["ads".into()], Duration::from_secs(10)),
    );
    record.metadata.ttl = Some(Duration::from_secs(10));
    conn.execute(&controller, &GdprQuery::CreateRecord(record))
        .unwrap();
    drop((conn, store)); // crash without checkpoint

    let crashed = scratch_dir("ttl-reopen");
    copy_state(&dir, &crashed);
    let store = PageStore::open(&crashed, config(), sim.clone()).unwrap();
    assert!(
        store.recovery().wal_frames > 0,
        "must come up through the WAL"
    );
    sim.advance(Duration::from_millis(9_999));
    assert_eq!(store.expired_keys().unwrap().len(), 0, "not due at −1ms");
    sim.advance(Duration::from_millis(1));
    assert_eq!(
        store.expired_keys().unwrap(),
        vec!["ttl-1"],
        "deadline == now is expired after recovery"
    );
    assert_eq!(store.purge_expired().unwrap(), 1);
    assert_eq!(store.record_count(), 0);
}

/// Tenant-prefixed keys (`"<tenant>\x1d<key>"`, PR-9) ride through WAL
/// recovery unchanged: per-tenant state survives a crash with tenant
/// isolation intact.
#[test]
fn tenant_prefixed_keys_survive_recovery_with_isolation_intact() {
    use gdprbench_repro::gdpr_core::tenant::TenantId;
    let dir = scratch_dir("tenants");
    let store = open(&dir);
    let conn = DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let t0 = TenantId::new("t0").unwrap();
    let t1 = TenantId::new("t1").unwrap();
    for tenant in [&t0, &t1] {
        let controller = Session::controller().with_tenant(tenant.clone());
        for r in corpus().into_iter().take(5) {
            conn.execute(&controller, &GdprQuery::CreateRecord(r))
                .unwrap();
        }
    }
    drop((conn, store));

    let crashed = scratch_dir("tenants-reopen");
    copy_state(&dir, &crashed);
    let store = open(&crashed);
    assert!(store.recovery().wal_frames > 0);
    let conn = DiskConnector::with_metadata_index(store).unwrap();
    for tenant in [&t0, &t1] {
        let u0 = Session::customer("u0").with_tenant(tenant.clone());
        let resp = conn
            .execute(&u0, &GdprQuery::ReadDataByUser("u0".into()))
            .unwrap();
        assert_eq!(
            resp.cardinality(),
            2,
            "tenant {tenant:?} sees exactly its own u0 records after recovery"
        );
    }
}
