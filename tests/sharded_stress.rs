//! Concurrency stress for the sharded compliance engine: a multi-threaded
//! mixed workload (creates, rectifications, metadata updates, deletions,
//! cross-shard reads) against `ShardedRedisConnector`, asserting the three
//! properties a concurrency topology must not cost:
//!
//! * **no lost updates** — every write a thread performed is visible
//!   afterwards, with the last-written payload;
//! * **no cross-user visibility leaks** — a customer's reads, issued
//!   concurrently with other users' writes, only ever surface that
//!   customer's records (per-shard locking must not let a record transit
//!   through another user's result set);
//! * **audit-log completeness** — the unified trail holds exactly one
//!   event per executed query, whatever thread or shard ran it.

use gdprbench_repro::connectors::ShardedRedisConnector;
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{
    GdprConnector, GdprQuery, GdprResponse, MetadataField, MetadataUpdate, Session,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WRITERS: usize = 4;
const READERS: usize = 2;
const KEYS_PER_WRITER: usize = 120;
const SHARDS: usize = 8;

fn user_of(thread: usize) -> String {
    format!("user-{thread}")
}

fn purpose_of(thread: usize) -> String {
    format!("pur-{thread}")
}

fn key_of(thread: usize, i: usize) -> String {
    format!("u{thread}-k{i:04}")
}

fn record(thread: usize, i: usize) -> PersonalRecord {
    PersonalRecord::new(
        key_of(thread, i),
        format!("v0-{thread}-{i}"),
        Metadata::new(
            user_of(thread),
            vec![purpose_of(thread)],
            Duration::from_secs(3600),
        ),
    )
}

#[test]
fn concurrent_mixed_workload_preserves_compliance_invariants() {
    let conn = Arc::new(ShardedRedisConnector::open(SHARDS).unwrap());
    let issued = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Writer t owns the disjoint key range u{t}-k*: creates every key,
    // rectifies half, registers objections on a third, deletes every
    // fourth. All through the shared connector, all concurrently.
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let conn = Arc::clone(&conn);
            let issued = Arc::clone(&issued);
            std::thread::spawn(move || {
                let controller = Session::controller();
                let customer = Session::customer(user_of(t));
                let mut ops = 0usize;
                for i in 0..KEYS_PER_WRITER {
                    conn.execute(&controller, &GdprQuery::CreateRecord(record(t, i)))
                        .unwrap();
                    ops += 1;
                }
                for i in 0..KEYS_PER_WRITER {
                    if i % 2 == 0 {
                        conn.execute(
                            &customer,
                            &GdprQuery::UpdateDataByKey {
                                key: key_of(t, i),
                                data: format!("final-{t}-{i}"),
                            },
                        )
                        .unwrap();
                        ops += 1;
                    }
                    if i % 3 == 0 {
                        conn.execute(
                            &customer,
                            &GdprQuery::UpdateMetadataByKey {
                                key: key_of(t, i),
                                update: MetadataUpdate::Add(
                                    MetadataField::Objections,
                                    "spam".to_string(),
                                ),
                            },
                        )
                        .unwrap();
                        ops += 1;
                    }
                }
                for i in 0..KEYS_PER_WRITER {
                    if i % 4 == 0 {
                        conn.execute(&customer, &GdprQuery::DeleteByKey(key_of(t, i)))
                            .unwrap();
                        ops += 1;
                    }
                }
                issued.fetch_add(ops, Ordering::SeqCst);
            })
        })
        .collect();

    // Readers hammer cross-shard fan-out queries concurrently with the
    // writers and assert the visibility invariant on every response.
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let conn = Arc::clone(&conn);
            let issued = Arc::clone(&issued);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ops = 0usize;
                let mut t = r;
                while !stop.load(Ordering::SeqCst) {
                    t = (t + 1) % WRITERS;
                    let prefix = format!("u{t}-");
                    let customer = Session::customer(user_of(t));
                    let resp = conn
                        .execute(&customer, &GdprQuery::ReadDataByUser(user_of(t)))
                        .unwrap();
                    ops += 1;
                    for (key, _) in resp.as_data().unwrap() {
                        assert!(
                            key.starts_with(&prefix),
                            "cross-user leak: {key} surfaced for {}",
                            user_of(t)
                        );
                    }
                    let processor = Session::processor(purpose_of(t));
                    let resp = conn
                        .execute(&processor, &GdprQuery::ReadDataByPurpose(purpose_of(t)))
                        .unwrap();
                    ops += 1;
                    for (key, _) in resp.as_data().unwrap() {
                        assert!(
                            key.starts_with(&prefix),
                            "purpose leak: {key} surfaced for {}",
                            purpose_of(t)
                        );
                    }
                }
                issued.fetch_add(ops, Ordering::SeqCst);
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }

    // No lost updates: every surviving key is present with the payload its
    // owning thread wrote last; every deleted key is verifiably gone.
    let regulator = Session::regulator();
    for t in 0..WRITERS {
        let resp = conn
            .execute(
                &Session::customer(user_of(t)),
                &GdprQuery::ReadDataByUser(user_of(t)),
            )
            .unwrap();
        let mut got: Vec<(String, String)> = resp.as_data().unwrap().to_vec();
        got.sort();
        let mut want: Vec<(String, String)> = (0..KEYS_PER_WRITER)
            .filter(|i| i % 4 != 0)
            .map(|i| {
                let data = if i % 2 == 0 {
                    format!("final-{t}-{i}")
                } else {
                    format!("v0-{t}-{i}")
                };
                (key_of(t, i), data)
            })
            .collect();
        want.sort();
        assert_eq!(got, want, "thread {t} lost an update");

        for i in (0..KEYS_PER_WRITER).step_by(4) {
            assert_eq!(
                conn.execute(&regulator, &GdprQuery::VerifyDeletion(key_of(t, i)))
                    .unwrap(),
                GdprResponse::DeletionVerified(true),
                "deleted key resurfaced"
            );
        }
    }

    // Objections took effect atomically with their records: the processor
    // view under objection-carrying metadata stays self-consistent.
    for t in 0..WRITERS {
        let resp = conn
            .execute(
                &Session::processor(purpose_of(t)),
                &GdprQuery::ReadDataByPurpose(purpose_of(t)),
            )
            .unwrap();
        // Objections were to "spam", not pur-t, so everything live shows.
        assert_eq!(
            resp.cardinality(),
            KEYS_PER_WRITER - KEYS_PER_WRITER.div_ceil(4),
            "thread {t} purpose view"
        );
    }

    // Audit-log completeness: one event per executed query. The final
    // verification queries above are audited too, so count them.
    let post_ops = WRITERS // ReadDataByUser per writer
        + WRITERS * KEYS_PER_WRITER.div_ceil(4) // VerifyDeletion sweeps
        + WRITERS; // ReadDataByPurpose per writer
    let expected = issued.load(Ordering::SeqCst) + post_ops;
    assert_eq!(
        conn.audit().len(),
        expected,
        "audit trail must record every query exactly once"
    );

    // The workload really spread across shards.
    let populated = (0..conn.shard_count())
        .filter(|&i| conn.store(i).dbsize() > 0)
        .count();
    assert!(
        populated >= SHARDS / 2,
        "workload unexpectedly concentrated: {populated}/{SHARDS} shards populated"
    );
}
