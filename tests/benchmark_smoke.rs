//! End-to-end benchmark smoke: GDPRbench's three metrics come out sane on
//! every connector at small scale, and the YCSB engine drives both stores.

use gdprbench_repro::gdpr_core::GdprConnector;
use gdprbench_repro::workload::gdpr::{load_corpus, stable_corpus, GdprWorkloadKind};
use gdprbench_repro::workload::ycsb::{
    ycsb_key, KvInterface, KvStoreYcsb, RelStoreYcsb, YcsbConfig,
};
use gdprbench_repro::workload::{datagen, run_gdpr_workload, run_ycsb_workload};
use std::sync::Arc;

fn fresh(db: &str) -> Arc<dyn GdprConnector> {
    match db {
        "redis" => Arc::new(gdprbench_repro::connectors::RedisConnector::new(
            gdprbench_repro::kvstore::KvStore::open(Default::default()).unwrap(),
        )),
        "postgres" => Arc::new(
            gdprbench_repro::connectors::PostgresConnector::new(
                gdprbench_repro::relstore::Database::open(Default::default()).unwrap(),
            )
            .unwrap(),
        ),
        _ => Arc::new(
            gdprbench_repro::connectors::PostgresConnector::with_metadata_indices(
                gdprbench_repro::relstore::Database::open(Default::default()).unwrap(),
            )
            .unwrap(),
        ),
    }
}

/// Correctness ≥99% for every (connector, workload) pair — the benchmark's
/// first metric, with the oracle in lock-step.
#[test]
fn correctness_holds_across_the_matrix() {
    for db in ["redis", "postgres", "postgres-mi"] {
        for kind in GdprWorkloadKind::ALL {
            let conn = fresh(db);
            let corpus = stable_corpus(400);
            load_corpus(conn.as_ref(), &corpus).unwrap();
            let report = run_gdpr_workload(conn, kind, corpus, 150, 1, true);
            let correctness = report.correctness.unwrap();
            assert!(
                correctness >= 0.99,
                "{db}/{}: correctness {correctness}",
                kind.name()
            );
            assert_eq!(report.operations, 150);
            assert!(report.space.overhead_factor() > 1.0);
        }
    }
}

/// Multi-threaded runs complete and report completion time > 0 with the
/// per-query breakdown covering the workload's query classes.
#[test]
fn multithreaded_run_reports_per_query_stats() {
    let conn = fresh("postgres-mi");
    let corpus = stable_corpus(400);
    load_corpus(conn.as_ref(), &corpus).unwrap();
    let report = run_gdpr_workload(conn, GdprWorkloadKind::Regulator, corpus, 400, 4, false);
    assert!(report.completion.as_nanos() > 0);
    for query in ["read-metadata-by-usr", "get-system-logs", "verify-deletion"] {
        assert!(
            report.per_query.contains_key(query),
            "missing per-query stats for {query}: {:?}",
            report.per_query.keys().collect::<Vec<_>>()
        );
    }
    let p99 = report.per_query["verify-deletion"].latency.quantile(0.99);
    assert!(p99.as_nanos() > 0);
}

/// The YCSB engine runs its full workload suite on both adapters without a
/// single operation error.
#[test]
fn ycsb_suite_clean_on_both_stores() {
    for config in YcsbConfig::all() {
        let kv =
            KvStoreYcsb::new(gdprbench_repro::kvstore::KvStore::open(Default::default()).unwrap());
        for i in 0..200 {
            kv.insert(&ycsb_key(i), &datagen::ycsb_value(i, 100))
                .unwrap();
        }
        let report = run_ycsb_workload(Arc::new(kv), config.clone(), 200, 400, 2);
        assert_eq!(report.errors, 0, "kvstore workload {}", config.name);

        let rel = RelStoreYcsb::new(
            gdprbench_repro::relstore::Database::open(Default::default()).unwrap(),
        )
        .unwrap();
        for i in 0..200 {
            rel.insert(&ycsb_key(i), &datagen::ycsb_value(i, 100))
                .unwrap();
        }
        let report = run_ycsb_workload(Arc::new(rel), config.clone(), 200, 400, 2);
        assert_eq!(report.errors, 0, "relstore workload {}", config.name);
    }
}
