//! Property-based tests over the codecs and core data structures.

use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::wire;
use proptest::prelude::*;
use std::time::Duration;

/// ASCII text safe for the §4.2.1 wire format (no `;`/`,`, non-empty).
fn field() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 _.:/+=@#-]{1,24}").unwrap()
}

fn field_list(max: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(field(), 0..max)
}

prop_compose! {
    fn arb_record()(
        key in proptest::string::string_regex("[a-z0-9-]{1,16}").unwrap(),
        data in field(),
        user in field(),
        source in field(),
        purposes in field_list(4),
        objections in field_list(3),
        decisions in field_list(3),
        sharing in field_list(3),
        ttl_secs in proptest::option::of(1u64..10_000_000),
    ) -> PersonalRecord {
        PersonalRecord::new(key, data, Metadata {
            purposes: dedup(purposes),
            ttl: ttl_secs.map(Duration::from_secs),
            user,
            objections: dedup(objections),
            decisions: dedup(decisions),
            sharing: dedup(sharing),
            source,
        })
    }
}

fn dedup(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v.dedup();
    v
}

proptest! {
    /// Wire-format roundtrip for arbitrary valid records. TTLs are rounded
    /// to their coarsest exact unit by the format, so compare via re-format.
    #[test]
    fn wire_roundtrip(record in arb_record()) {
        let encoded = wire::serialize(&record);
        let decoded = wire::parse(&encoded).unwrap();
        prop_assert_eq!(&decoded.key, &record.key);
        prop_assert_eq!(&decoded.data, &record.data);
        prop_assert_eq!(&decoded.metadata.user, &record.metadata.user);
        prop_assert_eq!(&decoded.metadata.purposes, &record.metadata.purposes);
        prop_assert_eq!(&decoded.metadata.objections, &record.metadata.objections);
        prop_assert_eq!(&decoded.metadata.sharing, &record.metadata.sharing);
        prop_assert_eq!(decoded.metadata.ttl, record.metadata.ttl);
        // Serialization is stable (parse∘serialize is idempotent).
        prop_assert_eq!(wire::serialize(&decoded), encoded);
    }

    /// The wire parser never panics on arbitrary input.
    #[test]
    fn wire_parse_never_panics(input in ".{0,200}") {
        let _ = wire::parse(&input);
    }

    /// RESP command encoding roundtrips arbitrary binary parts.
    #[test]
    fn resp_roundtrip(parts in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 1..8)
    ) {
        let parts: Vec<gdprbench_repro::kvstore::Bytes> = parts.into_iter().map(gdprbench_repro::kvstore::Bytes::from).collect();
        let encoded = gdprbench_repro::kvstore::resp::encode_command(&parts);
        let (decoded, used) = gdprbench_repro::kvstore::resp::parse_command(&encoded).unwrap();
        prop_assert_eq!(decoded, parts);
        prop_assert_eq!(used, encoded.len());
    }

    /// The RESP parser never panics on garbage.
    #[test]
    fn resp_parse_never_panics(input in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = gdprbench_repro::kvstore::resp::parse_command(&input);
    }

    /// Datum binary codec roundtrips.
    #[test]
    fn datum_roundtrip(
        n in any::<i64>(),
        x in any::<f64>().prop_filter("nan breaks eq", |v| !v.is_nan()),
        s in field(),
        arr in field_list(5),
        ts in any::<u64>(),
    ) {
        use gdprbench_repro::relstore::Datum;
        for datum in [
            Datum::Null,
            Datum::Int(n),
            Datum::Float(x),
            Datum::Text(s),
            Datum::TextArray(arr),
            Datum::Timestamp(ts),
        ] {
            let mut buf = Vec::new();
            datum.encode(&mut buf);
            let mut pos = 0;
            let decoded = Datum::decode(&buf, &mut pos).unwrap();
            prop_assert_eq!(decoded, datum);
            prop_assert_eq!(pos, buf.len());
        }
    }

    /// The glob matcher agrees with a naive regex-style reference on
    /// star-and-literal patterns and never panics on anything.
    #[test]
    fn glob_star_semantics(
        prefix in "[a-z]{0,6}", middle in "[a-z]{0,6}", suffix in "[a-z]{0,6}",
        text in "[a-z]{0,18}",
    ) {
        use gdprbench_repro::kvstore::glob::glob_match;
        let pattern = format!("{prefix}*{middle}*{suffix}");
        let matched = glob_match(pattern.as_bytes(), text.as_bytes());
        // Reference: text must start with prefix, end with suffix, and
        // contain middle in between (in order).
        let reference = text.strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(&suffix))
            .map(|mid| mid.contains(&middle) || middle.is_empty())
            .unwrap_or(false)
            // Overlap subtlety: strip_prefix/suffix can overlap; accept
            // either verdict when prefix+suffix exceed the text.
            || (prefix.len() + suffix.len() > text.len() && matched);
        prop_assert_eq!(matched, reference, "pattern={} text={}", pattern, text);
    }

    /// B+Tree agrees with a BTreeMap model under arbitrary operation
    /// sequences, including range queries.
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(
        (0u16..200, 0u8..8, any::<bool>()), 1..300)
    ) {
        use gdprbench_repro::relstore::btree::BPlusTree;
        use std::collections::BTreeMap;
        let mut tree: BPlusTree<u16, u8> = BPlusTree::new();
        let mut model: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        for (key, value, insert) in ops {
            if insert {
                let plist = model.entry(key).or_default();
                let expect = if plist.contains(&value) { false } else { plist.push(value); true };
                prop_assert_eq!(tree.insert(key, value), expect);
            } else {
                let expect = model.get_mut(&key).map(|plist| {
                    if let Some(pos) = plist.iter().position(|v| *v == value) {
                        plist.swap_remove(pos);
                        true
                    } else { false }
                }).unwrap_or(false);
                if model.get(&key).is_some_and(Vec::is_empty) {
                    model.remove(&key);
                }
                prop_assert_eq!(tree.remove(&key, &value), expect);
            }
        }
        prop_assert_eq!(tree.key_count(), model.len());
        let got: Vec<u16> = tree.range(&50, &150).into_iter().map(|(k, _)| k).collect();
        let want: Vec<u16> = model.range(50..=150)
            .flat_map(|(k, plist)| std::iter::repeat_n(*k, plist.len()))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Sealed volume blocks always roundtrip and always detect single-bit
    /// corruption.
    #[test]
    fn volume_roundtrip_and_corruption(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        block in any::<u64>(),
        flip_bit in 0usize..64,
    ) {
        let volume = gdprbench_repro::crypto::Volume::new(b"prop-key");
        let sealed = volume.seal(block, &data);
        let (got_block, got) = volume.open(&sealed).unwrap();
        prop_assert_eq!(got_block, block);
        prop_assert_eq!(got, data);
        let mut bad = sealed.clone();
        let idx = flip_bit % bad.len().max(1);
        bad[idx] ^= 1 << (flip_bit % 8);
        prop_assert!(volume.open(&bad).is_err());
    }
}
