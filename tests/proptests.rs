//! Property-based tests over the codecs, core data structures, and the
//! compliance engine's metadata-index path.
//!
//! The crates.io `proptest` crate is unavailable in this offline build, so
//! properties run on a small seeded-case harness: each property executes
//! over many deterministic seeds and reports the failing seed on panic.
//! Shrinking is traded away; reproducibility is kept.

use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::wire;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Run `body` once per seed, labelling panics with the seed that failed.
fn run_cases(cases: u64, body: impl Fn(&mut SmallRng)) {
    for seed in 0..cases {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed.wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property failed at seed {seed}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// ASCII text safe for the §4.2.1 wire format (no `;`/`,`, non-empty).
fn field(rng: &mut SmallRng) -> String {
    const CHARS: &[u8] =
        b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.:/+=@#-";
    let len = rng.gen_range(1usize..25);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0usize..CHARS.len())] as char)
        .collect()
}

fn key_field(rng: &mut SmallRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    let len = rng.gen_range(1usize..17);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0usize..CHARS.len())] as char)
        .collect()
}

fn field_list(rng: &mut SmallRng, max: usize) -> Vec<String> {
    let mut v: Vec<String> = (0..rng.gen_range(0usize..max))
        .map(|_| field(rng))
        .collect();
    v.sort();
    v.dedup();
    v
}

fn byte_vec(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0usize..max.max(1));
    (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
}

fn arb_record(rng: &mut SmallRng) -> PersonalRecord {
    let ttl = rng
        .gen_bool(0.7)
        .then(|| Duration::from_secs(rng.gen_range(1u64..10_000_000)));
    PersonalRecord::new(
        key_field(rng),
        field(rng),
        Metadata {
            purposes: field_list(rng, 4),
            ttl,
            user: field(rng),
            objections: field_list(rng, 3),
            decisions: field_list(rng, 3),
            sharing: field_list(rng, 3),
            source: field(rng),
        },
    )
}

/// Wire-format roundtrip for arbitrary valid records. TTLs are rounded
/// to their coarsest exact unit by the format, so compare via re-format.
#[test]
fn wire_roundtrip() {
    run_cases(256, |rng| {
        let record = arb_record(rng);
        let encoded = wire::serialize(&record);
        let decoded = wire::parse(&encoded).unwrap();
        assert_eq!(decoded.key, record.key);
        assert_eq!(decoded.data, record.data);
        assert_eq!(decoded.metadata.user, record.metadata.user);
        assert_eq!(decoded.metadata.purposes, record.metadata.purposes);
        assert_eq!(decoded.metadata.objections, record.metadata.objections);
        assert_eq!(decoded.metadata.sharing, record.metadata.sharing);
        assert_eq!(decoded.metadata.ttl, record.metadata.ttl);
        // Serialization is stable (parse∘serialize is idempotent).
        assert_eq!(wire::serialize(&decoded), encoded);
    });
}

/// The wire parser never panics on arbitrary input.
#[test]
fn wire_parse_never_panics() {
    run_cases(512, |rng| {
        let len = rng.gen_range(0usize..200);
        let input: String = (0..len)
            .map(|_| {
                // Bias toward the format's separator characters to hit the
                // parser's edge cases, not just garbage rejection.
                match rng.gen_range(0u32..6) {
                    0 => ';',
                    1 => ',',
                    2 => '=',
                    _ => rng.gen_range(0x20u32..0x7F) as u8 as char,
                }
            })
            .collect();
        let _ = wire::parse(&input);
    });
}

/// RESP command encoding roundtrips arbitrary binary parts.
#[test]
fn resp_roundtrip() {
    run_cases(256, |rng| {
        let parts: Vec<gdprbench_repro::kvstore::Bytes> = (0..rng.gen_range(1usize..8))
            .map(|_| gdprbench_repro::kvstore::Bytes::from(byte_vec(rng, 64)))
            .collect();
        let encoded = gdprbench_repro::kvstore::resp::encode_command(&parts);
        let (decoded, used) = gdprbench_repro::kvstore::resp::parse_command(&encoded).unwrap();
        assert_eq!(decoded, parts);
        assert_eq!(used, encoded.len());
    });
}

/// The RESP parser never panics on garbage.
#[test]
fn resp_parse_never_panics() {
    run_cases(512, |rng| {
        let input = byte_vec(rng, 128);
        let _ = gdprbench_repro::kvstore::resp::parse_command(&input);
    });
}

/// Datum binary codec roundtrips.
#[test]
fn datum_roundtrip() {
    use gdprbench_repro::relstore::Datum;
    run_cases(256, |rng| {
        let n = rng.gen::<u64>() as i64;
        let x = (rng.gen::<f64>() - 0.5) * rng.gen_range(1i64..1_000_000) as f64;
        for datum in [
            Datum::Null,
            Datum::Int(n),
            Datum::Float(x),
            Datum::Text(field(rng)),
            Datum::TextArray(field_list(rng, 5)),
            Datum::Timestamp(rng.gen::<u64>()),
        ] {
            let mut buf = Vec::new();
            datum.encode(&mut buf);
            let mut pos = 0;
            let decoded = Datum::decode(&buf, &mut pos).unwrap();
            assert_eq!(decoded, datum);
            assert_eq!(pos, buf.len());
        }
    });
}

/// The glob matcher agrees with a naive reference on star-and-literal
/// patterns and never panics on anything.
#[test]
fn glob_star_semantics() {
    use gdprbench_repro::kvstore::glob::glob_match;
    let lower = |rng: &mut SmallRng, max: usize| -> String {
        let len = rng.gen_range(0usize..max + 1);
        (0..len)
            .map(|_| rng.gen_range(b'a' as u32..b'z' as u32 + 1) as u8 as char)
            .collect()
    };
    run_cases(1024, |rng| {
        let prefix = lower(rng, 6);
        let middle = lower(rng, 6);
        let suffix = lower(rng, 6);
        let text = lower(rng, 18);
        let pattern = format!("{prefix}*{middle}*{suffix}");
        let matched = glob_match(pattern.as_bytes(), text.as_bytes());
        // Reference: text must start with prefix, end with suffix, and
        // contain middle in between (in order).
        let reference = text
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(&suffix))
            .map(|mid| mid.contains(&middle) || middle.is_empty())
            .unwrap_or(false)
            // Overlap subtlety: strip_prefix/suffix can overlap; accept
            // either verdict when prefix+suffix exceed the text.
            || (prefix.len() + suffix.len() > text.len() && matched);
        assert_eq!(matched, reference, "pattern={pattern} text={text}");
    });
}

/// B+Tree agrees with a BTreeMap model under arbitrary operation
/// sequences, including range queries.
#[test]
fn btree_matches_model() {
    use gdprbench_repro::relstore::btree::BPlusTree;
    use std::collections::BTreeMap;
    run_cases(128, |rng| {
        let mut tree: BPlusTree<u16, u8> = BPlusTree::new();
        let mut model: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.gen_range(1usize..300) {
            let key = rng.gen_range(0u32..200) as u16;
            let value = rng.gen_range(0u32..8) as u8;
            if rng.gen_bool(0.5) {
                let plist = model.entry(key).or_default();
                let expect = if plist.contains(&value) {
                    false
                } else {
                    plist.push(value);
                    true
                };
                assert_eq!(tree.insert(key, value), expect);
            } else {
                let expect = model
                    .get_mut(&key)
                    .map(|plist| {
                        if let Some(pos) = plist.iter().position(|v| *v == value) {
                            plist.swap_remove(pos);
                            true
                        } else {
                            false
                        }
                    })
                    .unwrap_or(false);
                if model.get(&key).is_some_and(Vec::is_empty) {
                    model.remove(&key);
                }
                assert_eq!(tree.remove(&key, &value), expect);
            }
        }
        assert_eq!(tree.key_count(), model.len());
        let got: Vec<u16> = tree.range(&50, &150).into_iter().map(|(k, _)| k).collect();
        let want: Vec<u16> = model
            .range(50..=150)
            .flat_map(|(k, plist)| std::iter::repeat_n(*k, plist.len()))
            .collect();
        assert_eq!(got, want);
    });
}

/// Sealed volume blocks always roundtrip and always detect single-bit
/// corruption.
#[test]
fn volume_roundtrip_and_corruption() {
    run_cases(256, |rng| {
        let data = byte_vec(rng, 256);
        let block = rng.gen::<u64>();
        let volume = gdprbench_repro::crypto::Volume::new(b"prop-key");
        let sealed = volume.seal(block, &data);
        let (got_block, got) = volume.open(&sealed).unwrap();
        assert_eq!(got_block, block);
        assert_eq!(got, data);
        let mut bad = sealed.clone();
        let flip_bit = rng.gen_range(0usize..64);
        let idx = flip_bit % bad.len().max(1);
        bad[idx] ^= 1 << (flip_bit % 8);
        assert!(volume.open(&bad).is_err());
    });
}

// ---------------------------------------------------------------------------
// GDPR wire-protocol codec properties (the gdpr-server network layer)
// ---------------------------------------------------------------------------

mod server_wire {
    use super::*;
    use gdprbench_repro::gdpr_core::compliance::{FeatureReport, FeatureSupport};
    use gdprbench_repro::gdpr_core::connector::SpaceReport;
    use gdprbench_repro::gdpr_core::response::LogLine;
    use gdprbench_repro::gdpr_core::tenant::TenantId;
    use gdprbench_repro::gdpr_core::{
        GdprError, GdprQuery, GdprResponse, MetadataField, MetadataUpdate, Session,
    };
    use gdprbench_repro::gdpr_server::wire::{
        decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
        RequestBody, ResponseBody, StatsSnapshot, MAX_FRAME,
    };

    fn arb_session(rng: &mut SmallRng) -> Session {
        match rng.gen_range(0u32..4) {
            0 => Session::controller(),
            1 => Session::customer(field(rng)),
            2 => Session::processor(field(rng)),
            _ => Session::regulator(),
        }
    }

    fn arb_tenant(rng: &mut SmallRng) -> TenantId {
        match rng.gen_range(0u32..3) {
            0 => TenantId::default(),
            1 => TenantId::new("acme").unwrap(),
            _ => TenantId::new("zeta-9").unwrap(),
        }
    }

    fn arb_duration(rng: &mut SmallRng) -> Duration {
        // Mix sub-second precision in: the codec must carry exact nanos.
        Duration::new(
            rng.gen_range(0u64..10_000_000),
            rng.gen_range(0u32..1_000_000_000),
        )
    }

    fn arb_field(rng: &mut SmallRng) -> MetadataField {
        [
            MetadataField::Purposes,
            MetadataField::Objections,
            MetadataField::Decisions,
            MetadataField::Sharing,
            MetadataField::Source,
            MetadataField::User,
        ][rng.gen_range(0usize..6)]
    }

    fn arb_update(rng: &mut SmallRng) -> MetadataUpdate {
        match rng.gen_range(0u32..4) {
            0 => MetadataUpdate::Add(arb_field(rng), field(rng)),
            1 => MetadataUpdate::Remove(arb_field(rng), field(rng)),
            2 => MetadataUpdate::SetScalar(arb_field(rng), field(rng)),
            _ => MetadataUpdate::SetTtl(arb_duration(rng)),
        }
    }

    /// Every `GdprQuery` variant, cycling deterministically through the
    /// taxonomy so each seed batch covers all 20.
    fn arb_query(rng: &mut SmallRng, variant: u32) -> GdprQuery {
        use GdprQuery::*;
        match variant % 20 {
            0 => CreateRecord(arb_record(rng)),
            1 => DeleteByKey(field(rng)),
            2 => DeleteByPurpose(field(rng)),
            3 => DeleteExpired,
            4 => DeleteByUser(field(rng)),
            5 => ReadDataByKey(field(rng)),
            6 => ReadDataByPurpose(field(rng)),
            7 => ReadDataByUser(field(rng)),
            8 => ReadDataNotObjecting(field(rng)),
            9 => ReadDataDecisionEligible,
            10 => ReadMetadataByKey(field(rng)),
            11 => ReadMetadataByUser(field(rng)),
            12 => ReadMetadataBySharedWith(field(rng)),
            13 => UpdateDataByKey {
                key: field(rng),
                data: field(rng),
            },
            14 => UpdateMetadataByKey {
                key: field(rng),
                update: arb_update(rng),
            },
            15 => UpdateMetadataByPurpose {
                purpose: field(rng),
                update: arb_update(rng),
            },
            16 => UpdateMetadataByUser {
                user: field(rng),
                update: arb_update(rng),
            },
            17 => GetSystemLogs {
                from_ms: rng.gen::<u64>(),
                to_ms: rng.gen::<u64>(),
            },
            18 => GetSystemFeatures,
            _ => VerifyDeletion(field(rng)),
        }
    }

    fn arb_records(
        rng: &mut SmallRng,
        max: usize,
    ) -> Vec<gdprbench_repro::gdpr_core::PersonalRecord> {
        (0..rng.gen_range(0usize..max))
            .map(|_| arb_record(rng))
            .collect()
    }

    fn arb_support(rng: &mut SmallRng) -> FeatureSupport {
        [
            FeatureSupport::Native,
            FeatureSupport::Retrofitted,
            FeatureSupport::Unsupported,
        ][rng.gen_range(0usize..3)]
    }

    fn arb_feature_report(rng: &mut SmallRng) -> FeatureReport {
        FeatureReport {
            timely_deletion: arb_support(rng),
            monitoring_and_logging: arb_support(rng),
            metadata_indexing: arb_support(rng),
            encryption: arb_support(rng),
            access_control: arb_support(rng),
        }
    }

    /// Every `GdprResponse` variant — including empty result sets, large
    /// values, and audit-log payloads.
    fn arb_gdpr_response(rng: &mut SmallRng, variant: u32) -> GdprResponse {
        use GdprResponse::*;
        match variant % 9 {
            0 => Created,
            1 => Deleted(rng.gen::<u32>() as usize),
            2 => Records(arb_records(rng, 6)),
            3 => {
                let n = rng.gen_range(0usize..6);
                // Large values: the codec must not care about payload size.
                Data(
                    (0..n)
                        .map(|_| (field(rng), field(rng).repeat(rng.gen_range(1usize..500))))
                        .collect(),
                )
            }
            4 => {
                let n = rng.gen_range(0usize..6);
                Metadata(
                    (0..n)
                        .map(|_| (field(rng), arb_record(rng).metadata))
                        .collect(),
                )
            }
            5 => Updated(rng.gen::<u32>() as usize),
            6 => {
                let n = rng.gen_range(0usize..6);
                Logs(
                    (0..n)
                        .map(|_| LogLine {
                            timestamp_ms: rng.gen::<u64>(),
                            actor: field(rng),
                            operation: field(rng),
                            detail: field(rng),
                        })
                        .collect(),
                )
            }
            7 => Features(arb_feature_report(rng)),
            _ => DeletionVerified(rng.gen_bool(0.5)),
        }
    }

    /// Every `GdprError` variant.
    fn arb_error(rng: &mut SmallRng, variant: u32) -> GdprError {
        match variant % 7 {
            0 => GdprError::AccessDenied {
                role: field(rng),
                query: field(rng),
                reason: field(rng),
            },
            1 => GdprError::NotFound(field(rng)),
            2 => GdprError::AlreadyExists(field(rng)),
            3 => GdprError::InvalidRecord(field(rng)),
            4 => GdprError::Store(field(rng)),
            5 => GdprError::Unsupported(field(rng)),
            _ => GdprError::ShardMisroute {
                key: field(rng),
                found_in: rng.gen_range(0usize..64),
                owner: rng.gen_range(0usize..64),
                shard_count: rng.gen_range(1usize..64),
            },
        }
    }

    fn arb_request(rng: &mut SmallRng, variant: u32) -> RequestBody {
        match variant % 8 {
            v @ 0..=1 => {
                let qv = rng.gen::<u32>().wrapping_add(v);
                RequestBody::Execute(arb_session(rng), arb_query(rng, qv))
            }
            2 => RequestBody::Features,
            3 => RequestBody::SpaceReport,
            4 => RequestBody::RecordCount,
            5 => RequestBody::Name,
            6 => RequestBody::Ping(byte_vec(rng, 64)),
            _ => RequestBody::ConnStats,
        }
    }

    fn arb_response(rng: &mut SmallRng, variant: u32) -> ResponseBody {
        match variant % 9 {
            0..=2 => {
                let v = rng.gen::<u32>();
                ResponseBody::Response(arb_gdpr_response(rng, v))
            }
            3 => {
                let v = rng.gen::<u32>();
                ResponseBody::Error(arb_error(rng, v))
            }
            4 => ResponseBody::Protocol(field(rng)),
            5 => ResponseBody::Features(arb_feature_report(rng)),
            6 => ResponseBody::Space(SpaceReport {
                personal_data_bytes: rng.gen::<u32>() as usize,
                total_bytes: rng.gen::<u32>() as usize,
            }),
            7 => ResponseBody::Count(rng.gen::<u64>()),
            _ => {
                if rng.gen_bool(0.5) {
                    ResponseBody::Name(field(rng))
                } else {
                    ResponseBody::Stats(StatsSnapshot {
                        requests: rng.gen::<u64>(),
                        errors: rng.gen::<u64>(),
                        bytes_in: rng.gen::<u64>(),
                        bytes_out: rng.gen::<u64>(),
                        server_connections: rng.gen::<u64>(),
                        server_requests: rng.gen::<u64>(),
                    })
                }
            }
        }
    }

    /// Requests — every query variant under every session shape — roundtrip
    /// exactly through encode→decode, seq included.
    #[test]
    fn request_roundtrip_over_every_variant() {
        run_cases(256, |rng| {
            let variant = rng.gen::<u32>();
            let seq = rng.gen::<u64>();
            // Also force each opcode to appear, independent of rng bias.
            for v in [variant, variant % 8, (variant % 8) + 8] {
                let tenant = arb_tenant(rng);
                // The header tenant is injected into Execute sessions on
                // decode, so the reference body must carry it too.
                let body = match arb_request(rng, v) {
                    RequestBody::Execute(session, query) => {
                        RequestBody::Execute(session.with_tenant(tenant.clone()), query)
                    }
                    other => other,
                };
                let encoded = encode_request(seq, &tenant, &body);
                let (got_seq, got_tenant, got) = decode_request(&encoded).unwrap();
                assert_eq!(got_seq, seq);
                assert_eq!(got_tenant, tenant);
                assert_eq!(got, body);
            }
        });
    }

    /// Responses — every GDPR response, every error, every control answer —
    /// roundtrip exactly.
    #[test]
    fn response_roundtrip_over_every_variant() {
        run_cases(256, |rng| {
            let seq = rng.gen::<u64>();
            for v in 0..9u32 {
                let rv = rng.gen::<u32>().wrapping_add(v);
                let body = arb_response(rng, rv);
                let encoded = encode_response(seq, &body);
                let (got_seq, got) = decode_response(&encoded).unwrap();
                assert_eq!(got_seq, seq);
                assert_eq!(got, body);
            }
        });
    }

    /// Every strict prefix of a valid payload is rejected as truncated —
    /// with an error, never a panic, and never a bogus success.
    #[test]
    fn truncated_frames_are_rejected() {
        run_cases(48, |rng| {
            let (seq, rv) = (rng.gen::<u64>(), rng.gen::<u32>());
            let request = encode_request(seq, &arb_tenant(rng), &arb_request(rng, rv));
            for cut in 0..request.len() {
                assert!(
                    decode_request(&request[..cut]).is_err(),
                    "request cut at {cut}/{} must fail",
                    request.len()
                );
            }
            let (seq, rv) = (rng.gen::<u64>(), rng.gen::<u32>());
            let response = encode_response(seq, &arb_response(rng, rv));
            for cut in 0..response.len() {
                assert!(
                    decode_response(&response[..cut]).is_err(),
                    "response cut at {cut}/{} must fail",
                    response.len()
                );
            }
        });
    }

    /// The decoders never panic on arbitrary bytes (and reject trailing
    /// garbage after a valid payload).
    #[test]
    fn wire_decoding_never_panics_on_garbage() {
        run_cases(512, |rng| {
            let garbage = byte_vec(rng, 160);
            let _ = decode_request(&garbage);
            let _ = decode_response(&garbage);
            let mut valid = encode_request(1, &TenantId::default(), &RequestBody::Name);
            valid.extend_from_slice(&byte_vec(rng, 8));
            if valid.len() > encode_request(1, &TenantId::default(), &RequestBody::Name).len() {
                assert!(
                    decode_request(&valid).is_err(),
                    "trailing garbage must be rejected"
                );
            }
        });
    }

    /// Frame I/O roundtrips pipelined sequences and flags mid-frame death.
    #[test]
    fn frame_stream_roundtrip() {
        run_cases(64, |rng| {
            let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1usize..6))
                .map(|_| {
                    let (seq, rv) = (rng.gen::<u64>(), rng.gen::<u32>());
                    encode_request(seq, &arb_tenant(rng), &arb_request(rng, rv))
                })
                .collect();
            let mut stream = Vec::new();
            for payload in &payloads {
                write_frame(&mut stream, payload).unwrap();
            }
            let mut cursor = std::io::Cursor::new(stream.clone());
            for payload in &payloads {
                assert_eq!(
                    &read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap(),
                    payload
                );
            }
            assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none());
            // Kill the stream mid-frame: that is an error, not clean EOF.
            if stream.len() > 5 {
                let cut = rng.gen_range(5usize..stream.len());
                let mut cursor = std::io::Cursor::new(&stream[..cut]);
                let mut result = Ok(Some(Vec::new()));
                while matches!(result, Ok(Some(_))) {
                    result = read_frame(&mut cursor, MAX_FRAME);
                }
                // Either the cut fell exactly on a frame boundary (clean
                // EOF) or the truncation must surface as an error.
                let frame_boundary = {
                    let mut at = 0usize;
                    let mut boundary = true;
                    while at < cut {
                        if cut - at < 4 {
                            boundary = false;
                            break;
                        }
                        let len =
                            u32::from_be_bytes(stream[at..at + 4].try_into().unwrap()) as usize;
                        at += 4 + len;
                        if at > cut {
                            boundary = false;
                            break;
                        }
                    }
                    boundary
                };
                assert_eq!(frame_boundary, result.is_ok(), "cut at {cut}");
            }
        });
    }

    /// The nonblocking [`FrameDecoder`] agrees with the blocking
    /// `read_frame` on every stream, however the kernel fragments it:
    /// random chunking yields the same frames in the same order, and
    /// truncation at any point leaves the tail pending — never an error,
    /// never a bogus frame (the event loop must treat a partial frame as
    /// "wait for more", not as EOF or poison).
    #[test]
    fn frame_decoder_matches_blocking_reads_under_any_chunking() {
        use gdprbench_repro::gdpr_server::FrameDecoder;
        run_cases(64, |rng| {
            let payloads: Vec<Vec<u8>> = (0..rng.gen_range(1usize..6))
                .map(|_| {
                    let (seq, rv) = (rng.gen::<u64>(), rng.gen::<u32>());
                    encode_request(seq, &arb_tenant(rng), &arb_request(rng, rv))
                })
                .collect();
            let mut stream = Vec::new();
            for payload in &payloads {
                write_frame(&mut stream, payload).unwrap();
            }
            // Deliver in random-size chunks (1..=32 bytes), draining after
            // each push.
            let mut decoder = FrameDecoder::new(MAX_FRAME);
            let mut got = Vec::new();
            let mut at = 0;
            while at < stream.len() {
                let step = rng.gen_range(1usize..33).min(stream.len() - at);
                decoder.push(&stream[at..at + step]);
                at += step;
                while let Some(frame) = decoder.next_frame().expect("valid lengths only") {
                    got.push(frame);
                }
            }
            assert_eq!(got, payloads);
            assert_eq!(decoder.buffered(), 0, "a clean stream leaves nothing");

            // Truncation anywhere: complete prefix frames decode, the cut
            // frame stays pending.
            let cut = rng.gen_range(0usize..stream.len() + 1);
            let mut decoder = FrameDecoder::new(MAX_FRAME);
            decoder.push(&stream[..cut]);
            let mut prefix = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("valid lengths only") {
                prefix.push(frame);
            }
            let whole: Vec<&Vec<u8>> = payloads
                .iter()
                .scan(0usize, |end, p| {
                    *end += 4 + p.len();
                    Some((*end, p))
                })
                .filter(|(end, _)| *end <= cut)
                .map(|(_, p)| p)
                .collect();
            assert_eq!(prefix.iter().collect::<Vec<_>>(), whole, "cut at {cut}");
            // Feeding the rest completes the stream exactly.
            decoder.push(&stream[cut..]);
            let mut rest = Vec::new();
            while let Some(frame) = decoder.next_frame().expect("valid lengths only") {
                rest.push(frame);
            }
            assert_eq!(prefix.len() + rest.len(), payloads.len());
        });
    }
}

// ---------------------------------------------------------------------------
// Shared GDPR corpus generators (engine-index and sharding properties)
// ---------------------------------------------------------------------------

mod gdpr_gen {
    use super::*;
    use gdprbench_repro::gdpr_core::{GdprQuery, GdprResponse, Session};

    pub const USERS: [&str; 4] = ["neo", "trinity", "morpheus", "smith"];
    pub const PURPOSES: [&str; 4] = ["ads", "2fa", "analytics", "billing"];
    pub const PARTIES: [&str; 3] = ["x-corp", "y-corp", "z-corp"];

    pub fn pick<'a>(rng: &mut SmallRng, pool: &[&'a str]) -> &'a str {
        pool[rng.gen_range(0usize..pool.len())]
    }

    pub fn subset(rng: &mut SmallRng, pool: &[&str], max: usize) -> Vec<String> {
        let mut out: Vec<String> = (0..rng.gen_range(0usize..max + 1))
            .map(|_| pick(rng, pool).to_string())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    pub fn arb_gdpr_record(rng: &mut SmallRng, key: String) -> PersonalRecord {
        let mut purposes = subset(rng, &PURPOSES, 3);
        if purposes.is_empty() {
            purposes.push(pick(rng, &PURPOSES).to_string());
        }
        let ttl = rng
            .gen_bool(0.5)
            .then(|| Duration::from_secs(rng.gen_range(1u64..120)));
        PersonalRecord::new(
            key,
            field(rng),
            Metadata {
                purposes,
                ttl,
                user: pick(rng, &USERS).to_string(),
                objections: subset(rng, &PURPOSES, 2),
                decisions: if rng.gen_bool(0.2) {
                    vec![Metadata::DEC_OPT_OUT.to_string()]
                } else {
                    vec![]
                },
                sharing: subset(rng, &PARTIES, 2),
                source: "first-party".to_string(),
            },
        )
    }

    pub fn sorted(resp: GdprResponse) -> GdprResponse {
        match resp {
            GdprResponse::Data(mut pairs) => {
                pairs.sort();
                GdprResponse::Data(pairs)
            }
            GdprResponse::Metadata(mut pairs) => {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                GdprResponse::Metadata(pairs)
            }
            other => other,
        }
    }

    pub fn predicate_queries() -> Vec<(Session, GdprQuery)> {
        let mut queries = Vec::new();
        for user in USERS {
            queries.push((
                Session::customer(user),
                GdprQuery::ReadDataByUser(user.to_string()),
            ));
            queries.push((
                Session::regulator(),
                GdprQuery::ReadMetadataByUser(user.to_string()),
            ));
        }
        for purpose in PURPOSES {
            queries.push((
                Session::processor(purpose),
                GdprQuery::ReadDataByPurpose(purpose.to_string()),
            ));
            queries.push((
                Session::processor("any"),
                GdprQuery::ReadDataNotObjecting(purpose.to_string()),
            ));
        }
        for party in PARTIES {
            queries.push((
                Session::regulator(),
                GdprQuery::ReadMetadataBySharedWith(party.to_string()),
            ));
        }
        queries.push((
            Session::processor("any"),
            GdprQuery::ReadDataDecisionEligible,
        ));
        queries
    }
}

// ---------------------------------------------------------------------------
// Compliance-engine metadata index properties
// ---------------------------------------------------------------------------

mod engine_index {
    use super::gdpr_gen::*;
    use super::*;
    use gdprbench_repro::connectors::RedisConnector;
    use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, RecordPredicate, Session};
    use gdprbench_repro::kvstore::{ExpirationMode, KvConfig, KvStore};
    use std::sync::Arc;

    /// One predicate per `RecordPredicate` variant — the full closed set
    /// the index must answer.
    pub fn all_predicate_shapes() -> Vec<RecordPredicate> {
        vec![
            RecordPredicate::User(USERS[0].to_string()),
            RecordPredicate::DeclaredPurpose(PURPOSES[0].to_string()),
            RecordPredicate::AllowsPurpose(PURPOSES[0].to_string()),
            RecordPredicate::NotObjecting(PURPOSES[0].to_string()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith(PARTIES[0].to_string()),
        ]
    }

    /// Every predicate query returns the identical result set through the
    /// `MetadataIndex` and through a forced full scan, across creates,
    /// metadata updates, deletes, and TTL expirations.
    #[test]
    fn index_and_scan_always_agree() {
        run_cases(24, |rng| {
            let sim = clock::sim();
            let scan_conn = RedisConnector::new(
                KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap(),
            );
            let index_conn = RedisConnector::with_metadata_index(
                KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap(),
            )
            .unwrap();
            let controller = Session::controller();

            // Phase 1: a random corpus, mirrored into both stores.
            let n = rng.gen_range(5usize..40);
            let mut keys = Vec::new();
            for i in 0..n {
                let record = arb_gdpr_record(rng, format!("k{i}"));
                keys.push(record.key.clone());
                for conn in [&scan_conn, &index_conn] {
                    conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
                        .unwrap();
                }
            }

            // Phase 2: random mutations (metadata updates and deletions).
            use gdprbench_repro::gdpr_core::{MetadataField, MetadataUpdate};
            for _ in 0..rng.gen_range(0usize..15) {
                let key = keys[rng.gen_range(0usize..keys.len())].clone();
                let update = match rng.gen_range(0u32..4) {
                    0 => Some(MetadataUpdate::Add(
                        MetadataField::Objections,
                        pick(rng, &PURPOSES).to_string(),
                    )),
                    1 => Some(MetadataUpdate::Add(
                        MetadataField::Sharing,
                        pick(rng, &PARTIES).to_string(),
                    )),
                    2 => Some(MetadataUpdate::SetTtl(Duration::from_secs(
                        rng.gen_range(1u64..120),
                    ))),
                    _ => None, // delete instead
                };
                for conn in [&scan_conn, &index_conn] {
                    let query = match &update {
                        Some(update) => GdprQuery::UpdateMetadataByKey {
                            key: key.clone(),
                            update: update.clone(),
                        },
                        None => GdprQuery::DeleteByKey(key.clone()),
                    };
                    // The record may already be deleted; both must agree.
                    let _ = conn.execute(&controller, &query);
                }
            }

            // Phase 3: let a random slice of TTLs expire.
            sim.advance(Duration::from_secs(rng.gen_range(0u64..130)));

            for (session, query) in predicate_queries() {
                let scan = sorted(scan_conn.execute(&session, &query).unwrap());
                let indexed = sorted(index_conn.execute(&session, &query).unwrap());
                assert_eq!(scan, indexed, "divergence on {query:?}");
            }

            // Whatever the mutation history, the indexed engine answers
            // every predicate variant — negatives included — from the
            // index, never by falling back to a scan.
            let index = index_conn.metadata_index().unwrap();
            for pred in all_predicate_shapes() {
                assert!(
                    index.keys_for(&pred).is_some(),
                    "{pred:?} must stay index-answerable"
                );
            }
        });
    }

    /// TTL expiration removes keys from all four inverted indexes and the
    /// deadline set, on both the active-cycle and lazy-access paths.
    #[test]
    fn ttl_expiration_scrubs_all_indexes() {
        run_cases(24, |rng| {
            let sim = clock::sim();
            let store = KvStore::open_with_clock(
                KvConfig {
                    expiration: ExpirationMode::Strict,
                    ..Default::default()
                },
                sim.clone(),
            )
            .unwrap();
            let conn = RedisConnector::with_metadata_index(Arc::clone(&store)).unwrap();
            let controller = Session::controller();

            let n = rng.gen_range(3usize..25);
            let mut records = Vec::new();
            for i in 0..n {
                let mut record = arb_gdpr_record(rng, format!("k{i}"));
                // Everyone gets a TTL; roughly half will be past due.
                record.metadata.ttl = Some(Duration::from_secs(rng.gen_range(1u64..100)));
                conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
                    .unwrap();
                records.push(record);
            }

            let horizon = Duration::from_secs(50);
            sim.advance(horizon);
            let index = Arc::clone(conn.metadata_index().unwrap());
            if rng.gen_bool(0.5) {
                // Active path: one strict expiration cycle.
                store.run_expiration_cycle();
            } else {
                // Engine path: DELETE-RECORD-BY-TTL drains the deadline set.
                conn.execute(&controller, &GdprQuery::DeleteExpired)
                    .unwrap();
            }

            for record in &records {
                let expired = record.metadata.ttl.unwrap() <= horizon;
                if expired {
                    assert!(
                        index.fully_absent(&record.key),
                        "expired {} must leave user/purpose/objection/sharing \
                         indexes and the deadline set",
                        record.key
                    );
                } else {
                    assert!(
                        index
                            .keys_by_user(&record.metadata.user)
                            .contains(&record.key),
                        "live {} must stay indexed",
                        record.key
                    );
                }
            }
            let live = records
                .iter()
                .filter(|r| r.metadata.ttl.unwrap() > horizon)
                .count();
            assert_eq!(index.len(), live);
            assert_eq!(conn.record_count(), live);
        });
    }
}

// ---------------------------------------------------------------------------
// Shard-count invariance properties
// ---------------------------------------------------------------------------

mod sharded_invariance {
    use super::gdpr_gen::*;
    use super::*;
    use gdprbench_repro::connectors::{
        registry, DiskConnector, RedisConnector, ShardedDiskConnector, ShardedRedisConnector,
    };
    use gdprbench_repro::gdpr_core::{
        GdprConnector, GdprError, GdprQuery, GdprResponse, MetadataField, MetadataUpdate,
        RecordStore, Session,
    };
    use gdprbench_repro::kvstore::{KvConfig, KvStore};
    use gdprbench_repro::pagestore::PageStore;

    /// The shard counts every property must be invariant over: the ISSUE's
    /// N ∈ {1, 2, 8} plus whatever `GDPR_SHARDS` the CI matrix pins.
    fn shard_counts() -> Vec<usize> {
        let mut counts = vec![1, 2, 8];
        let env_n = gdprbench_repro::gdpr_core::shard_count_from_env();
        if !counts.contains(&env_n) {
            counts.push(env_n);
        }
        counts
    }

    /// A labelled fleet: the unsharded engine (scan and indexed variants),
    /// an indexed `ShardedEngine` per shard count, the disk-native
    /// pagestore engine (unsharded plus a sharded fleet per shard count,
    /// on a pool far smaller than the corpus so eviction rides along), and
    /// a sharded engine served over loopback TCP — all on one clock. The
    /// remote entry runs the entire response-equality harness through the
    /// wire codec: any lossiness or transport-dependent semantic diverges
    /// here; the disk entries make every seeded op stream a cross-backend
    /// store-equivalence property.
    fn fleet(sim: &clock::SharedClock) -> Vec<(String, Box<dyn GdprConnector>)> {
        let open = || KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap();
        let open_disk = |tag: &str| {
            PageStore::open(
                registry::scratch_dir(tag),
                registry::small_pool_config(),
                sim.clone(),
            )
            .unwrap()
        };
        let mut conns: Vec<(String, Box<dyn GdprConnector>)> = vec![
            (
                "unsharded-scan".to_string(),
                Box::new(RedisConnector::new(open())),
            ),
            (
                "unsharded-mi".to_string(),
                Box::new(RedisConnector::with_metadata_index(open()).unwrap()),
            ),
            (
                "disk".to_string(),
                Box::new(DiskConnector::with_metadata_index(open_disk("prop-disk")).unwrap()),
            ),
        ];
        for n in shard_counts() {
            conns.push((
                format!("sharded-{n}"),
                Box::new(
                    ShardedRedisConnector::with_metadata_index((0..n).map(|_| open()).collect())
                        .unwrap(),
                ),
            ));
            conns.push((
                format!("disk-sharded-{n}"),
                Box::new(
                    ShardedDiskConnector::with_metadata_index(
                        (0..n).map(|_| open_disk("prop-disk-sharded")).collect(),
                    )
                    .unwrap(),
                ),
            ));
        }
        let served: gdprbench_repro::gdpr_core::EngineHandle = std::sync::Arc::new(
            ShardedRedisConnector::with_metadata_index((0..2).map(|_| open()).collect()).unwrap(),
        );
        conns.push((
            "remote-sharded-2".to_string(),
            Box::new(
                gdprbench_repro::connectors::RemoteConnector::serve_in_process_with(
                    served,
                    2,
                    gdprbench_repro::gdpr_server::ServerConfig {
                        workers: 2,
                        queue_depth: 32,
                        ..Default::default()
                    },
                )
                .unwrap(),
            ),
        ));
        conns
    }

    /// Responses compared modulo result-set order (the unsharded engine
    /// returns store order; the router returns key order).
    fn normalize(result: Result<GdprResponse, GdprError>) -> Result<GdprResponse, GdprError> {
        result.map(sorted)
    }

    /// For seeded op sequences over every GdprQuery variant, the unsharded
    /// engine and `ShardedEngine{N=1,2,8}` produce identical responses at
    /// every step, identical predicate result sets at the end, and
    /// identical final store states.
    #[test]
    fn op_sequences_are_shard_count_invariant() {
        run_cases(16, |rng| {
            let sim = clock::sim();
            let conns = fleet(&(sim.clone() as clock::SharedClock));
            let controller = Session::controller();

            // Mirror one op stream into every connector, asserting
            // response equality (including errors) at every step.
            let apply = |session: &Session, query: &GdprQuery| {
                let mut results = conns
                    .iter()
                    .map(|(label, conn)| (label, normalize(conn.execute(session, query))));
                let (_, reference) = results.next().unwrap();
                for (label, result) in results {
                    assert_eq!(result, reference, "{label} diverges on {query:?}");
                }
            };

            let n_records = rng.gen_range(5usize..35);
            let keys: Vec<String> = (0..n_records).map(|i| format!("k{i}")).collect();
            for key in &keys {
                let record = arb_gdpr_record(rng, key.clone());
                apply(&controller, &GdprQuery::CreateRecord(record));
            }

            for _ in 0..rng.gen_range(4usize..16) {
                let key = keys[rng.gen_range(0usize..keys.len())].clone();
                let (session, query) = match rng.gen_range(0u32..13) {
                    0 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByKey {
                            key,
                            update: MetadataUpdate::Add(
                                MetadataField::Objections,
                                pick(rng, &PURPOSES).to_string(),
                            ),
                        },
                    ),
                    1 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByKey {
                            key,
                            update: MetadataUpdate::SetTtl(Duration::from_secs(
                                rng.gen_range(1u64..120),
                            )),
                        },
                    ),
                    2 => (controller.clone(), GdprQuery::DeleteByKey(key)),
                    3 => (
                        controller.clone(),
                        GdprQuery::UpdateDataByKey {
                            key,
                            data: field(rng),
                        },
                    ),
                    4 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByPurpose {
                            purpose: pick(rng, &PURPOSES).to_string(),
                            update: MetadataUpdate::Add(
                                MetadataField::Sharing,
                                pick(rng, &PARTIES).to_string(),
                            ),
                        },
                    ),
                    5 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByUser {
                            user: pick(rng, &USERS).to_string(),
                            update: MetadataUpdate::Add(
                                MetadataField::Sharing,
                                pick(rng, &PARTIES).to_string(),
                            ),
                        },
                    ),
                    6 => (
                        controller.clone(),
                        GdprQuery::DeleteByUser(pick(rng, &USERS).to_string()),
                    ),
                    7 => (
                        controller.clone(),
                        GdprQuery::DeleteByPurpose(pick(rng, &PURPOSES).to_string()),
                    ),
                    8 => {
                        sim.advance(Duration::from_secs(rng.gen_range(0u64..40)));
                        (controller.clone(), GdprQuery::DeleteExpired)
                    }
                    // Group purpose removal: data-dependent validation (a
                    // record whose only purpose is removed fails G5.1b), so
                    // the whole fleet must agree on success *and* on the
                    // all-or-nothing failure — the cross-shard
                    // pre-validation contract.
                    9 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByPurpose {
                            purpose: pick(rng, &PURPOSES).to_string(),
                            update: MetadataUpdate::Remove(
                                MetadataField::Purposes,
                                pick(rng, &PURPOSES).to_string(),
                            ),
                        },
                    ),
                    // Mid-stream negative-predicate reads: the indexed
                    // engines answer these from the all-keys /
                    // decision-eligibility sets while mutations are still
                    // landing.
                    10 => (
                        Session::processor("any"),
                        GdprQuery::ReadDataNotObjecting(pick(rng, &PURPOSES).to_string()),
                    ),
                    11 => (
                        Session::processor("any"),
                        GdprQuery::ReadDataDecisionEligible,
                    ),
                    _ => (Session::regulator(), GdprQuery::VerifyDeletion(key)),
                };
                apply(&session, &query);
            }

            // Let a random slice of TTLs lapse, then sweep the whole
            // read-side query surface.
            sim.advance(Duration::from_secs(rng.gen_range(0u64..130)));
            for (session, query) in predicate_queries() {
                apply(&session, &query);
            }
            for key in &keys {
                apply(
                    &Session::regulator(),
                    &GdprQuery::VerifyDeletion(key.clone()),
                );
                apply(
                    &Session::processor(pick(rng, &PURPOSES)),
                    &GdprQuery::ReadDataByKey(key.clone()),
                );
            }

            // Live record counts agree...
            let reference_count = conns[0].1.record_count();
            for (label, conn) in &conns {
                assert_eq!(conn.record_count(), reference_count, "{label}");
            }
        });
    }

    /// The final *store states* are identical across shard counts: the
    /// union of all shards' records equals the single-store record set,
    /// key for key, byte for byte (data and metadata).
    #[test]
    fn final_store_states_are_shard_count_invariant() {
        run_cases(12, |rng| {
            let sim = clock::sim();
            let open = || KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap();
            let sharded: Vec<ShardedRedisConnector> = shard_counts()
                .into_iter()
                .map(|n| {
                    ShardedRedisConnector::with_metadata_index((0..n).map(|_| open()).collect())
                        .unwrap()
                })
                .collect();
            let controller = Session::controller();

            let n_records = rng.gen_range(5usize..30);
            for i in 0..n_records {
                let record = arb_gdpr_record(rng, format!("k{i}"));
                for conn in &sharded {
                    conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
                        .unwrap();
                }
            }
            for _ in 0..rng.gen_range(0usize..10) {
                let key = format!("k{}", rng.gen_range(0usize..n_records));
                let query = if rng.gen_bool(0.5) {
                    GdprQuery::DeleteByKey(key)
                } else {
                    GdprQuery::UpdateMetadataByKey {
                        key,
                        update: MetadataUpdate::Add(
                            MetadataField::Objections,
                            pick(rng, &PURPOSES).to_string(),
                        ),
                    }
                };
                for conn in &sharded {
                    let _ = conn.execute(&controller, &query);
                }
            }
            sim.advance(Duration::from_secs(rng.gen_range(0u64..130)));

            let state_of = |conn: &ShardedRedisConnector| -> Vec<PersonalRecord> {
                let mut records: Vec<PersonalRecord> = (0..conn.shard_count())
                    .flat_map(|i| conn.engine().shards()[i].store().scan().unwrap())
                    .collect();
                records.sort_by(|a, b| a.key.cmp(&b.key));
                records
            };
            let reference = state_of(&sharded[0]);
            for conn in &sharded[1..] {
                assert_eq!(
                    state_of(conn),
                    reference,
                    "final store state diverges at {} shards",
                    conn.shard_count()
                );
            }
            // Placement is correct in every topology.
            for conn in &sharded {
                conn.verify_placement().unwrap();
            }
            // And every shard's index answers the full predicate set —
            // the negative predicates take the index path at every shard
            // count.
            for conn in &sharded {
                for shard in 0..conn.shard_count() {
                    let index = conn.metadata_index(shard).unwrap();
                    for pred in super::engine_index::all_predicate_shapes() {
                        assert!(
                            index.keys_for(&pred).is_some(),
                            "shard {shard}/{}: {pred:?} must be index-answerable",
                            conn.shard_count()
                        );
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Cross-backend store equivalence (kvstore vs pagestore)
// ---------------------------------------------------------------------------

mod store_equivalence {
    use super::gdpr_gen::*;
    use super::*;
    use gdprbench_repro::connectors::{registry, DiskConnector, RedisConnector};
    use gdprbench_repro::gdpr_core::tenant::TenantId;
    use gdprbench_repro::gdpr_core::{
        GdprConnector, GdprQuery, MetadataField, MetadataUpdate, Session,
    };
    use gdprbench_repro::kvstore::{KvConfig, KvStore};
    use gdprbench_repro::pagestore::{PageStore, PageStoreConfig};

    /// Pool far smaller than any generated corpus, auto-checkpoint off so
    /// the reopen at the end is forced through full WAL replay.
    fn disk_config() -> PageStoreConfig {
        PageStoreConfig {
            pool_pages: 4,
            checkpoint_frames: usize::MAX,
            ..Default::default()
        }
    }

    /// The in-memory kvstore engine and the disk-native pagestore engine
    /// are observationally equivalent: seeded op streams — creates over an
    /// overlapping multi-tenant keyspace, point and group metadata
    /// updates, group purpose removals (the all-or-nothing G5.1b path),
    /// data rewrites, per-key/user/purpose deletions, and sim-clock expiry
    /// purges — produce byte-identical responses (modulo result-set order)
    /// at every step, errors included, and identical final logical states.
    /// Tenant-prefixed storage keys take the same page paths as plain
    /// ones, and the whole read surface must agree again after the
    /// pagestore is dropped mid-flight and reopened through WAL recovery.
    #[test]
    fn kvstore_and_pagestore_agree_on_arbitrary_op_streams() {
        run_cases(10, |rng| {
            let sim = clock::sim();
            let kv = RedisConnector::with_metadata_index(
                KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap(),
            )
            .unwrap();
            let dir = registry::scratch_dir("prop-equiv");
            let disk = DiskConnector::with_metadata_index(
                PageStore::open(&dir, disk_config(), sim.clone()).unwrap(),
            )
            .unwrap();
            // The default tenant and a named one share the engines: the
            // tenant prefix is part of the storage key, so the pagestore
            // must round-trip prefixed keys bit-for-bit and keep the
            // tenants' overlapping logical keyspaces disjoint on disk.
            let tenants = [TenantId::default(), TenantId::new("acme").unwrap()];

            let apply = |session: &Session, query: &GdprQuery| {
                let reference = kv.execute(session, query).map(sorted);
                let got = disk.execute(session, query).map(sorted);
                assert_eq!(got, reference, "pagestore diverges on {query:?}");
            };
            let controller = Session::controller();

            let n_records = rng.gen_range(5usize..30);
            let keys: Vec<String> = (0..n_records).map(|i| format!("k{i}")).collect();
            for key in &keys {
                for tenant in &tenants {
                    let record = arb_gdpr_record(rng, key.clone());
                    apply(
                        &controller.clone().with_tenant(tenant.clone()),
                        &GdprQuery::CreateRecord(record),
                    );
                }
            }

            for _ in 0..rng.gen_range(6usize..20) {
                let tenant = tenants[rng.gen_range(0usize..tenants.len())].clone();
                let key = keys[rng.gen_range(0usize..keys.len())].clone();
                let (session, query) = match rng.gen_range(0u32..12) {
                    0 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByKey {
                            key,
                            update: MetadataUpdate::Add(
                                MetadataField::Objections,
                                pick(rng, &PURPOSES).to_string(),
                            ),
                        },
                    ),
                    1 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByKey {
                            key,
                            update: MetadataUpdate::SetTtl(Duration::from_secs(
                                rng.gen_range(1u64..120),
                            )),
                        },
                    ),
                    2 => (controller.clone(), GdprQuery::DeleteByKey(key)),
                    3 => (
                        controller.clone(),
                        GdprQuery::UpdateDataByKey {
                            key,
                            data: field(rng),
                        },
                    ),
                    // Group updates: every matching record rewrites in
                    // place, deadline preserved to the millisecond.
                    4 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByUser {
                            user: pick(rng, &USERS).to_string(),
                            update: MetadataUpdate::Add(
                                MetadataField::Sharing,
                                pick(rng, &PARTIES).to_string(),
                            ),
                        },
                    ),
                    5 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByPurpose {
                            purpose: pick(rng, &PURPOSES).to_string(),
                            update: MetadataUpdate::Add(
                                MetadataField::Sharing,
                                pick(rng, &PARTIES).to_string(),
                            ),
                        },
                    ),
                    // Group purpose removal: data-dependent all-or-nothing
                    // validation — success and failure must both agree.
                    6 => (
                        controller.clone(),
                        GdprQuery::UpdateMetadataByPurpose {
                            purpose: pick(rng, &PURPOSES).to_string(),
                            update: MetadataUpdate::Remove(
                                MetadataField::Purposes,
                                pick(rng, &PURPOSES).to_string(),
                            ),
                        },
                    ),
                    7 => (
                        controller.clone(),
                        GdprQuery::DeleteByUser(pick(rng, &USERS).to_string()),
                    ),
                    8 => (
                        controller.clone(),
                        GdprQuery::DeleteByPurpose(pick(rng, &PURPOSES).to_string()),
                    ),
                    // Sim-clock expiry purge: both stores must reap exactly
                    // the same deadline set at the inclusive boundary.
                    9 => {
                        sim.advance(Duration::from_secs(rng.gen_range(0u64..40)));
                        (controller.clone(), GdprQuery::DeleteExpired)
                    }
                    10 => (
                        Session::processor("any"),
                        GdprQuery::ReadDataNotObjecting(pick(rng, &PURPOSES).to_string()),
                    ),
                    _ => (Session::regulator(), GdprQuery::VerifyDeletion(key)),
                };
                apply(&session.with_tenant(tenant), &query);
            }

            // Lapse a random slice of TTLs, then sweep the entire
            // read-side surface for every tenant.
            sim.advance(Duration::from_secs(rng.gen_range(0u64..130)));
            let mut sweep = |disk: &DiskConnector| {
                for tenant in &tenants {
                    for (session, query) in predicate_queries() {
                        let session = session.with_tenant(tenant.clone());
                        let reference = kv.execute(&session, &query).map(sorted);
                        let got = disk.execute(&session, &query).map(sorted);
                        assert_eq!(got, reference, "pagestore diverges on {query:?}");
                    }
                    for key in &keys {
                        for (session, query) in [
                            (Session::regulator(), GdprQuery::VerifyDeletion(key.clone())),
                            (
                                Session::processor(pick(rng, &PURPOSES)),
                                GdprQuery::ReadDataByKey(key.clone()),
                            ),
                            (
                                Session::regulator(),
                                GdprQuery::ReadMetadataByKey(key.clone()),
                            ),
                        ] {
                            let session = session.with_tenant(tenant.clone());
                            let reference = kv.execute(&session, &query).map(sorted);
                            let got = disk.execute(&session, &query).map(sorted);
                            assert_eq!(got, reference, "pagestore diverges on {query:?}");
                        }
                    }
                }
                assert_eq!(disk.record_count(), kv.record_count());
            };
            sweep(&disk);

            // Crash the pagestore (drop without checkpoint — everything
            // since open lives only in the WAL) and recover: the reopened
            // store must replay to the same logical state and agree with
            // the kvstore on the whole read surface again.
            let generation = disk.store().generation();
            drop(disk);
            let store = PageStore::open(&dir, disk_config(), sim.clone()).unwrap();
            assert_eq!(
                store.recovery().generation,
                generation,
                "WAL recovery must land on the pre-crash generation"
            );
            let reopened = DiskConnector::with_metadata_index(store).unwrap();
            sweep(&reopened);
        });
    }
}

// ---------------------------------------------------------------------------
// Cross-tenant isolation properties
// ---------------------------------------------------------------------------

mod tenant_isolation {
    use super::gdpr_gen::*;
    use super::*;
    use gdprbench_repro::connectors::ShardedRedisConnector;
    use gdprbench_repro::gdpr_core::tenant::TenantId;
    use gdprbench_repro::gdpr_core::{
        GdprConnector, GdprQuery, MetadataField, MetadataUpdate, Session,
    };
    use gdprbench_repro::kvstore::{KvConfig, KvStore};

    /// Three tenants interleaving arbitrary op streams over one shared
    /// engine observe exactly what three independent single-tenant engines
    /// replaying each tenant's subsequence would: every response (data,
    /// metadata, deletion counts, errors, audit trails) byte-identical
    /// modulo result-set order, at 1 and 8 shards. The combined engine and
    /// the solo replicas share one simulated clock, so even audit-line
    /// timestamps must match — any cross-tenant read, purge, erasure, or
    /// audit leak diverges here.
    #[test]
    fn interleaved_tenants_match_independent_engines() {
        for shards in [1usize, 8] {
            run_cases(8, |rng| {
                let sim = clock::sim();
                let open = || KvStore::open_with_clock(KvConfig::default(), sim.clone()).unwrap();
                let build = || {
                    ShardedRedisConnector::with_metadata_index(
                        (0..shards).map(|_| open()).collect(),
                    )
                    .unwrap()
                };
                let tenants: Vec<TenantId> = ["t-a", "t-b", "t-c"]
                    .iter()
                    .map(|t| TenantId::new(*t).unwrap())
                    .collect();
                let combined = build();
                let solos: Vec<ShardedRedisConnector> =
                    (0..tenants.len()).map(|_| build()).collect();

                // Mirror one tenant's op into the combined engine (tenant
                // on the session) and that tenant's solo replica (default
                // tenant), asserting response equality — errors included.
                // Raw result-set order may differ: the tenant prefix is
                // part of the storage key, so the same logical corpus
                // lands on different shards in the two topologies.
                let apply = |ti: usize, session: &Session, query: &GdprQuery| {
                    let tagged = session.clone().with_tenant(tenants[ti].clone());
                    let ours = combined.execute(&tagged, query).map(sorted);
                    let solo = solos[ti].execute(session, query).map(sorted);
                    assert_eq!(
                        ours,
                        solo,
                        "tenant {} diverges on {query:?} at {shards} shards",
                        tenants[ti].name()
                    );
                };
                let controller = Session::controller();

                // Overlapping logical keyspace: every tenant owns its own
                // "k{i}" — isolation means the shared engine never lets
                // one tenant's k3 shadow another's.
                let n_records = rng.gen_range(4usize..20);
                let keys: Vec<String> = (0..n_records).map(|i| format!("k{i}")).collect();
                for key in &keys {
                    for ti in 0..tenants.len() {
                        let record = arb_gdpr_record(rng, key.clone());
                        apply(ti, &controller, &GdprQuery::CreateRecord(record));
                    }
                }

                for _ in 0..rng.gen_range(6usize..20) {
                    let ti = rng.gen_range(0usize..tenants.len());
                    let key = keys[rng.gen_range(0usize..keys.len())].clone();
                    let (session, query) = match rng.gen_range(0u32..12) {
                        0 => (
                            controller.clone(),
                            GdprQuery::UpdateMetadataByKey {
                                key,
                                update: MetadataUpdate::Add(
                                    MetadataField::Objections,
                                    pick(rng, &PURPOSES).to_string(),
                                ),
                            },
                        ),
                        1 => (
                            controller.clone(),
                            GdprQuery::UpdateMetadataByKey {
                                key,
                                update: MetadataUpdate::SetTtl(Duration::from_secs(
                                    rng.gen_range(1u64..120),
                                )),
                            },
                        ),
                        2 => (controller.clone(), GdprQuery::DeleteByKey(key)),
                        3 => (
                            controller.clone(),
                            GdprQuery::UpdateDataByKey {
                                key,
                                data: field(rng),
                            },
                        ),
                        4 => (
                            controller.clone(),
                            GdprQuery::UpdateMetadataByUser {
                                user: pick(rng, &USERS).to_string(),
                                update: MetadataUpdate::Add(
                                    MetadataField::Sharing,
                                    pick(rng, &PARTIES).to_string(),
                                ),
                            },
                        ),
                        5 => (
                            controller.clone(),
                            GdprQuery::DeleteByUser(pick(rng, &USERS).to_string()),
                        ),
                        6 => (
                            controller.clone(),
                            GdprQuery::DeleteByPurpose(pick(rng, &PURPOSES).to_string()),
                        ),
                        7 => {
                            // One shared clock: the advance lands on the
                            // combined engine and every solo alike, so the
                            // same TTLs lapse everywhere.
                            sim.advance(Duration::from_secs(rng.gen_range(0u64..40)));
                            (controller.clone(), GdprQuery::DeleteExpired)
                        }
                        8 => (
                            Session::processor("any"),
                            GdprQuery::ReadDataNotObjecting(pick(rng, &PURPOSES).to_string()),
                        ),
                        9 => (
                            Session::customer(pick(rng, &USERS)),
                            GdprQuery::ReadDataByUser(pick(rng, &USERS).to_string()),
                        ),
                        // The audit trail is the leak-prone surface: the
                        // combined engine's per-tenant trail must replay
                        // the solo's line for line (same ops, same sim
                        // timestamps), with nobody else's ops in between.
                        10 => (
                            Session::regulator(),
                            GdprQuery::GetSystemLogs {
                                from_ms: 0,
                                to_ms: u64::MAX,
                            },
                        ),
                        _ => (Session::regulator(), GdprQuery::VerifyDeletion(key)),
                    };
                    apply(ti, &session, &query);
                }

                // Lapse a random slice of TTLs, then sweep the entire
                // read-side surface for every tenant: predicates, point
                // reads, deletion verification, and the full audit trail.
                sim.advance(Duration::from_secs(rng.gen_range(0u64..130)));
                for ti in 0..tenants.len() {
                    for (session, query) in predicate_queries() {
                        apply(ti, &session, &query);
                    }
                    for key in &keys {
                        apply(
                            ti,
                            &Session::regulator(),
                            &GdprQuery::VerifyDeletion(key.clone()),
                        );
                        apply(
                            ti,
                            &Session::processor(pick(rng, &PURPOSES)),
                            &GdprQuery::ReadDataByKey(key.clone()),
                        );
                    }
                    apply(
                        ti,
                        &Session::regulator(),
                        &GdprQuery::GetSystemLogs {
                            from_ms: 0,
                            to_ms: u64::MAX,
                        },
                    );
                }

                // Conservation: the shared store holds exactly the union
                // of the per-tenant record sets — nothing leaked, nothing
                // double-counted, nothing lost.
                assert_eq!(
                    combined.record_count(),
                    solos.iter().map(|s| s.record_count()).sum::<usize>(),
                    "combined record count must be the sum of its tenants at {shards} shards"
                );
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Encrypted transport (sealed records + handshake robustness)
// ---------------------------------------------------------------------------

mod secure_transport {
    use super::*;
    use gdprbench_repro::gdpr_server::wire::{write_frame, MAX_FRAME};
    use gdprbench_repro::gdpr_server::{secure, FrameDecoder};

    fn random_32(rng: &mut SmallRng) -> [u8; secure::RANDOM_LEN] {
        let mut out = [0u8; secure::RANDOM_LEN];
        for byte in out.iter_mut() {
            *byte = rng.gen_range(0u32..256) as u8;
        }
        out
    }

    /// Sealed records survive any kernel fragmentation: a stream of
    /// length-prefixed sealed frames delivered in random chunks decodes
    /// and opens back to the exact plaintexts in order; truncation leaves
    /// the tail pending (never a bogus record); a tampered or truncated
    /// record fails `open` without panicking and without poisoning the
    /// channel for the pristine record that follows.
    #[test]
    fn sealed_records_survive_arbitrary_chunking_and_reject_tampering() {
        run_cases(64, |rng| {
            let key = field(rng);
            let (client_random, server_random) = (random_32(rng), random_32(rng));
            let mut sender = secure::client_channel(&key, &client_random, &server_random);
            let mut receiver = secure::server_channel(&key, &client_random, &server_random);

            let plaintexts: Vec<Vec<u8>> = (0..rng.gen_range(1usize..6))
                .map(|_| byte_vec(rng, 200))
                .collect();
            let mut stream = Vec::new();
            for plaintext in &plaintexts {
                write_frame(&mut stream, &sender.seal(plaintext)).unwrap();
            }

            // Random chunking through the same nonblocking decoder the
            // event loop uses (sized up for the seal overhead).
            let mut decoder = FrameDecoder::new(MAX_FRAME + secure::SEAL_OVERHEAD);
            let mut opened = Vec::new();
            let mut at = 0;
            while at < stream.len() {
                let step = rng.gen_range(1usize..33).min(stream.len() - at);
                decoder.push(&stream[at..at + step]);
                at += step;
                while let Some(sealed) = decoder.next_frame().expect("valid lengths only") {
                    opened.push(receiver.open(&sealed).expect("pristine record opens"));
                }
            }
            assert_eq!(opened, plaintexts);
            assert_eq!(decoder.buffered(), 0, "a clean stream leaves nothing");

            // Tamper with the next record: any single-byte flip must fail
            // open (tag mismatch, or replay if the flip hit the sequence
            // field) without advancing channel state...
            let plaintext = byte_vec(rng, 120);
            let sealed = sender.seal(&plaintext);
            let mut tampered = sealed.clone();
            let flip_at = rng.gen_range(0usize..tampered.len());
            tampered[flip_at] ^= 1 << rng.gen_range(0u32..8);
            assert!(
                receiver.open(&tampered).is_err(),
                "tampered record must not open"
            );
            // ...and truncation anywhere must also fail cleanly.
            let cut = rng.gen_range(0usize..sealed.len());
            assert!(
                receiver.open(&sealed[..cut]).is_err(),
                "truncated record must not open"
            );
            // The pristine bytes still open: failed attempts are not sticky.
            assert_eq!(receiver.open(&sealed).unwrap(), plaintext);
        });
    }

    /// Handshake interruption against a live encrypted server: garbage
    /// hellos, version skew, wrong role, mid-handshake EOF, and silent
    /// disconnects never panic the server and never elicit a response
    /// (no protocol oracle) — and a well-behaved encrypted client is
    /// still served afterwards.
    #[test]
    fn handshake_interruption_closes_cleanly_and_server_keeps_serving() {
        use gdprbench_repro::connectors::GdprClient;
        use gdprbench_repro::drivers::{build_connector, ConnectorSpec};
        use gdprbench_repro::gdpr_server::{GdprServer, ServerConfig};
        use std::io::{Read, Write};
        use std::net::TcpStream;

        let engine = build_connector(&ConnectorSpec::new("redis")).unwrap();
        let config = ServerConfig {
            encrypt: Some("proptest-psk".to_string()),
            ..Default::default()
        };
        let server = GdprServer::bind(engine, "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();

        run_cases(48, |rng| {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            match rng.gen_range(0u32..5) {
                // Garbage hello frame of arbitrary bytes.
                0 => write_frame(&mut stream, &byte_vec(rng, 80)).unwrap(),
                // Structurally valid hello with a skewed version.
                1 => {
                    let mut hello = secure::encode_hello(secure::ROLE_CLIENT, &random_32(rng));
                    hello[4] ^= 0x10;
                    write_frame(&mut stream, &hello).unwrap();
                }
                // Right shape, wrong role byte (reflection).
                2 => {
                    let hello = secure::encode_hello(secure::ROLE_SERVER, &random_32(rng));
                    write_frame(&mut stream, &hello).unwrap();
                }
                // Mid-handshake EOF: a partial hello, then write shutdown.
                3 => {
                    let hello = secure::encode_hello(secure::ROLE_CLIENT, &random_32(rng));
                    let mut framed = Vec::new();
                    write_frame(&mut framed, &hello).unwrap();
                    let cut = rng.gen_range(1usize..framed.len());
                    stream.write_all(&framed[..cut]).unwrap();
                }
                // Connect and say nothing.
                _ => {}
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            // The server must close without answering: EOF (or a reset),
            // never response bytes.
            let mut buf = [0u8; 64];
            // A reset is an acceptable close too, so only Ok reads are judged.
            if let Ok(n) = stream.read(&mut buf) {
                assert_eq!(n, 0, "server answered a broken handshake");
            }
        });

        // The abuse must not have cost the server its ability to serve a
        // well-behaved encrypted client.
        let client = GdprClient::connect_encrypted(&addr, Some("proptest-psk")).unwrap();
        assert!(client.is_encrypted());
        assert_eq!(client.ping(b"after-abuse").unwrap(), b"after-abuse");
        assert!(
            server
                .stats()
                .connections_accepted
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 49,
            "every interrupted connection was accepted before failing"
        );
        server.shutdown();
    }
}
