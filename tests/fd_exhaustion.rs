//! Regression test for the accept path under file-descriptor exhaustion:
//! when `accept(2)` fails with EMFILE the server must pause accepting
//! (rather than spin), keep serving every established connection, and
//! resume accepting as soon as a descriptor frees up.
//!
//! The test lowers this process's own RLIMIT_NOFILE soft limit, so it is
//! the only test in this binary (integration tests in one file share a
//! process; a parallel test could race the limit). The original limit is
//! restored by a drop guard even on panic.
#![cfg(target_os = "linux")]

use gdprbench_repro::connectors::GdprClient;
use gdprbench_repro::drivers::{build_connector, ConnectorSpec};
use gdprbench_repro::gdpr_server::{sys, GdprServer, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Count descriptors currently open in this process.
fn open_fds() -> u64 {
    // The read_dir handle itself holds one fd while iterating.
    std::fs::read_dir("/proc/self/fd").unwrap().count() as u64 - 1
}

/// Restores the original RLIMIT_NOFILE even if the test panics mid-way.
struct LimitGuard {
    soft: u64,
    hard: u64,
}

impl Drop for LimitGuard {
    fn drop(&mut self) {
        let _ = sys::set_nofile_limit(self.soft, self.hard);
    }
}

#[test]
fn emfile_pauses_accepts_but_established_connections_keep_serving() {
    let engine = build_connector(&ConnectorSpec::new("redis")).unwrap();
    let config = ServerConfig {
        encrypt: None,
        ..Default::default()
    };
    let server = GdprServer::bind(engine, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();

    // Established population that must survive the exhaustion window.
    let established: Vec<GdprClient> = (0..4)
        .map(|i| {
            let client =
                GdprClient::connect_plain(&addr).unwrap_or_else(|e| panic!("connect #{i}: {e}"));
            assert_eq!(client.ping(b"pre").unwrap(), b"pre");
            client
        })
        .collect();
    let accepted_before = server.stats().connections_accepted.load(Ordering::Relaxed);

    let (soft, hard) = sys::nofile_limit().unwrap();
    let _guard = LimitGuard { soft, hard };

    // Leave exactly one descriptor of headroom: the client-side connect
    // below consumes it, so the server's accept(2) must fail with EMFILE.
    let used = open_fds();
    sys::set_nofile_limit(used + 1, hard).unwrap();

    // The TCP handshake completes into the listen backlog regardless; the
    // server just cannot accept it while out of descriptors.
    let mut starved = TcpStream::connect(&addr).expect("backlog connect");
    starved.write_all(&[0, 0, 0, 0]).unwrap();

    // Give the event loop time to hit EMFILE and enter the paused state,
    // then prove every established connection still serves — repeatedly,
    // so a spinning or wedged accept loop would show up as latency or
    // dropped connections here.
    std::thread::sleep(Duration::from_millis(100));
    for round in 0..5 {
        for (i, client) in established.iter().enumerate() {
            let msg = format!("r{round}c{i}");
            let echo = client
                .ping(msg.as_bytes())
                .unwrap_or_else(|e| panic!("connection #{i} died during exhaustion: {e}"));
            assert_eq!(echo, msg.as_bytes());
        }
    }
    assert_eq!(
        server.stats().connections_accepted.load(Ordering::Relaxed),
        accepted_before,
        "server accepted a connection while out of descriptors"
    );

    // Free descriptors: the starved probe (1 fd) and one established
    // client (its fd now, plus the server-side fd once the loop observes
    // EOF and closes its conn — which also force-resumes accepting).
    drop(starved);
    let mut established = established;
    drop(established.pop());

    // Accepting must resume without a restart: a fresh client gets
    // through once the loop reaps the closed connections.
    let deadline = Instant::now() + Duration::from_secs(5);
    let revived = loop {
        match GdprClient::connect_plain(&addr) {
            Ok(client) => break client,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "accepts never resumed after descriptors freed: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(revived.ping(b"revived").unwrap(), b"revived");
    for (i, client) in established.iter().enumerate() {
        assert_eq!(client.ping(b"post").unwrap(), b"post", "connection #{i}");
    }

    drop(_guard);
    server.shutdown();
}
