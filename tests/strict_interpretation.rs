//! The paper's *strict interpretation* of GDPR (§1): deletions are
//! synchronous and real-time, every interaction is audited, and purpose/
//! objection checks gate every processing read. These tests pin those
//! semantics so a future "optimization" cannot quietly relax them.

use gdprbench_repro::connectors::{PostgresConnector, RedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, GdprResponse, Session};
use std::time::Duration;

fn connectors() -> Vec<Box<dyn GdprConnector>> {
    vec![
        Box::new(RedisConnector::open_compliant().unwrap()),
        Box::new(PostgresConnector::open_compliant().unwrap()),
    ]
}

fn record(key: &str, user: &str) -> PersonalRecord {
    PersonalRecord::new(
        key,
        "payload",
        Metadata::new(user, vec!["billing".into()], Duration::from_secs(3600)),
    )
}

/// RTBF is synchronous: the very next query observes the deletion. (Google
/// Cloud's 180-day asynchronous deletion would fail this test — that is the
/// point of the strict interpretation.)
#[test]
fn deletion_is_observable_immediately() {
    for conn in connectors() {
        conn.execute(
            &Session::controller(),
            &GdprQuery::CreateRecord(record("k", "neo")),
        )
        .unwrap();
        let neo = Session::customer("neo");
        conn.execute(&neo, &GdprQuery::DeleteByKey("k".into()))
            .unwrap();
        // No settling time, no background pass: gone now.
        assert_eq!(
            conn.execute(
                &Session::regulator(),
                &GdprQuery::VerifyDeletion("k".into())
            )
            .unwrap(),
            GdprResponse::DeletionVerified(true),
            "{}",
            conn.name()
        );
        assert!(conn
            .execute(&neo, &GdprQuery::ReadMetadataByKey("k".into()))
            .is_err());
    }
}

/// Every read is audited — the "read becomes read+write" cost the paper
/// highlights (G30). Even denied attempts leave a trace.
#[test]
fn audit_trail_captures_reads_and_denials() {
    for conn in connectors() {
        conn.execute(
            &Session::controller(),
            &GdprQuery::CreateRecord(record("k", "neo")),
        )
        .unwrap();
        let before = match conn
            .execute(
                &Session::regulator(),
                &GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            )
            .unwrap()
        {
            GdprResponse::Logs(lines) => lines.len(),
            _ => unreachable!(),
        };
        // One successful read, one denied read.
        conn.execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("neo".into()),
        )
        .unwrap();
        let _ = conn.execute(
            &Session::customer("smith"),
            &GdprQuery::ReadDataByUser("neo".into()),
        );
        let lines = match conn
            .execute(
                &Session::regulator(),
                &GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            )
            .unwrap()
        {
            GdprResponse::Logs(lines) => lines,
            _ => unreachable!(),
        };
        // +2 query events +1 for the first GetSystemLogs itself.
        assert_eq!(lines.len(), before + 3, "{}", conn.name());
        assert!(
            lines.iter().any(|l| l.detail.contains("access denied")),
            "{}: denials must be audited",
            conn.name()
        );
    }
}

/// G5(1b) + G21: a processing read returns exactly the records whose
/// declared purposes include the session purpose minus objections —
/// verified record-by-record against ground truth.
#[test]
fn purpose_and_objection_gating_is_exact() {
    for conn in connectors() {
        let controller = Session::controller();
        let mut expected: Vec<String> = Vec::new();
        for i in 0..40 {
            let mut r = record(&format!("k{i:02}"), &format!("u{i:02}"));
            r.metadata.purposes = match i % 4 {
                0 => vec!["ads".into()],
                1 => vec!["ads".into(), "billing".into()],
                2 => vec!["billing".into()],
                _ => vec!["analytics".into()],
            };
            if i % 8 == 0 {
                r.metadata.objections = vec!["ads".into()];
            }
            let allowed = r.metadata.allows_purpose("ads");
            if allowed {
                expected.push(r.key.clone());
            }
            conn.execute(&controller, &GdprQuery::CreateRecord(r))
                .unwrap();
        }
        let resp = conn
            .execute(
                &Session::processor("ads"),
                &GdprQuery::ReadDataByPurpose("ads".into()),
            )
            .unwrap();
        let mut got: Vec<String> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        got.sort();
        expected.sort();
        assert_eq!(got, expected, "{}", conn.name());
    }
}

/// The TTL machinery enforces G5(1e) without any explicit delete: records
/// past their declared retention vanish (lazily on Redis access paths,
/// via a sweep on PostgreSQL).
#[test]
fn retention_limits_are_enforced() {
    // Redis with a simulated clock.
    let sim = gdprbench_repro::clock::sim();
    let store = gdprbench_repro::kvstore::KvStore::open_with_clock(
        gdprbench_repro::kvstore::KvConfig {
            expiration: gdprbench_repro::kvstore::ExpirationMode::Strict,
            ..Default::default()
        },
        sim.clone(),
    )
    .unwrap();
    let conn = RedisConnector::new(store);
    let mut r = record("k", "neo");
    r.metadata.ttl = Some(Duration::from_secs(30));
    conn.execute(&Session::controller(), &GdprQuery::CreateRecord(r))
        .unwrap();
    sim.advance(Duration::from_secs(31));
    // No cycle has run yet, but lazy expire-on-access already hides it.
    assert!(conn
        .execute(
            &Session::customer("neo"),
            &GdprQuery::ReadMetadataByKey("k".into())
        )
        .is_err());

    // PostgreSQL with a simulated clock and one sweep.
    let sim = gdprbench_repro::clock::sim();
    let db = gdprbench_repro::relstore::Database::open_with_clock(
        gdprbench_repro::relstore::RelConfig::default(),
        sim.clone(),
    )
    .unwrap();
    let conn = PostgresConnector::new(db).unwrap();
    let mut r = record("k", "neo");
    r.metadata.ttl = Some(Duration::from_secs(30));
    conn.execute(&Session::controller(), &GdprQuery::CreateRecord(r))
        .unwrap();
    sim.advance(Duration::from_secs(31));
    assert_eq!(conn.ttl_daemon().sweep_once().unwrap(), 1);
    assert_eq!(conn.record_count(), 0);
}
