//! Fault injection against the metadata-index snapshot recovery path.
//!
//! The contract under test (`gdpr_core::snapshot`): recovery must **never
//! panic** and **never serve a wrong index** — whatever bytes sit at the
//! snapshot path — and must fall back to the O(n) rebuild *exactly* when
//! the image is untrustworthy: torn/truncated, bit-flipped, stale (the
//! store moved past the stamp, or fell short of it), duplicated, renamed
//! from an older generation, or written under a different shard topology.
//! After every single reopen, the index must answer every predicate in
//! the taxonomy identically to the reference scan semantics.

use gdprbench_repro::clock;
use gdprbench_repro::connectors::{PostgresConnector, RedisConnector, ShardedRedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::store::RecordPredicate;
use gdprbench_repro::gdpr_core::{
    wire, GdprConnector, GdprQuery, GdprResponse, IndexRecovery, Session, SnapshotInvalid,
};
use gdprbench_repro::kvstore::{config::AofStorage, FsyncPolicy, KvConfig, KvStore};
use gdprbench_repro::relstore::{Database, RelConfig, WalStorage};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unique scratch directory per call (tests run concurrently).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gdpr-recovery-faults-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn kv_config() -> KvConfig {
    KvConfig {
        aof: AofStorage::Memory,
        fsync: FsyncPolicy::Never,
        ..Default::default()
    }
}

/// A small but metadata-diverse corpus: every index dimension (user,
/// purpose, objection, sharing, decision opt-out, TTL) is populated on
/// some records and absent on others.
fn corpus() -> Vec<PersonalRecord> {
    (0..20)
        .map(|i| {
            let mut m = Metadata::new(
                format!("u{}", i % 4),
                vec![["ads", "2fa", "analytics"][i % 3].to_string()],
                Duration::from_secs(3_600 + i as u64),
            );
            if i % 3 == 0 {
                m.purposes.push("billing".into());
            }
            if i % 4 == 0 {
                m.objections.push("ads".into());
            }
            if i % 5 == 0 {
                m.sharing.push("x-corp".into());
            }
            if i % 6 == 0 {
                m.decisions.push(Metadata::DEC_OPT_OUT.to_string());
            }
            if i % 2 == 0 {
                m.ttl = None;
            }
            PersonalRecord::new(format!("k{i:02}"), format!("data-{i}"), m)
        })
        .collect()
}

/// The full predicate taxonomy over the corpus's term vocabulary,
/// including terms nothing matches.
fn taxonomy() -> Vec<RecordPredicate> {
    let mut preds = vec![RecordPredicate::DecisionEligible];
    for user in ["u0", "u1", "u2", "u3", "nobody"] {
        preds.push(RecordPredicate::User(user.into()));
    }
    for term in ["ads", "2fa", "analytics", "billing", "ghost"] {
        preds.push(RecordPredicate::DeclaredPurpose(term.into()));
        preds.push(RecordPredicate::AllowsPurpose(term.into()));
        preds.push(RecordPredicate::NotObjecting(term.into()));
    }
    for party in ["x-corp", "y-corp"] {
        preds.push(RecordPredicate::SharedWith(party.into()));
    }
    preds
}

/// The post-recovery invariant: for every predicate, the index's
/// candidate set equals the reference scan semantics over `expected`.
fn assert_index_matches_scan(conn: &RedisConnector, expected: &[PersonalRecord], ctx: &str) {
    let index = conn.metadata_index().expect("indexed variant");
    for pred in taxonomy() {
        let mut want: Vec<String> = expected
            .iter()
            .filter(|r| pred.matches(r))
            .map(|r| r.key.clone())
            .collect();
        want.sort();
        let got = index
            .keys_for(&pred)
            .unwrap_or_else(|| panic!("{ctx}: {pred:?} must stay index-answerable"));
        assert_eq!(got, want, "{ctx}: wrong index for {pred:?}");
    }
    assert_eq!(index.len(), expected.len(), "{ctx}: index cardinality");
}

fn rebuilt_cause(conn: &RedisConnector) -> &SnapshotInvalid {
    match conn.index_recovery().expect("snapshot-aware open") {
        IndexRecovery::Rebuilt { cause, .. } => cause,
        IndexRecovery::Restored { .. } => panic!("expected a rebuild"),
    }
}

/// Seed a store + snapshot file; returns (store, snapshot path, corpus).
fn seeded_snapshot(tag: &str) -> (Arc<KvStore>, PathBuf, Vec<PersonalRecord>) {
    let dir = scratch_dir(tag);
    let path = dir.join("metaindex.snap");
    let store = KvStore::open(kv_config()).unwrap();
    let conn = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    assert!(matches!(
        conn.index_recovery(),
        Some(IndexRecovery::Rebuilt {
            cause: SnapshotInvalid::Missing,
            ..
        })
    ));
    let controller = Session::controller();
    let records = corpus();
    for r in &records {
        conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
            .unwrap();
    }
    assert!(conn.write_index_snapshot().unwrap() > 0);
    (store, path, records)
}

#[test]
fn intact_snapshot_restores_and_matches_scan() {
    let (store, path, records) = seeded_snapshot("intact");
    let reopened = RedisConnector::with_metadata_index_snapshot(store, &path).unwrap();
    assert!(
        reopened.index_recovery().unwrap().is_restored(),
        "a matching image must take the O(index) path"
    );
    assert_index_matches_scan(&reopened, &records, "intact restore");
}

/// Property sweep: truncating the image at *every* byte prefix must never
/// panic, always rebuild (a prefix is never a valid image), and always
/// leave a correct index.
#[test]
fn truncation_at_every_byte_prefix_rebuilds_correctly() {
    let (store, path, records) = seeded_snapshot("truncate");
    let intact = std::fs::read(&path).unwrap();
    // The full predicate battery on every prefix would be O(len²); run it
    // on a spread of prefixes and the cheap cardinality check on all.
    for len in 0..intact.len() {
        std::fs::write(&path, &intact[..len]).unwrap();
        let reopened =
            RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
        assert!(
            !reopened.index_recovery().unwrap().is_restored(),
            "prefix of {len} bytes must not be trusted"
        );
        if len % 97 == 0 {
            assert_index_matches_scan(&reopened, &records, &format!("truncated at {len}"));
        } else {
            assert_eq!(
                reopened.metadata_index().unwrap().len(),
                records.len(),
                "truncated at {len}: rebuild must cover the store"
            );
        }
    }
    std::fs::write(&path, &intact).unwrap();
    let reopened = RedisConnector::with_metadata_index_snapshot(store, &path).unwrap();
    assert!(reopened.index_recovery().unwrap().is_restored());
}

/// Property sweep: flipping any single byte must fail the checksum (or
/// the parse), never panic, and never surface as a restored-but-wrong
/// index.
#[test]
fn byte_flips_anywhere_rebuild_correctly() {
    let (store, path, records) = seeded_snapshot("flip");
    let intact = std::fs::read(&path).unwrap();
    // A seeded xorshift picks flip positions and masks; every offset class
    // (magic, header, entries, checksum) is also hit explicitly.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut positions: Vec<(usize, u8)> = (0..256)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (
                (state as usize) % intact.len(),
                ((state >> 32) as u8) | 1, // never a zero mask
            )
        })
        .collect();
    positions.extend([
        (0, 0xFF),                // magic
        (9, 0x01),                // version
        (12, 0x01),               // stamp flags
        (14, 0x80),               // generation
        (22, 0x01),               // shard index
        (27, 0x01),               // shard count
        (30, 0x01),               // entry count
        (40, 0x20),               // first entry
        (intact.len() - 1, 0x01), // checksum
        (intact.len() - 9, 0x01), // last body byte
    ]);
    for (i, (pos, mask)) in positions.into_iter().enumerate() {
        let mut bad = intact.clone();
        bad[pos] ^= mask;
        std::fs::write(&path, &bad).unwrap();
        let reopened =
            RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
        assert!(
            !reopened.index_recovery().unwrap().is_restored(),
            "flip {mask:#x} at byte {pos} must not be trusted"
        );
        if i % 29 == 0 {
            assert_index_matches_scan(&reopened, &records, &format!("flip at {pos}"));
        } else {
            assert_eq!(reopened.metadata_index().unwrap().len(), records.len());
        }
    }
}

/// Duplicated and garbage-appended images are malformed, not trusted.
#[test]
fn duplicated_or_padded_images_rebuild_correctly() {
    let (store, path, records) = seeded_snapshot("dup");
    let intact = std::fs::read(&path).unwrap();
    let mut doubled = intact.clone();
    doubled.extend_from_slice(&intact);
    let mut padded = intact.clone();
    padded.extend_from_slice(&[0u8; 7]);
    for (tag, bytes) in [("doubled", doubled), ("padded", padded)] {
        std::fs::write(&path, &bytes).unwrap();
        let reopened =
            RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
        // The appended bytes shift the trailing-checksum window, so these
        // surface as checksum mismatches (or, with a colliding tail, as
        // malformed structure) — either way, structurally untrustworthy.
        assert!(
            matches!(
                rebuilt_cause(&reopened),
                SnapshotInvalid::Malformed(_) | SnapshotInvalid::ChecksumMismatch
            ),
            "{tag} image must be structurally rejected, got {:?}",
            reopened.index_recovery()
        );
        assert_index_matches_scan(&reopened, &records, tag);
    }
}

/// Regression (staleness): a record written *after* the snapshot's
/// generation stamp — here via `set_ex` behind the engine, the PR-4
/// sabotage pattern — must force a rebuild. Trusting the image would
/// serve an index that silently omits the smuggled record from every
/// predicate (and from the negative predicates' universe).
#[test]
fn write_behind_the_engine_after_snapshot_forces_rebuild() {
    let (store, path, mut records) = seeded_snapshot("behind");
    let mut smuggled = PersonalRecord::new(
        "k-behind",
        "d",
        Metadata::new("u9", vec!["ads".into()], Duration::from_secs(60)),
    );
    smuggled.metadata.sharing.push("x-corp".into());
    store
        .set_ex(
            b"rec:k-behind",
            wire::serialize(&smuggled).as_bytes(),
            Duration::from_secs(60),
        )
        .unwrap();
    records.push(smuggled);

    let reopened = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    assert!(
        matches!(
            rebuilt_cause(&reopened),
            SnapshotInvalid::StaleGeneration { .. }
        ),
        "a write behind the stamp must read as staleness, got {:?}",
        reopened.index_recovery()
    );
    assert_index_matches_scan(&reopened, &records, "smuggled set_ex");
    // The rebuilt index serves the smuggled record like any other.
    let resp = reopened
        .execute(
            &Session::customer("u9"),
            &GdprQuery::ReadDataByUser("u9".into()),
        )
        .unwrap();
    assert_eq!(resp.cardinality(), 1);
}

/// Staleness in both directions across a crash: an AOF replayed *past*
/// the stamp (writes after the snapshot) and an AOF torn *short* of it
/// (the store lost a tail the index still describes) must both rebuild;
/// replaying to exactly the stamp restores.
#[test]
fn aof_replay_past_or_short_of_the_stamp_forces_rebuild() {
    let (store, path, records) = seeded_snapshot("replay");
    let at_stamp = store.aof_memory_buffer().unwrap().lock().clone();

    // Writes after the snapshot: replaying the full log overshoots the
    // stamp.
    let conn = RedisConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let late = PersonalRecord::new(
        "k-late",
        "d",
        Metadata::new("u0", vec!["2fa".into()], Duration::from_secs(3_600)),
    );
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(late.clone()),
    )
    .unwrap();
    let past_stamp = store.aof_memory_buffer().unwrap().lock().clone();

    let replayed = KvStore::replay(kv_config(), &past_stamp, clock::wall()).unwrap();
    let reopened = RedisConnector::with_metadata_index_snapshot(replayed, &path).unwrap();
    assert!(matches!(
        rebuilt_cause(&reopened),
        SnapshotInvalid::StaleGeneration { .. }
    ));
    let mut with_late = records.clone();
    with_late.push(late);
    assert_index_matches_scan(&reopened, &with_late, "replay past the stamp");

    // Torn tail: drop the log's final frame — here the last record's
    // EXPIREAT, so the record survives but *without its TTL*. Even this
    // single-frame divergence (no key added or lost!) moves the
    // generation and must force a rebuild: the snapshot still carries a
    // deadline the store no longer backs.
    let shorter = {
        let mut offsets = vec![];
        let mut pos = 0usize;
        while pos + 4 <= at_stamp.len() {
            offsets.push(pos);
            let len = u32::from_le_bytes(at_stamp[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4 + len;
        }
        &at_stamp[..*offsets.last().unwrap()]
    };
    let replayed = KvStore::replay(kv_config(), shorter, clock::wall()).unwrap();
    let reopened = RedisConnector::with_metadata_index_snapshot(replayed, &path).unwrap();
    assert!(matches!(
        rebuilt_cause(&reopened),
        SnapshotInvalid::StaleGeneration { .. }
    ));
    assert_index_matches_scan(&reopened, &records, "replay short of the stamp");
    // The rebuild re-arms k19's deadline from its *declared* TTL (the
    // store lost the native one with the torn frame; a TTL'd record must
    // not be retained forever just because its EXPIREAT tore away).
    assert!(reopened
        .metadata_index()
        .unwrap()
        .deadline_of("k19")
        .is_some());

    // Replay to exactly the stamp: trustworthy, restored.
    let replayed = KvStore::replay(kv_config(), &at_stamp, clock::wall()).unwrap();
    let reopened = RedisConnector::with_metadata_index_snapshot(replayed, &path).unwrap();
    assert!(reopened.index_recovery().unwrap().is_restored());
    assert_index_matches_scan(&reopened, &records, "replay to the stamp");
}

/// A *renamed* stale image — an older generation's bytes copied over the
/// current path (backup restored into place, rsync race, operator error)
/// — carries a valid checksum and the right topology, and must still be
/// rejected by the generation stamp alone.
#[test]
fn renamed_stale_generation_is_rejected_by_the_stamp() {
    let (store, path, records) = seeded_snapshot("rename");
    let old_image = std::fs::read(&path).unwrap();

    // Move the store forward and snapshot again (the current image).
    let conn = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    let extra = PersonalRecord::new(
        "k-extra",
        "d",
        Metadata::new("u1", vec!["ads".into()], Duration::from_secs(3_600)),
    );
    conn.execute(
        &Session::controller(),
        &GdprQuery::CreateRecord(extra.clone()),
    )
    .unwrap();
    conn.write_index_snapshot().unwrap();
    let mut records = records;
    records.push(extra);

    // The current image restores…
    let reopened = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    assert!(reopened.index_recovery().unwrap().is_restored());
    assert_index_matches_scan(&reopened, &records, "current image");

    // …the renamed old one does not, however intact it is.
    std::fs::write(&path, &old_image).unwrap();
    let reopened = RedisConnector::with_metadata_index_snapshot(store, &path).unwrap();
    assert!(matches!(
        rebuilt_cause(&reopened),
        SnapshotInvalid::StaleGeneration { .. }
    ));
    assert_index_matches_scan(&reopened, &records, "renamed stale image");
}

/// Shard-count change across a restart: every per-shard image carries the
/// topology it was written under, so reopening under a different count
/// rebuilds every shard index (while `verify_placement` flags the store
/// side, exactly as PR-2 pinned); reopening under the original count
/// restores every shard.
#[test]
fn shard_count_mismatch_rebuilds_while_same_count_restores() {
    let dir = scratch_dir("topology");
    let clk = clock::wall();
    let stores: Vec<_> = (0..2)
        .map(|_| KvStore::open_with_clock(kv_config(), clk.clone()).unwrap())
        .collect();
    let conn = ShardedRedisConnector::with_metadata_index_snapshots(stores.clone(), &dir).unwrap();
    let controller = Session::controller();
    let records = corpus();
    for r in &records {
        conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
            .unwrap();
    }
    assert!(conn.close().unwrap() > 0, "close persists the images");
    let aofs: Vec<Vec<u8>> = stores
        .iter()
        .map(|s| s.aof_memory_buffer().unwrap().lock().clone())
        .collect();
    let replay_fleet = |n_extra: usize| -> Vec<Arc<KvStore>> {
        let clk = clock::wall();
        let mut fleet: Vec<Arc<KvStore>> = aofs
            .iter()
            .map(|aof| KvStore::replay(kv_config(), aof, clk.clone()).unwrap())
            .collect();
        for _ in 0..n_extra {
            fleet.push(KvStore::open_with_clock(kv_config(), clk.clone()).unwrap());
        }
        fleet
    };

    // Same count: every shard restores, responses match the original.
    let same = ShardedRedisConnector::with_metadata_index_snapshots(replay_fleet(0), &dir).unwrap();
    for shard in 0..2 {
        assert!(
            same.index_recovery(shard).unwrap().is_restored(),
            "shard {shard} must restore under the original topology"
        );
    }
    same.verify_placement().unwrap();
    for user in ["u0", "u1", "u2", "u3"] {
        assert_eq!(
            conn.execute(
                &Session::customer(user),
                &GdprQuery::ReadDataByUser(user.into())
            )
            .unwrap(),
            same.execute(
                &Session::customer(user),
                &GdprQuery::ReadDataByUser(user.into())
            )
            .unwrap(),
            "restored topology must answer as the original"
        );
    }

    // Changed count (2 → 3): every shard index rebuilds with a topology
    // cause; the store side misroutes until rebalanced, after which the
    // (already rebuilt) indexes answer correctly.
    let three =
        ShardedRedisConnector::with_metadata_index_snapshots(replay_fleet(1), &dir).unwrap();
    for shard in 0..2 {
        match three.index_recovery(shard).unwrap() {
            IndexRecovery::Rebuilt {
                cause: SnapshotInvalid::TopologyMismatch { snapshot, expected },
                ..
            } => {
                assert_eq!(snapshot.1, 2, "written under 2 shards");
                assert_eq!(expected.1, 3, "reopened under 3");
            }
            other => panic!("shard {shard}: expected topology rebuild, got {other:?}"),
        }
    }
    // The fresh third shard has no image at all.
    assert!(matches!(
        three.index_recovery(2).unwrap(),
        IndexRecovery::Rebuilt {
            cause: SnapshotInvalid::Missing,
            ..
        }
    ));
    assert!(three.verify_placement().is_err(), "store side misroutes");
    assert!(three.rebalance().unwrap() > 0);
    three.verify_placement().unwrap();
    let resp = three
        .execute(
            &Session::customer("u0"),
            &GdprQuery::ReadDataByUser("u0".into()),
        )
        .unwrap();
    assert_eq!(
        resp.cardinality(),
        records.iter().filter(|r| r.metadata.user == "u0").count()
    );
}

/// TTL correctness across restore: a deadline set carried through a
/// snapshot must fire the inclusive-boundary purge (`deadline == now` is
/// expired) exactly as a never-restarted engine would — on the kvstore
/// path and the relstore path alike.
#[test]
fn restored_deadline_set_fires_inclusive_boundary_purge_on_both_backends() {
    let controller = Session::controller();
    let mut record = PersonalRecord::new(
        "ttl-1",
        "d",
        Metadata::new("neo", vec!["ads".into()], Duration::from_secs(10)),
    );
    record.metadata.ttl = Some(Duration::from_secs(10));

    // --- kvstore path ---
    let sim = clock::sim();
    let dir = scratch_dir("ttl-kv");
    let path = dir.join("metaindex.snap");
    let config = KvConfig {
        expiration: gdprbench_repro::kvstore::ExpirationMode::Strict,
        ..kv_config()
    };
    let store = KvStore::open_with_clock(config.clone(), sim.clone()).unwrap();
    let conn = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
        .unwrap();
    conn.write_index_snapshot().unwrap();
    let aof = store.aof_memory_buffer().unwrap().lock().clone();

    // Advance the shared sim clock to exactly the deadline, then "crash"
    // and recover: store from the AOF, index from the snapshot.
    sim.advance(Duration::from_millis(10_000));
    let replayed = KvStore::replay(config, &aof, sim.clone()).unwrap();
    let restored = RedisConnector::with_metadata_index_snapshot(replayed, &path).unwrap();
    assert!(restored.index_recovery().unwrap().is_restored());
    assert_eq!(
        restored.metadata_index().unwrap().expired_keys(10_000),
        vec!["ttl-1"],
        "the restored deadline set treats deadline == now as expired"
    );
    assert_eq!(
        restored
            .execute(&controller, &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(1),
        "kvstore: restored deadline fires at the boundary instant"
    );
    assert_eq!(
        restored
            .execute(
                &Session::regulator(),
                &GdprQuery::VerifyDeletion("ttl-1".into())
            )
            .unwrap(),
        GdprResponse::DeletionVerified(true)
    );
    assert!(restored.metadata_index().unwrap().is_empty());

    // --- relstore path (engine index over the WAL-backed store) ---
    let sim = clock::sim();
    let dir = scratch_dir("ttl-rel");
    let path = dir.join("metaindex.snap");
    let config = RelConfig {
        wal: WalStorage::Memory,
        ..Default::default()
    };
    let db = Database::open_with_clock(config.clone(), sim.clone()).unwrap();
    let conn = PostgresConnector::with_engine_index_snapshot(Arc::clone(&db), &path).unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
        .unwrap();
    conn.close().unwrap();
    let wal = db.wal_memory_buffer().unwrap().lock().clone();

    sim.advance(Duration::from_millis(10_000));
    let recovered = Database::recover(config, &wal, sim.clone()).unwrap();
    let restored = PostgresConnector::with_engine_index_snapshot(recovered, &path).unwrap();
    assert!(
        restored.index_recovery().unwrap().is_restored(),
        "relstore: {:?}",
        restored.index_recovery()
    );
    assert_eq!(
        restored.metadata_index().unwrap().expired_keys(10_000),
        vec!["ttl-1"]
    );
    assert_eq!(
        restored
            .execute(&controller, &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(1),
        "relstore: restored deadline fires at the boundary instant"
    );
    assert_eq!(
        restored
            .execute(
                &Session::regulator(),
                &GdprQuery::VerifyDeletion("ttl-1".into())
            )
            .unwrap(),
        GdprResponse::DeletionVerified(true)
    );

    // One millisecond earlier nothing would have fired: pin the boundary
    // from the other side on a fresh kvstore run.
    let sim = clock::sim();
    let dir = scratch_dir("ttl-kv-early");
    let path = dir.join("metaindex.snap");
    let store = KvStore::open_with_clock(kv_config(), sim.clone()).unwrap();
    let conn = RedisConnector::with_metadata_index_snapshot(store, &path).unwrap();
    conn.execute(&controller, &GdprQuery::CreateRecord(record))
        .unwrap();
    conn.write_index_snapshot().unwrap();
    sim.advance(Duration::from_millis(9_999));
    assert_eq!(
        conn.execute(&controller, &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(0),
        "not due at deadline − 1ms"
    );
}
