//! The sharded Redis-shaped connector: N independent [`kvstore::KvStore`]
//! instances behind one [`gdpr_core::ShardedEngine`] router.
//!
//! The single-store connector serializes every operation through one
//! store-wide lock (the real Redis is single-threaded by design, and the
//! reproduction keeps that shape). Sharding gives each key range its own
//! store, its own lock, its own [`gdpr_core::MetadataIndex`], and its own
//! expiry listener, so point operations on disjoint keys proceed in
//! parallel — the scale-out story the roadmap's millions-of-users target
//! needs — while the router keeps every compliance semantic (authorization,
//! visibility, audit ordering, TTL scrubbing) exactly as the unsharded
//! engine defines it. The conformance suite runs this variant alongside
//! the others, and `tests/proptests.rs` pins shard-count invariance.
//!
//! Two variants, mirroring the unsharded pair:
//!
//! * [`ShardedRedisConnector::new`] — each shard resolves metadata
//!   predicates by scanning its own keyspace (`redis-sharded-scan`).
//! * [`ShardedRedisConnector::with_metadata_index`] — each shard's engine
//!   maintains a per-shard index; store-side TTL reaps invalidate only the
//!   owning shard's index (`redis-sharded`).

use crate::redis::RedisStore;
use gdpr_core::audit::AuditTrail;
use gdpr_core::compliance::FeatureReport;
use gdpr_core::connector::SpaceReport;
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::metaindex::MetadataIndex;
use gdpr_core::query::GdprQuery;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::sharded::ShardedEngine;
use gdpr_core::GdprConnector;
use kvstore::{KvConfig, KvStore};
use std::sync::Arc;

/// GDPR connector hash-partitioning records across N key-value stores.
pub struct ShardedRedisConnector {
    engine: ShardedEngine<RedisStore>,
}

impl ShardedRedisConnector {
    /// Wrap open stores, one per shard, scan-based (paper-faithful within
    /// each shard: every metadata query scans the shard's keyspace).
    pub fn new(stores: Vec<Arc<KvStore>>) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| RedisStore::over(s, "redis"))
            .collect();
        Ok(ShardedRedisConnector {
            engine: ShardedEngine::new(backends)?.named("redis-sharded-scan"),
        })
    }

    /// Wrap open stores with a per-shard engine-maintained metadata index —
    /// the headline `redis-sharded` variant.
    pub fn with_metadata_index(stores: Vec<Arc<KvStore>>) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| RedisStore::over(s, "redis"))
            .collect();
        Ok(ShardedRedisConnector {
            engine: ShardedEngine::with_metadata_index(backends)?.named("redis-sharded"),
        })
    }

    /// The snapshot-aware sharded open path: as
    /// [`Self::with_metadata_index`], but shard *i* recovers its index
    /// from `dir/metaindex-shard-i.snap` when that image matches the
    /// shard store's AOF position and was written as shard *i* of exactly
    /// this shard count — a reopen under a different count rebuilds every
    /// index (the header records the topology), consistent with
    /// [`Self::verify_placement`] flagging the store side.
    pub fn with_metadata_index_snapshots(
        stores: Vec<Arc<KvStore>>,
        dir: impl AsRef<std::path::Path>,
    ) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| RedisStore::over(s, "redis"))
            .collect();
        Ok(ShardedRedisConnector {
            engine: ShardedEngine::with_metadata_index_snapshots(backends, dir)?
                .named("redis-sharded"),
        })
    }

    /// How one shard's index came up (snapshot-aware variant only).
    pub fn index_recovery(&self, shard: usize) -> Option<&gdpr_core::IndexRecovery> {
        self.engine.shards()[shard].index_recovery()
    }

    /// Persist every shard's index snapshot now (snapshot-aware variant
    /// only). Returns total entries written.
    pub fn write_index_snapshots(&self) -> GdprResult<usize> {
        self.engine.write_index_snapshots()
    }

    /// Graceful close: snapshot every shard's index when so configured,
    /// and flush every shard's AOF.
    pub fn close(&self) -> GdprResult<usize> {
        let written = self.engine.close()?;
        for i in 0..self.shard_count() {
            self.store(i)
                .sync_aof()
                .map_err(|e| GdprError::Store(e.to_string()))?;
        }
        Ok(written)
    }

    /// Open `shards` fresh in-memory stores under one config and clock and
    /// wrap them (indexed). The config is cloned per shard, so file-backed
    /// persistence configs are rejected — shards must not share an AOF.
    pub fn open_with_clock(
        shards: usize,
        config: KvConfig,
        clock: clock::SharedClock,
    ) -> GdprResult<Self> {
        if matches!(config.aof, kvstore::config::AofStorage::File(_)) {
            return Err(GdprError::Store(
                "sharded open: shards cannot share one AOF file; open stores individually"
                    .to_string(),
            ));
        }
        let stores = (0..shards.max(1))
            .map(|_| {
                KvStore::open_with_clock(config.clone(), clock.clone())
                    .map_err(|e| GdprError::Store(e.to_string()))
            })
            .collect::<GdprResult<Vec<_>>>()?;
        Self::with_metadata_index(stores)
    }

    /// Open `shards` fresh default in-memory stores on the wall clock.
    pub fn open(shards: usize) -> GdprResult<Self> {
        Self::open_with_clock(shards, KvConfig::default(), clock::wall())
    }

    /// Open `shards` fully compliant in-memory stores (strict TTL, read
    /// logging, encryption).
    pub fn open_compliant(shards: usize) -> GdprResult<Self> {
        Self::open_with_clock(shards, KvConfig::gdpr_compliant_in_memory(), clock::wall())
    }

    /// The router engine (shard inspection, placement checks).
    pub fn engine(&self) -> &ShardedEngine<RedisStore> {
        &self.engine
    }

    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The underlying store of one shard.
    pub fn store(&self, shard: usize) -> &Arc<KvStore> {
        self.engine.shards()[shard].store().kv()
    }

    /// The metadata index of one shard (present on the indexed variant).
    pub fn metadata_index(&self, shard: usize) -> Option<&Arc<MetadataIndex>> {
        self.engine.shards()[shard].metadata_index()
    }

    /// The unified audit trail.
    pub fn audit(&self) -> &AuditTrail {
        self.engine.audit()
    }

    /// Run one active expiration cycle on every shard, returning the total
    /// reaped (each shard's listener scrubs its own index only).
    pub fn run_expiration_cycles(&self) -> usize {
        (0..self.shard_count())
            .map(|i| self.store(i).run_expiration_cycle().reaped)
            .sum()
    }

    /// Fail loudly if any record sits in a shard that does not own it —
    /// the post-restart guard against a changed shard count.
    pub fn verify_placement(&self) -> GdprResult<()> {
        self.engine.verify_placement()
    }

    /// Migrate misplaced records to their owning shards, preserving
    /// remaining TTL deadlines. Returns how many records moved.
    pub fn rebalance(&self) -> GdprResult<usize> {
        self.engine.rebalance()
    }
}

impl GdprConnector for ShardedRedisConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.engine.execute(session, query)
    }

    fn features(&self) -> FeatureReport {
        self.engine.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.engine.space_report()
    }

    fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    fn name(&self) -> &str {
        GdprConnector::name(&self.engine)
    }

    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry()
    }

    fn op_telemetry_for(
        &self,
        tenant: &gdpr_core::tenant::TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, gdpr_core::telemetry::OpTelemetrySnapshot)> {
        self.engine.tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &gdpr_core::tenant::TenantId) -> GdprResult<()> {
        self.engine.provision_tenant(tenant)
    }

    fn close(&self) -> GdprResult<()> {
        ShardedRedisConnector::close(self).map(|_| ())
    }
}
