//! GDPR client stubs: [`gdpr_core::GdprConnector`] implementations over the
//! two stores, mirroring the per-database clients the paper adds to
//! GDPRbench (§4.3: "~400 LoC for Redis and PostgreSQL clients").
//!
//! * [`redis::RedisConnector`] — records live as wire-format strings under
//!   `rec:<key>` with native `EXPIRE` for TTL. The store has **no secondary
//!   indexes**, so every metadata-conditioned query SCANs the keyspace and
//!   filters client-side — the O(n) behaviour behind Figures 5a and 7b.
//!   Access control is enforced in the client, exactly as the paper does.
//! * [`postgres::PostgresConnector`] — one `personal_data` table with a
//!   column per metadata attribute (arrays for multi-valued ones). In
//!   baseline form only the primary key is indexed (metadata queries
//!   seq-scan, Figure 5b); with
//!   [`postgres::PostgresConnector::with_metadata_indices`] every metadata
//!   column gets a secondary index (Figure 5c) at the space cost Table 3
//!   reports.
//!
//! Both connectors enforce the Figure 1 role matrix via [`gdpr_core::acl`]
//! and keep a [`gdpr_core::audit::AuditTrail`] that serves GET-SYSTEM-LOGS.

pub mod postgres;
pub mod redis;

pub use postgres::PostgresConnector;
pub use redis::RedisConnector;

#[cfg(test)]
mod conformance;
