//! Storage backends for the shared GDPR compliance engine.
//!
//! The paper adds per-database client stubs to GDPRbench (§4.3: "~400 LoC
//! for Redis and PostgreSQL clients"); in this reproduction the entire
//! GDPR layer — authorization, record visibility, audit logging, and the
//! one `GdprQuery` dispatch — lives in [`gdpr_core::ComplianceEngine`], and
//! each database contributes only a narrow [`gdpr_core::RecordStore`]
//! backend:
//!
//! * [`redis::RedisStore`] — records live as wire-format strings under
//!   `rec:<key>` with native `EXPIRE` for TTL. The store has **no secondary
//!   indexes**: the baseline [`redis::RedisConnector::new`] resolves every
//!   metadata predicate by SCAN+filter (the O(n) behaviour behind Figures
//!   5a and 7b), while [`redis::RedisConnector::with_metadata_index`]
//!   attaches the engine's [`gdpr_core::MetadataIndex`] for O(matches)
//!   lookups, with store-side expirations invalidating index entries.
//! * [`sharded::ShardedRedisConnector`] — N independent key-value stores
//!   behind a [`gdpr_core::ShardedEngine`] hash-partition router: point
//!   ops go to the owning shard, metadata predicates fan out and merge
//!   deterministically, and one unified audit trail spans the fleet. Shard
//!   count is semantically invisible (pinned by the conformance suite here
//!   and the shard-count-invariance properties in `tests/proptests.rs`).
//! * [`remote::RemoteConnector`] — not a storage backend but a *network
//!   client*: a pool of [`remote::GdprClient`] connections speaking the
//!   `gdpr-server` wire protocol, behind the same [`gdpr_core::GdprConnector`]
//!   interface. Any of the variants above, served by `gdpr-serve`, is
//!   drivable over loopback or a real network; the conformance suite runs
//!   every variant both in-process and remote-wrapped to pin
//!   byte-equivalence.
//! * [`postgres::PostgresStore`] — one `personal_data` table with a column
//!   per metadata attribute (arrays for multi-valued ones), pushing every
//!   predicate down to relstore's planner. In baseline form only the
//!   primary key is indexed (metadata queries seq-scan, Figure 5b); with
//!   [`postgres::PostgresConnector::with_metadata_indices`] every metadata
//!   column gets a secondary index (Figure 5c) at the space cost Table 3
//!   reports.
//!
//! All connectors enforce the Figure 1 role matrix and keep the audit
//! trail through the engine — the behaviour is defined once, so the
//! conformance suite holds for every backend by construction.

pub mod disk;
pub mod postgres;
pub mod redis;
pub mod registry;
pub mod remote;
pub mod sharded;

pub use disk::{DiskConnector, DiskStore, ShardedDiskConnector};
pub use postgres::{PostgresConnector, PostgresStore};
pub use redis::{RedisConnector, RedisStore};
pub use remote::{GdprClient, RemoteConnector};
pub use sharded::ShardedRedisConnector;

#[cfg(test)]
mod conformance;
