//! The connector-variant registry: the single list of in-process engine
//! variants that every fleet-shaped harness iterates.
//!
//! Before this module existed, the variant list was duplicated across the
//! conformance suite, the shard-count-invariance proptests, and the driver
//! smoke test — adding a backend meant finding and editing each copy, and
//! missing one silently shrank a battery's coverage. Now a new connector
//! is **one entry in [`VARIANTS`]**: the conformance fleet, the proptest
//! fleet, and the `builds_every_in_process_variant` driver check all pick
//! it up from here.
//!
//! Sharded variants read their shard count from `GDPR_SHARDS` at build
//! time (CI runs the suites at 1 and 8). Disk variants materialise in a
//! fresh scratch directory under the system temp dir per instantiation,
//! with a deliberately small buffer pool so eviction is exercised even by
//! modest batteries.

use crate::{
    DiskConnector, PostgresConnector, RedisConnector, ShardedDiskConnector, ShardedRedisConnector,
};
use gdpr_core::EngineHandle;
use pagestore::{PageStore, PageStoreConfig};
use std::sync::Arc;

/// One in-process connector variant: its driver-facing name and a builder
/// producing a fresh, empty instance.
pub struct Variant {
    pub name: &'static str,
    pub build: fn() -> EngineHandle,
}

/// Every in-process variant. `remote` is not listed — it is a transport
/// wrapper, and the harnesses that care wrap each of these behind a
/// served socket themselves.
pub const VARIANTS: &[Variant] = &[
    Variant {
        name: "redis",
        build: build_redis,
    },
    Variant {
        name: "redis-mi",
        build: build_redis_mi,
    },
    Variant {
        name: "redis-sharded",
        build: build_redis_sharded,
    },
    Variant {
        name: "redis-sharded-scan",
        build: build_redis_sharded_scan,
    },
    Variant {
        name: "postgres",
        build: build_postgres,
    },
    Variant {
        name: "postgres-mi",
        build: build_postgres_mi,
    },
    Variant {
        name: "disk",
        build: build_disk,
    },
    Variant {
        name: "disk-sharded",
        build: build_disk_sharded,
    },
];

/// One fresh instance of every in-process variant.
pub fn engine_handles() -> Vec<EngineHandle> {
    VARIANTS.iter().map(|v| (v.build)()).collect()
}

/// The driver-facing names, in registry order.
pub fn names() -> Vec<&'static str> {
    VARIANTS.iter().map(|v| v.name).collect()
}

/// A fresh, unique scratch directory under the system temp dir. Harness
/// instances are short-lived and temp-dir hygiene is the OS's job, so the
/// directory is not reaped on drop.
pub fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gdpr-registry-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pool small enough that conformance-scale datasets overflow it — every
/// battery run doubles as an eviction test.
pub fn small_pool_config() -> PageStoreConfig {
    PageStoreConfig {
        pool_pages: 16,
        ..PageStoreConfig::default()
    }
}

fn open_kv() -> Arc<kvstore::KvStore> {
    kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap()
}

/// `n` stores sharing one clock instance — the sharded engine requires a
/// single clock so timestamps and TTL deadlines are comparable fleet-wide.
fn open_kv_fleet(n: usize) -> Vec<Arc<kvstore::KvStore>> {
    let clock = clock::wall();
    (0..n)
        .map(|_| {
            kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), clock.clone()).unwrap()
        })
        .collect()
}

fn open_rel() -> Arc<relstore::Database> {
    relstore::Database::open(relstore::RelConfig::default()).unwrap()
}

fn open_disk() -> Arc<PageStore> {
    PageStore::open(scratch_dir("disk"), small_pool_config(), clock::wall()).unwrap()
}

fn open_disk_fleet(n: usize) -> Vec<Arc<PageStore>> {
    crate::disk::open_store_fleet(
        scratch_dir("disk-sharded"),
        n,
        small_pool_config(),
        clock::wall(),
    )
    .unwrap()
}

fn shards() -> usize {
    gdpr_core::shard_count_from_env()
}

fn build_redis() -> EngineHandle {
    Arc::new(RedisConnector::new(open_kv()))
}

fn build_redis_mi() -> EngineHandle {
    Arc::new(RedisConnector::with_metadata_index(open_kv()).unwrap())
}

fn build_redis_sharded() -> EngineHandle {
    Arc::new(ShardedRedisConnector::with_metadata_index(open_kv_fleet(shards())).unwrap())
}

fn build_redis_sharded_scan() -> EngineHandle {
    Arc::new(ShardedRedisConnector::new(open_kv_fleet(shards())).unwrap())
}

fn build_postgres() -> EngineHandle {
    Arc::new(PostgresConnector::new(open_rel()).unwrap())
}

fn build_postgres_mi() -> EngineHandle {
    Arc::new(PostgresConnector::with_metadata_indices(open_rel()).unwrap())
}

fn build_disk() -> EngineHandle {
    Arc::new(DiskConnector::with_metadata_index(open_disk()).unwrap())
}

fn build_disk_sharded() -> EngineHandle {
    Arc::new(ShardedDiskConnector::with_metadata_index(open_disk_fleet(shards())).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds_and_reports_its_registered_name() {
        for v in VARIANTS {
            let handle = (v.build)();
            assert_eq!(handle.name(), v.name, "registry name drifted");
            assert_eq!(handle.record_count(), 0, "{}: fresh instance", v.name);
        }
    }

    #[test]
    fn registry_names_are_unique() {
        let mut names = names();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), VARIANTS.len());
    }
}
