//! Cross-connector conformance: every binding must expose identical GDPR
//! semantics, whatever its storage layout, shard topology, or transport.
//! Every scenario here runs against the Redis-shaped connector (baseline
//! and metadata-index variants), the PostgreSQL-shaped connector
//! (likewise), the hash-partitioned `redis-sharded` router — whose shard
//! count comes from `GDPR_SHARDS` (CI runs the suite at 1 and 8), so a
//! shard-count-dependent semantic can never land — and, since the network
//! front-end, against *every one of those again over loopback TCP*
//! (`gdpr-server` + `RemoteConnector`), so a transport-dependent semantic
//! cannot land either.

use crate::{PostgresConnector, RedisConnector, RemoteConnector, ShardedRedisConnector};
use gdpr_core::query::{GdprQuery, MetadataField, MetadataUpdate};
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::{EngineHandle, GdprConnector, GdprError};
use std::sync::Arc;
use std::time::Duration;

fn open_kv() -> Arc<kvstore::KvStore> {
    kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap()
}

/// `n` stores sharing one clock instance — the sharded engine requires a
/// single clock so timestamps and TTL deadlines are comparable fleet-wide.
fn open_kv_fleet(n: usize) -> Vec<Arc<kvstore::KvStore>> {
    let clock = clock::wall();
    (0..n)
        .map(|_| {
            kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), clock.clone()).unwrap()
        })
        .collect()
}

/// One fresh instance of every in-process connector variant — the list
/// itself lives in [`crate::registry`], so a new backend lands in this
/// suite by registering there.
fn engine_handles() -> Vec<EngineHandle> {
    crate::registry::engine_handles()
}

/// Wrap a fresh engine instance behind an in-process `gdpr-server` on an
/// ephemeral loopback port — the same engine variants, driven over real
/// sockets through the wire codec.
fn served(engine: EngineHandle) -> Box<dyn GdprConnector> {
    let config = gdpr_server::ServerConfig {
        workers: 2,
        queue_depth: 32,
        ..Default::default()
    };
    Box::new(RemoteConnector::serve_in_process_with(engine, 2, config).unwrap())
}

/// The full conformance fleet: every registry variant in-process, then
/// every one again over loopback TCP.
fn connectors() -> Vec<Box<dyn GdprConnector>> {
    let mut out: Vec<Box<dyn GdprConnector>> = engine_handles()
        .into_iter()
        .map(|conn| Box::new(conn) as Box<dyn GdprConnector>)
        .collect();
    out.extend(engine_handles().into_iter().map(served));
    out
}

fn record(key: &str, user: &str, purposes: &[&str], data: &str) -> PersonalRecord {
    PersonalRecord::new(
        key,
        data,
        Metadata::new(
            user,
            purposes.iter().map(|s| s.to_string()).collect(),
            Duration::from_secs(3600),
        ),
    )
}

fn seed(conn: &dyn GdprConnector) {
    seed_as(conn, &gdpr_core::tenant::TenantId::default());
}

/// The same five-record corpus, created by one tenant's controller —
/// multi-tenant scenarios seed every tenant with *identical* logical
/// keys, so any cross-tenant leakage doubles cardinalities or resolves
/// the wrong tenant's record and fails loudly.
fn seed_as(conn: &dyn GdprConnector, tenant: &gdpr_core::tenant::TenantId) {
    let controller = Session::controller().with_tenant(tenant.clone());
    let specs = [
        ("ph-1", "neo", &["ads", "2fa"][..], "111-111"),
        ("ph-2", "neo", &["2fa"][..], "222-222"),
        ("ph-3", "trinity", &["ads"][..], "333-333"),
        ("ph-4", "trinity", &["analytics"][..], "444-444"),
        ("ph-5", "morpheus", &["ads"][..], "555-555"),
    ];
    for (key, user, purposes, data) in specs {
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record(key, user, purposes, data)),
        )
        .unwrap();
    }
}

#[test]
fn create_then_duplicate_rejected() {
    for conn in connectors() {
        let controller = Session::controller();
        let r = record("dup-1", "neo", &["ads"], "x");
        assert_eq!(
            conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
                .unwrap(),
            GdprResponse::Created,
            "{}",
            conn.name()
        );
        assert!(matches!(
            conn.execute(&controller, &GdprQuery::CreateRecord(r)),
            Err(GdprError::AlreadyExists(_))
        ));
        assert_eq!(conn.record_count(), 1);
    }
}

#[test]
fn customer_reads_own_data_only() {
    for conn in connectors() {
        seed(conn.as_ref());
        let neo = Session::customer("neo");
        let resp = conn
            .execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
            .unwrap();
        let mut keys: Vec<_> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        assert_eq!(keys, vec!["ph-1", "ph-2"], "{}", conn.name());
        // Cross-user access denied statically.
        assert!(matches!(
            conn.execute(&neo, &GdprQuery::ReadDataByUser("trinity".into())),
            Err(GdprError::AccessDenied { .. })
        ));
        // Key-scoped access to someone else's record denied per-record.
        assert!(matches!(
            conn.execute(&neo, &GdprQuery::ReadMetadataByKey("ph-3".into())),
            Err(GdprError::AccessDenied { .. })
        ));
    }
}

#[test]
fn processor_reads_by_purpose_with_objections_respected() {
    for conn in connectors() {
        seed(conn.as_ref());
        let ads = Session::processor("ads");
        let resp = conn
            .execute(&ads, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap();
        let mut keys: Vec<_> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        assert_eq!(keys, vec!["ph-1", "ph-3", "ph-5"], "{}", conn.name());

        // neo objects to ads on ph-1 → it must drop out.
        let neo = Session::customer("neo");
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
        let resp = conn
            .execute(&ads, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap();
        let mut keys: Vec<_> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        assert_eq!(
            keys,
            vec!["ph-3", "ph-5"],
            "{}: objection must filter",
            conn.name()
        );

        // Purpose-scoped key read: ph-1 is no longer visible to 'ads'.
        assert!(matches!(
            conn.execute(&ads, &GdprQuery::ReadDataByKey("ph-1".into())),
            Err(GdprError::AccessDenied { .. })
        ));
        assert!(conn
            .execute(&ads, &GdprQuery::ReadDataByKey("ph-3".into()))
            .is_ok());
    }
}

#[test]
fn right_to_be_forgotten_erases_and_verifies() {
    for conn in connectors() {
        seed(conn.as_ref());
        let trinity = Session::customer("trinity");
        let resp = conn
            .execute(&trinity, &GdprQuery::DeleteByUser("trinity".into()))
            .unwrap();
        assert_eq!(resp, GdprResponse::Deleted(2), "{}", conn.name());
        assert_eq!(conn.record_count(), 3);

        let regulator = Session::regulator();
        assert_eq!(
            conn.execute(&regulator, &GdprQuery::VerifyDeletion("ph-3".into()))
                .unwrap(),
            GdprResponse::DeletionVerified(true)
        );
        assert_eq!(
            conn.execute(&regulator, &GdprQuery::VerifyDeletion("ph-1".into()))
                .unwrap(),
            GdprResponse::DeletionVerified(false)
        );
    }
}

#[test]
fn rectification_updates_data() {
    for conn in connectors() {
        seed(conn.as_ref());
        let neo = Session::customer("neo");
        conn.execute(
            &neo,
            &GdprQuery::UpdateDataByKey {
                key: "ph-1".into(),
                data: "999-999".into(),
            },
        )
        .unwrap();
        let resp = conn
            .execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
            .unwrap();
        let data: Vec<_> = resp.as_data().unwrap().to_vec();
        assert!(data.contains(&("ph-1".to_string(), "999-999".to_string())));
        // A customer cannot rectify someone else's record.
        assert!(matches!(
            conn.execute(
                &neo,
                &GdprQuery::UpdateDataByKey {
                    key: "ph-3".into(),
                    data: "hack".into()
                }
            ),
            Err(GdprError::AccessDenied { .. })
        ));
    }
}

#[test]
fn portability_includes_metadata() {
    for conn in connectors() {
        seed(conn.as_ref());
        let neo = Session::customer("neo");
        let resp = conn
            .execute(&neo, &GdprQuery::ReadMetadataByUser("neo".into()))
            .unwrap();
        let metadata = resp.as_metadata().unwrap();
        assert_eq!(metadata.len(), 2, "{}", conn.name());
        let ph1 = metadata.iter().find(|(k, _)| k == "ph-1").unwrap();
        assert_eq!(ph1.1.user, "neo");
        assert_eq!(ph1.1.purposes, vec!["ads", "2fa"]);
        assert_eq!(ph1.1.ttl, Some(Duration::from_secs(3600)));
        assert_eq!(ph1.1.source, "first-party");
    }
}

#[test]
fn purpose_completion_deletes_group() {
    for conn in connectors() {
        seed(conn.as_ref());
        let controller = Session::controller();
        let resp = conn
            .execute(&controller, &GdprQuery::DeleteByPurpose("ads".into()))
            .unwrap();
        assert_eq!(resp, GdprResponse::Deleted(3), "{}", conn.name());
        assert_eq!(conn.record_count(), 2);
    }
}

#[test]
fn controller_manages_sharing_metadata_by_user() {
    for conn in connectors() {
        seed(conn.as_ref());
        let controller = Session::controller();
        conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByUser {
                user: "neo".into(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
            },
        )
        .unwrap();
        let regulator = Session::regulator();
        let resp = conn
            .execute(
                &regulator,
                &GdprQuery::ReadMetadataBySharedWith("x-corp".into()),
            )
            .unwrap();
        assert_eq!(resp.as_metadata().unwrap().len(), 2, "{}", conn.name());
    }
}

#[test]
fn decision_opt_out_excludes_from_eligible_set() {
    for conn in connectors() {
        seed(conn.as_ref());
        let neo = Session::customer("neo");
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-2".into(),
                update: MetadataUpdate::Add(MetadataField::Decisions, Metadata::DEC_OPT_OUT.into()),
            },
        )
        .unwrap();
        let processor = Session::processor("2fa");
        let resp = conn
            .execute(&processor, &GdprQuery::ReadDataDecisionEligible)
            .unwrap();
        let keys: Vec<_> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert!(!keys.contains(&"ph-2".to_string()), "{}", conn.name());
        assert_eq!(keys.len(), 4);
    }
}

#[test]
fn regulator_gets_logs_but_never_data() {
    for conn in connectors() {
        seed(conn.as_ref());
        let neo = Session::customer("neo");
        conn.execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
            .unwrap();
        let regulator = Session::regulator();
        let resp = conn
            .execute(
                &regulator,
                &GdprQuery::GetSystemLogs {
                    from_ms: 0,
                    to_ms: u64::MAX,
                },
            )
            .unwrap();
        match resp {
            GdprResponse::Logs(lines) => {
                assert!(
                    lines.iter().any(|l| l.operation == "read-data-by-usr"),
                    "{}: audit trail must contain the customer read",
                    conn.name()
                );
                // Seed creates must be in the trail too.
                assert!(lines.iter().any(|l| l.operation == "create-record"));
            }
            other => panic!("expected logs, got {other:?}"),
        }
        assert!(matches!(
            conn.execute(&regulator, &GdprQuery::ReadDataByUser("neo".into())),
            Err(GdprError::AccessDenied { .. })
        ));
    }
}

#[test]
fn features_report_and_space_report() {
    for conn in connectors() {
        seed(conn.as_ref());
        let controller = Session::controller();
        let resp = conn
            .execute(&controller, &GdprQuery::GetSystemFeatures)
            .unwrap();
        assert!(matches!(resp, GdprResponse::Features(_)));
        let space = conn.space_report();
        assert!(space.personal_data_bytes > 0, "{}", conn.name());
        assert!(
            space.overhead_factor() > 1.0,
            "{}: metadata explosion means total > personal ({:?})",
            conn.name(),
            space
        );
    }
}

/// Pin the canonical READ-DATA-BY-PUR semantics for every backend:
/// a record is readable under a purpose iff the purpose was declared at
/// collection (G5.1b) AND the subject has not objected to it (G21) —
/// `purpose ∈ PUR ∧ purpose ∉ OBJ`. Merely declaring the purpose is not
/// enough once an objection lands, and an objection to a purpose the
/// record never declared changes nothing. The shared engine implements
/// this exactly once (`RecordPredicate::AllowsPurpose`), so no backend can
/// quietly diverge again.
#[test]
fn read_data_by_purpose_requires_declaration_and_no_objection() {
    for conn in connectors() {
        let controller = Session::controller();
        let mut declared = record("r-declared", "neo", &["ads"], "d1");
        let mut objected = record("r-objected", "neo", &["ads"], "d2");
        objected.metadata.objections.push("ads".into());
        // Objects to "ads" without ever declaring it: must stay invisible
        // to the ads processor, and its objection must not hide r-declared.
        let mut unrelated = record("r-unrelated", "neo", &["2fa"], "d3");
        unrelated.metadata.objections.push("ads".into());
        for r in [&mut declared, &mut objected, &mut unrelated] {
            conn.execute(&controller, &GdprQuery::CreateRecord(r.clone()))
                .unwrap();
        }

        let ads = Session::processor("ads");
        let resp = conn
            .execute(&ads, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap();
        let keys: Vec<_> = resp
            .as_data()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(
            keys,
            vec!["r-declared"],
            "{}: declared ∧ ¬objected is the canonical semantics",
            conn.name()
        );
    }
}

/// The engine's metadata index must stay consistent with the store across
/// the whole record lifecycle, including store-side TTL expiration (both
/// the lazy-on-access path and the active expiration cycle invalidate
/// index entries via the expiry listener).
#[test]
fn redis_index_invalidated_by_store_expiry() {
    let sim = clock::sim();
    let store = kvstore::KvStore::open_with_clock(
        kvstore::KvConfig {
            expiration: kvstore::ExpirationMode::Strict,
            ..Default::default()
        },
        sim.clone(),
    )
    .unwrap();
    let redis = RedisConnector::with_metadata_index(store).unwrap();
    let controller = Session::controller();
    let mut r = record("exp-1", "neo", &["ads"], "d");
    r.metadata.sharing.push("x-corp".into());
    r.metadata.objections.push("spam".into());
    r.metadata.ttl = Some(Duration::from_secs(10));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(r))
        .unwrap();

    let index = Arc::clone(redis.metadata_index().unwrap());
    assert_eq!(index.keys_by_user("neo"), vec!["exp-1"]);
    assert_eq!(index.deadline_of("exp-1"), Some(10_000));

    // Active cycle reaps the key; the listener must scrub all four
    // inverted indexes and the deadline set.
    sim.advance(Duration::from_secs(11));
    assert_eq!(redis.store().run_expiration_cycle().reaped, 1);
    assert!(
        index.fully_absent("exp-1"),
        "expiry must invalidate the index"
    );

    // Lazy path: a fresh expired key reaped on access is scrubbed too.
    let mut r2 = record("exp-2", "trinity", &["2fa"], "d");
    r2.metadata.ttl = Some(Duration::from_secs(5));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(r2))
        .unwrap();
    sim.advance(Duration::from_secs(6));
    assert!(matches!(
        redis.execute(
            &Session::customer("trinity"),
            &GdprQuery::ReadMetadataByKey("exp-2".into())
        ),
        Err(GdprError::NotFound(_))
    ));
    assert!(
        index.fully_absent("exp-2"),
        "lazy reap must invalidate the index"
    );
    assert!(index.is_empty());
}

/// A lazy expiration during a keyspace scan must not hide live records:
/// reaping swap-removes keys in the key index, so a scan that interleaves
/// GETs with cursor batches would move an unvisited tail key into an
/// already-visited slot and skip it. The scan collects the full cursor
/// walk before fetching.
#[test]
fn scan_survives_lazy_expiry_mid_walk() {
    let sim = clock::sim();
    let store =
        kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), sim.clone()).unwrap();
    let redis = RedisConnector::new(store);
    let controller = Session::controller();
    // First-inserted key expires; it sits in the first SCAN batch, and its
    // lazy reap relocates the last key of the keyspace into its slot.
    let mut doomed = record("doomed", "neo", &["ads"], "d");
    doomed.metadata.ttl = Some(Duration::from_secs(5));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(doomed))
        .unwrap();
    let live = 600; // > one SCAN batch (512), so the tail is beyond batch 1
    for i in 0..live {
        redis
            .execute(
                &controller,
                &GdprQuery::CreateRecord(record(&format!("k{i:04}"), "neo", &["ads"], "d")),
            )
            .unwrap();
    }
    sim.advance(Duration::from_secs(6));
    let resp = redis
        .execute(
            &Session::customer("neo"),
            &GdprQuery::ReadDataByUser("neo".into()),
        )
        .unwrap();
    assert_eq!(
        resp.cardinality(),
        live,
        "every live record must survive a scan that lazily reaps an expired key"
    );
}

/// Metadata rewrites must not erode the record's expiry deadline: the
/// store preserves the exact millisecond deadline across a rewrite, not a
/// seconds-truncated remaining TTL (which would also truncate a sub-second
/// remainder to an instant expiry).
#[test]
fn metadata_update_preserves_exact_ttl_deadline() {
    let sim = clock::sim();
    let store =
        kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), sim.clone()).unwrap();
    let redis = RedisConnector::new(Arc::clone(&store));
    let controller = Session::controller();
    let mut r = record("r1", "neo", &["ads"], "d");
    r.metadata.ttl = Some(Duration::from_secs(10));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(r))
        .unwrap();

    // Rewrite with 1.5s remaining: a seconds-granular TTL round-trip would
    // re-arm with 1s (or even 0s), killing the record early.
    sim.advance(Duration::from_millis(8_500));
    redis
        .execute(
            &Session::customer("neo"),
            &GdprQuery::UpdateMetadataByKey {
                key: "r1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
    assert_eq!(
        store.expiry_at(b"rec:r1").map(|t| t.as_millis()),
        Some(10_000),
        "rewrite must keep the original absolute deadline"
    );
    sim.advance(Duration::from_millis(1_400)); // t = 9.9s < 10s
    assert!(
        redis
            .execute(
                &Session::customer("neo"),
                &GdprQuery::ReadMetadataByKey("r1".into())
            )
            .is_ok(),
        "record must live out its full declared TTL"
    );
    sim.advance(Duration::from_millis(200)); // t = 10.1s
    assert!(matches!(
        redis.execute(
            &Session::customer("neo"),
            &GdprQuery::ReadMetadataByKey("r1".into())
        ),
        Err(GdprError::NotFound(_))
    ));
}

/// Index backfill over a pre-populated store must adopt the store's
/// *remaining* deadlines, not re-arm records with their full declared TTL
/// (which would retain personal data up to twice as long).
#[test]
fn index_backfill_adopts_remaining_deadlines() {
    let sim = clock::sim();
    let store =
        kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), sim.clone()).unwrap();
    {
        let plain = RedisConnector::new(Arc::clone(&store));
        let mut r = record("old-1", "neo", &["ads"], "d");
        r.metadata.ttl = Some(Duration::from_secs(10));
        plain
            .execute(&Session::controller(), &GdprQuery::CreateRecord(r))
            .unwrap();
    }
    sim.advance(Duration::from_secs(9));
    let indexed = RedisConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let index = Arc::clone(indexed.metadata_index().unwrap());
    assert_eq!(
        index.deadline_of("old-1"),
        Some(10_000),
        "backfill must keep the store's deadline, not now + declared TTL"
    );
    sim.advance(Duration::from_secs(2)); // t = 11s: past the true deadline
    assert_eq!(
        indexed
            .execute(&Session::controller(), &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(1),
        "DELETE-RECORD-BY-TTL must see the pre-existing record as due"
    );
    assert!(index.fully_absent("old-1"));
}

/// Indexed and scan-based Redis answer every predicate query identically.
#[test]
fn redis_index_and_scan_agree_on_all_predicates() {
    let scan_conn =
        RedisConnector::new(kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap());
    let index_conn = RedisConnector::with_metadata_index(
        kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
    )
    .unwrap();
    seed(&scan_conn);
    seed(&index_conn);
    let neo = Session::customer("neo");
    let controller = Session::controller();
    for conn in [&scan_conn, &index_conn] {
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
        conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByUser {
                user: "morpheus".into(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
            },
        )
        .unwrap();
    }

    let queries: Vec<(Session, GdprQuery)> = vec![
        (neo.clone(), GdprQuery::ReadDataByUser("neo".into())),
        (
            Session::processor("ads"),
            GdprQuery::ReadDataByPurpose("ads".into()),
        ),
        (
            Session::processor("x"),
            GdprQuery::ReadDataNotObjecting("ads".into()),
        ),
        (Session::processor("x"), GdprQuery::ReadDataDecisionEligible),
        (
            Session::regulator(),
            GdprQuery::ReadMetadataByUser("neo".into()),
        ),
        (
            Session::regulator(),
            GdprQuery::ReadMetadataBySharedWith("x-corp".into()),
        ),
    ];
    for (session, query) in queries {
        let mut scan = scan_conn.execute(&session, &query).unwrap();
        let mut indexed = index_conn.execute(&session, &query).unwrap();
        for resp in [&mut scan, &mut indexed] {
            if let GdprResponse::Data(pairs) = resp {
                pairs.sort();
            }
            if let GdprResponse::Metadata(pairs) = resp {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        assert_eq!(scan, indexed, "divergence on {query:?}");
    }
}

/// Full index coverage: every `RecordPredicate` variant — including the
/// two negative predicates — is answerable by the engine's metadata index
/// (`keys_for` returns `Some`), on the unsharded indexed variant and on
/// every shard of the sharded one, and the index-resolved negative
/// predicates return exactly what the scan-based connector returns.
#[test]
fn negative_predicates_resolve_via_index_on_every_indexed_variant() {
    use gdpr_core::RecordPredicate;
    let shards = gdpr_core::shard_count_from_env();
    let scan_conn = RedisConnector::new(open_kv());
    let index_conn = RedisConnector::with_metadata_index(open_kv()).unwrap();
    let sharded_conn = ShardedRedisConnector::with_metadata_index(open_kv_fleet(shards)).unwrap();
    let conns: [&dyn GdprConnector; 3] = [&scan_conn, &index_conn, &sharded_conn];
    let neo = Session::customer("neo");
    for conn in conns {
        seed(conn);
        // An objection and a G22 opt-out so the negative predicates have
        // something to subtract.
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-2".into(),
                update: MetadataUpdate::Add(MetadataField::Decisions, Metadata::DEC_OPT_OUT.into()),
            },
        )
        .unwrap();
    }

    let all_predicates = [
        RecordPredicate::User("neo".into()),
        RecordPredicate::DeclaredPurpose("ads".into()),
        RecordPredicate::AllowsPurpose("ads".into()),
        RecordPredicate::NotObjecting("ads".into()),
        RecordPredicate::DecisionEligible,
        RecordPredicate::SharedWith("x-corp".into()),
    ];
    for pred in &all_predicates {
        assert!(
            index_conn
                .metadata_index()
                .unwrap()
                .keys_for(pred)
                .is_some(),
            "redis-mi: {pred:?} must be index-answerable"
        );
        for shard in 0..shards {
            assert!(
                sharded_conn
                    .metadata_index(shard)
                    .unwrap()
                    .keys_for(pred)
                    .is_some(),
                "redis-sharded shard {shard}: {pred:?} must be index-answerable"
            );
        }
    }

    // The index-resolved negatives return exactly the scan results.
    for query in [
        GdprQuery::ReadDataNotObjecting("ads".into()),
        GdprQuery::ReadDataDecisionEligible,
    ] {
        let session = Session::processor("x");
        let mut results: Vec<Vec<(String, String)>> = conns
            .iter()
            .map(|conn| {
                let mut pairs = conn
                    .execute(&session, &query)
                    .unwrap()
                    .as_data()
                    .unwrap()
                    .to_vec();
                pairs.sort();
                pairs
            })
            .collect();
        let scan = results.remove(0);
        assert!(!scan.is_empty(), "probe must match something");
        for (variant, indexed) in results.into_iter().enumerate() {
            assert_eq!(indexed, scan, "variant {variant} diverges on {query:?}");
        }
    }
}

/// Expiry deadlines are inclusive — `deadline == now` is already expired
/// — and every purge path agrees at the boundary instant: the metadata
/// index's deadline set, the key-value store's strict reaper behind both
/// the indexed and the scan-based connector, and the relational sweep
/// daemon delete the same set one millisecond apart.
#[test]
fn expiry_boundary_is_inclusive_on_every_purge_path() {
    let controller = Session::controller();
    let sim = clock::sim();
    let open_strict = || {
        kvstore::KvStore::open_with_clock(
            kvstore::KvConfig {
                expiration: kvstore::ExpirationMode::Strict,
                ..Default::default()
            },
            sim.clone(),
        )
        .unwrap()
    };
    let indexed = RedisConnector::with_metadata_index(open_strict()).unwrap();
    let scan = RedisConnector::new(open_strict());
    let db =
        relstore::Database::open_with_clock(relstore::RelConfig::default(), sim.clone()).unwrap();
    let pg = PostgresConnector::new(db).unwrap();
    let conns: [&dyn GdprConnector; 3] = [&indexed, &scan, &pg];
    for conn in conns {
        let mut r = record("b-1", "neo", &["ads"], "d");
        r.metadata.ttl = Some(Duration::from_secs(10));
        conn.execute(&controller, &GdprQuery::CreateRecord(r))
            .unwrap();
    }

    // One millisecond before the deadline (t = 9.999s on the sim clock):
    // nothing is due anywhere.
    sim.advance(Duration::from_millis(9_999));
    assert!(indexed
        .metadata_index()
        .unwrap()
        .expired_keys(9_999)
        .is_empty());
    for conn in conns {
        assert_eq!(
            conn.execute(&controller, &GdprQuery::DeleteExpired)
                .unwrap(),
            GdprResponse::Deleted(0),
            "{}: not yet due at deadline − 1ms",
            conn.name()
        );
    }

    // At exactly the deadline (t = 10.000s): every path reaps the record.
    sim.advance(Duration::from_millis(1));
    assert_eq!(
        indexed.metadata_index().unwrap().expired_keys(10_000),
        vec!["b-1"],
        "the index treats deadline == now as expired"
    );
    for conn in conns {
        assert_eq!(
            conn.execute(&controller, &GdprQuery::DeleteExpired)
                .unwrap(),
            GdprResponse::Deleted(1),
            "{}: due at the boundary instant",
            conn.name()
        );
        assert_eq!(
            conn.execute(
                &Session::regulator(),
                &GdprQuery::VerifyDeletion("b-1".into())
            )
            .unwrap(),
            GdprResponse::DeletionVerified(true)
        );
    }
    assert!(indexed.metadata_index().unwrap().is_empty());
}

/// Regression (write-path consistency): DELETE-RECORD-BY-TTL on an
/// indexed engine must not trust the index alone. A record written behind
/// the engine (the store saw it, the index never did) and a record whose
/// index entry was wiped by `clear()` both carry store-side deadlines —
/// the purge unions the index's due set with the store's own purge, so
/// neither outlives its TTL.
#[test]
fn purge_reaps_store_side_deadlines_the_index_never_learned() {
    let sim = clock::sim();
    let store = kvstore::KvStore::open_with_clock(
        kvstore::KvConfig {
            expiration: kvstore::ExpirationMode::Strict,
            ..Default::default()
        },
        sim.clone(),
    )
    .unwrap();
    let redis = RedisConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let controller = Session::controller();

    // One record through the engine (indexed), one smuggled in behind it.
    let mut known = record("known", "neo", &["ads"], "d");
    known.metadata.ttl = Some(Duration::from_secs(5));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(known))
        .unwrap();
    let mut behind = record("behind", "trinity", &["ads"], "d");
    behind.metadata.ttl = Some(Duration::from_secs(5));
    store
        .set_ex(
            b"rec:behind",
            gdpr_core::wire::serialize(&behind).as_bytes(),
            Duration::from_secs(5),
        )
        .unwrap();
    let index = Arc::clone(redis.metadata_index().unwrap());
    assert!(index.fully_absent("behind"), "the index never learned it");

    sim.advance(Duration::from_secs(6));
    assert_eq!(
        redis
            .execute(&controller, &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(2),
        "the purge must union index dues with store-side dues"
    );
    for key in ["known", "behind"] {
        assert_eq!(
            redis
                .execute(
                    &Session::regulator(),
                    &GdprQuery::VerifyDeletion(key.into())
                )
                .unwrap(),
            GdprResponse::DeletionVerified(true),
            "{key} must be gone"
        );
    }

    // Same hole via clear(): the store still tracks the deadline after the
    // index forgets everything.
    let mut r = record("post-clear", "neo", &["ads"], "d");
    r.metadata.ttl = Some(Duration::from_secs(5));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(r))
        .unwrap();
    index.clear();
    sim.advance(Duration::from_secs(6));
    assert_eq!(
        redis
            .execute(&controller, &GdprQuery::DeleteExpired)
            .unwrap(),
        GdprResponse::Deleted(1),
        "a cleared index must not shield store-side deadlines"
    );
    assert_eq!(redis.record_count(), 0);
}

/// Regression (write-path consistency): a group metadata update that is
/// invalid for *any* matching record mutates *nothing* — on every
/// connector variant, every shard topology, and over the wire. The poison
/// record's only purpose is the one being removed (G5.1b forbids emptying
/// the purpose list), so validation fails while other matches would
/// succeed; before validate-all-then-commit, matches processed earlier
/// (or living on earlier shards) were rewritten and reindexed although
/// the caller saw `Err`.
#[test]
fn group_update_never_partially_commits() {
    for conn in connectors() {
        let controller = Session::controller();
        // Several healthy matches so sharded variants hold matches on more
        // than one shard, plus one poison record.
        for i in 0..6 {
            conn.execute(
                &controller,
                &GdprQuery::CreateRecord(record(&format!("gh-{i}"), "neo", &["ads", "2fa"], "d")),
            )
            .unwrap();
        }
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(record("gh-poison", "neo", &["ads"], "d")),
        )
        .unwrap();

        let result = conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByPurpose {
                purpose: "ads".into(),
                update: MetadataUpdate::Remove(MetadataField::Purposes, "ads".into()),
            },
        );
        assert!(
            matches!(result, Err(GdprError::InvalidRecord(_))),
            "{}: removing the poison record's last purpose must fail the group",
            conn.name()
        );
        // No partial commit: all seven records still declare "ads".
        let resp = conn
            .execute(&controller, &GdprQuery::DeleteByPurpose("ads".into()))
            .unwrap();
        assert_eq!(
            resp,
            GdprResponse::Deleted(7),
            "{}: every record must still declare the purpose after the failed update",
            conn.name()
        );
    }
}

#[test]
fn metadata_index_variant_reports_more_space() {
    let pg =
        PostgresConnector::new(relstore::Database::open(relstore::RelConfig::default()).unwrap())
            .unwrap();
    let pg_mi = PostgresConnector::with_metadata_indices(
        relstore::Database::open(relstore::RelConfig::default()).unwrap(),
    )
    .unwrap();
    seed(&pg);
    seed(&pg_mi);
    let base = pg.space_report();
    let mi = pg_mi.space_report();
    assert_eq!(base.personal_data_bytes, mi.personal_data_bytes);
    assert!(
        mi.total_bytes > base.total_bytes,
        "metadata indices must cost space: {mi:?} vs {base:?}"
    );
}

#[test]
fn expired_records_vanish() {
    // Redis: lazy-on-access hides expired keys immediately.
    let sim = clock::sim();
    let store =
        kvstore::KvStore::open_with_clock(kvstore::KvConfig::default(), sim.clone()).unwrap();
    let redis = RedisConnector::new(store);
    let controller = Session::controller();
    let mut r = record("exp-1", "neo", &["ads"], "d");
    r.metadata.ttl = Some(Duration::from_secs(10));
    redis
        .execute(&controller, &GdprQuery::CreateRecord(r))
        .unwrap();
    sim.advance(Duration::from_secs(11));
    assert!(matches!(
        redis.execute(
            &Session::customer("neo"),
            &GdprQuery::ReadMetadataByKey("exp-1".into())
        ),
        Err(GdprError::NotFound(_))
    ));

    // Postgres: the sweep daemon removes them.
    let sim = clock::sim();
    let db =
        relstore::Database::open_with_clock(relstore::RelConfig::default(), sim.clone()).unwrap();
    let pg = PostgresConnector::new(db).unwrap();
    let mut r = record("exp-1", "neo", &["ads"], "d");
    r.metadata.ttl = Some(Duration::from_secs(10));
    pg.execute(&controller, &GdprQuery::CreateRecord(r))
        .unwrap();
    sim.advance(Duration::from_secs(11));
    let daemon = pg.ttl_daemon();
    assert_eq!(daemon.sweep_once().unwrap(), 1);
    assert_eq!(pg.record_count(), 0);
    assert_eq!(
        pg.execute(
            &Session::regulator(),
            &GdprQuery::VerifyDeletion("exp-1".into())
        )
        .unwrap(),
        GdprResponse::DeletionVerified(true)
    );
}

#[test]
fn delete_expired_query_purges() {
    // Redis strict mode reaps in one cycle via DELETE-RECORD-BY-TTL.
    let sim = clock::sim();
    let store = kvstore::KvStore::open_with_clock(
        kvstore::KvConfig {
            expiration: kvstore::ExpirationMode::Strict,
            ..Default::default()
        },
        sim.clone(),
    )
    .unwrap();
    let redis = RedisConnector::new(store);
    let controller = Session::controller();
    for i in 0..10 {
        let mut r = record(&format!("e{i}"), "u", &["ads"], "d");
        r.metadata.ttl = Some(Duration::from_secs(5));
        redis
            .execute(&controller, &GdprQuery::CreateRecord(r))
            .unwrap();
    }
    sim.advance(Duration::from_secs(6));
    let resp = redis
        .execute(&controller, &GdprQuery::DeleteExpired)
        .unwrap();
    assert_eq!(resp, GdprResponse::Deleted(10));

    // Postgres equivalent.
    let sim = clock::sim();
    let db =
        relstore::Database::open_with_clock(relstore::RelConfig::default(), sim.clone()).unwrap();
    let pg = PostgresConnector::new(db).unwrap();
    for i in 0..10 {
        let mut r = record(&format!("e{i}"), "u", &["ads"], "d");
        r.metadata.ttl = Some(Duration::from_secs(5));
        pg.execute(&controller, &GdprQuery::CreateRecord(r))
            .unwrap();
    }
    sim.advance(Duration::from_secs(6));
    let resp = pg.execute(&controller, &GdprQuery::DeleteExpired).unwrap();
    assert_eq!(resp, GdprResponse::Deleted(10));
}

/// The sharded router answers every predicate query identically whether
/// its shards resolve by per-shard metadata index or by per-shard scan,
/// and identically to the unsharded connector — index/scan equivalence
/// holds *per shard* and survives the merge.
#[test]
fn sharded_index_and_scan_agree_on_all_predicates() {
    let scan_conn = ShardedRedisConnector::new(open_kv_fleet(3)).unwrap();
    let index_conn = ShardedRedisConnector::with_metadata_index(open_kv_fleet(3)).unwrap();
    let unsharded = RedisConnector::new(open_kv());
    let conns: [&dyn GdprConnector; 3] = [&scan_conn, &index_conn, &unsharded];
    for conn in conns {
        seed(conn);
    }
    let neo = Session::customer("neo");
    let controller = Session::controller();
    for conn in conns {
        conn.execute(
            &neo,
            &GdprQuery::UpdateMetadataByKey {
                key: "ph-1".into(),
                update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
            },
        )
        .unwrap();
        conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByUser {
                user: "morpheus".into(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
            },
        )
        .unwrap();
    }

    let queries: Vec<(Session, GdprQuery)> = vec![
        (neo, GdprQuery::ReadDataByUser("neo".into())),
        (
            Session::processor("ads"),
            GdprQuery::ReadDataByPurpose("ads".into()),
        ),
        (
            Session::processor("x"),
            GdprQuery::ReadDataNotObjecting("ads".into()),
        ),
        (Session::processor("x"), GdprQuery::ReadDataDecisionEligible),
        (
            Session::regulator(),
            GdprQuery::ReadMetadataByUser("neo".into()),
        ),
        (
            Session::regulator(),
            GdprQuery::ReadMetadataBySharedWith("x-corp".into()),
        ),
    ];
    for (session, query) in queries {
        let mut responses: Vec<GdprResponse> = conns
            .iter()
            .map(|conn| conn.execute(&session, &query).unwrap())
            .collect();
        for resp in &mut responses {
            if let GdprResponse::Data(pairs) = resp {
                pairs.sort();
            }
            if let GdprResponse::Metadata(pairs) = resp {
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        assert_eq!(responses[0], responses[1], "scan vs indexed on {query:?}");
        assert_eq!(
            responses[1], responses[2],
            "sharded vs unsharded on {query:?}"
        );
    }
}

/// TTL expiry under sharding is shard-local: a lazy or active reap on one
/// shard scrubs exactly that shard's inverted indexes and deadline set —
/// it never strands a dead key there, and never touches (or strands keys
/// in) any other shard's index.
#[test]
fn sharded_ttl_expiry_scrubs_only_the_owning_shard() {
    let sim = clock::sim();
    let shards = 3;
    let stores: Vec<_> = (0..shards)
        .map(|_| {
            kvstore::KvStore::open_with_clock(
                kvstore::KvConfig {
                    expiration: kvstore::ExpirationMode::Strict,
                    ..Default::default()
                },
                sim.clone(),
            )
            .unwrap()
        })
        .collect();
    let conn = ShardedRedisConnector::with_metadata_index(stores).unwrap();
    let controller = Session::controller();
    // Enough keys that every shard owns some; all expire at t=10s.
    let mut keys_of_shard: Vec<Vec<String>> = vec![Vec::new(); shards];
    for i in 0..24 {
        let key = format!("ttl-{i}");
        let mut r = record(&key, "neo", &["ads"], "d");
        r.metadata.ttl = Some(Duration::from_secs(10));
        conn.execute(&controller, &GdprQuery::CreateRecord(r))
            .unwrap();
        keys_of_shard[gdpr_core::shard_of(&key, shards)].push(key);
    }
    for (i, keys) in keys_of_shard.iter().enumerate() {
        assert!(!keys.is_empty(), "shard {i} owns no keys; widen the corpus");
        assert_eq!(conn.metadata_index(i).unwrap().len(), keys.len());
    }

    sim.advance(Duration::from_secs(11));
    // Active cycle on shard 0 ONLY.
    let reaped = conn.store(0).run_expiration_cycle().reaped;
    assert_eq!(reaped, keys_of_shard[0].len());
    for key in &keys_of_shard[0] {
        assert!(
            conn.metadata_index(0).unwrap().fully_absent(key),
            "{key} must leave shard 0's index"
        );
        for other in 1..shards {
            assert!(
                conn.metadata_index(other).unwrap().fully_absent(key),
                "{key} must never appear in shard {other}'s index"
            );
        }
    }
    // Other shards' indexes are untouched: their (expired but unreaped)
    // keys are still indexed until their own shard reaps them.
    for (other, keys) in keys_of_shard.iter().enumerate().skip(1) {
        assert_eq!(
            conn.metadata_index(other).unwrap().len(),
            keys.len(),
            "shard {other}'s index must not be scrubbed by shard 0's cycle"
        );
    }

    // Lazy path on shard 1: a point read reaps on access and scrubs only
    // shard 1's index.
    let probe = &keys_of_shard[1][0];
    assert!(matches!(
        conn.execute(
            &Session::customer("neo"),
            &GdprQuery::ReadMetadataByKey(probe.clone())
        ),
        Err(GdprError::NotFound(_))
    ));
    assert!(conn.metadata_index(1).unwrap().fully_absent(probe));

    // DELETE-RECORD-BY-TTL drains every shard's deadline set; all indexes
    // end empty with nothing stranded anywhere.
    conn.execute(&controller, &GdprQuery::DeleteExpired)
        .unwrap();
    for i in 0..shards {
        assert!(
            conn.metadata_index(i).unwrap().is_empty(),
            "shard {i}'s index must end empty"
        );
    }
    assert_eq!(conn.record_count(), 0);
}

/// The sharded router keeps one audit stream: a fanned-out query is one
/// event, point ops audit once, and shards contribute no fragments.
#[test]
fn sharded_audit_stream_is_unified_and_ordered() {
    let conn = ShardedRedisConnector::with_metadata_index(open_kv_fleet(4)).unwrap();
    seed(&conn); // 5 creates
    let neo = Session::customer("neo");
    conn.execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
        .unwrap(); // 1 fan-out
    let _ = conn.execute(&neo, &GdprQuery::ReadDataByUser("trinity".into())); // 1 denied
    assert_eq!(conn.audit().len(), 7);
    let lines = conn.audit().lines_between(0, u64::MAX);
    assert_eq!(lines.len(), 7);
    // Execution order is preserved: creates first, then the reads.
    assert!(lines[..5].iter().all(|l| l.operation == "create-record"));
    assert_eq!(lines[5].operation, "read-data-by-usr");
    assert!(lines[6].detail.contains("access denied"));
    // GET-SYSTEM-LOGS serves the same unified stream.
    let resp = conn
        .execute(
            &Session::regulator(),
            &GdprQuery::GetSystemLogs {
                from_ms: 0,
                to_ms: u64::MAX,
            },
        )
        .unwrap();
    assert_eq!(resp.cardinality(), 7);
}

/// The acceptance bar for the network layer: serve the *same* engine
/// instance that stays reachable in-process, mirror a workload through
/// both paths, and require every response — successes, GDPR errors, audit
/// logs, features, space, counts — to compare equal. Any codec lossiness
/// or transport-dependent semantic fails here, for every variant.
#[test]
fn remote_view_is_byte_equivalent_to_in_process() {
    for local in engine_handles() {
        let remote = RemoteConnector::serve_in_process(Arc::clone(&local) as EngineHandle, 2)
            .expect("serve");
        assert_eq!(remote.name(), local.name());
        seed(&local);

        let neo = Session::customer("neo");
        let queries: Vec<(Session, GdprQuery)> = vec![
            (neo.clone(), GdprQuery::ReadDataByUser("neo".into())),
            (neo.clone(), GdprQuery::ReadMetadataByUser("neo".into())),
            (
                Session::processor("ads"),
                GdprQuery::ReadDataByPurpose("ads".into()),
            ),
            (
                Session::regulator(),
                GdprQuery::VerifyDeletion("ph-1".into()),
            ),
            (Session::controller(), GdprQuery::GetSystemFeatures),
            // Denied: errors must roundtrip exactly too.
            (neo.clone(), GdprQuery::ReadDataByUser("trinity".into())),
        ];
        for (session, query) in &queries {
            // Responses normalize result-set order (the engine returns
            // store order, which both paths share) — compare raw.
            let direct = local.execute(session, query);
            let over_wire = remote.execute(session, query);
            assert_eq!(
                over_wire,
                direct,
                "{}: remote diverges on {query:?}",
                local.name()
            );
        }

        // Audit-log payloads roundtrip exactly. The trail grows with every
        // audited query (including GET-SYSTEM-LOGS itself), so the remote
        // read — issued second — must be the local lines plus exactly the
        // local read's own audit event.
        let logs_query = GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        };
        let local_logs = match local.execute(&Session::regulator(), &logs_query).unwrap() {
            GdprResponse::Logs(lines) => lines,
            other => panic!("expected logs, got {other:?}"),
        };
        let remote_logs = match remote.execute(&Session::regulator(), &logs_query).unwrap() {
            GdprResponse::Logs(lines) => lines,
            other => panic!("expected logs, got {other:?}"),
        };
        assert_eq!(remote_logs.len(), local_logs.len() + 1, "{}", local.name());
        assert_eq!(&remote_logs[..local_logs.len()], &local_logs[..]);
        assert_eq!(remote_logs.last().unwrap().operation, "get-system-logs");

        // A write through the wire lands in the one shared engine.
        remote
            .execute(&neo, &GdprQuery::DeleteByKey("ph-1".into()))
            .unwrap();
        assert!(matches!(
            local.execute(&neo, &GdprQuery::ReadMetadataByKey("ph-1".into())),
            Err(GdprError::NotFound(_))
        ));
        assert_eq!(remote.record_count(), local.record_count());
        assert_eq!(remote.space_report(), local.space_report());
        assert_eq!(remote.features(), local.features());
    }
}

/// The same acceptance bar for the *encrypted* transport, pinned
/// explicitly (not via `GDPR_ENCRYPT`) so it runs in every suite
/// invocation: one engine instance reachable in-process, over plaintext
/// TCP, and over the encrypted transport — all three views must agree on
/// every response, and the cipher boundary must reject a mismatched key.
#[test]
fn encrypted_transport_is_byte_equivalent_to_plaintext_and_in_process() {
    let local: EngineHandle = Arc::new(RedisConnector::with_metadata_index(open_kv()).unwrap());
    let plain_config = gdpr_server::ServerConfig {
        workers: 2,
        queue_depth: 32,
        encrypt: None,
        ..Default::default()
    };
    let enc_config = gdpr_server::ServerConfig {
        encrypt: Some("conformance-psk".to_string()),
        ..plain_config.clone()
    };
    let plain =
        RemoteConnector::serve_in_process_with(Arc::clone(&local) as EngineHandle, 2, plain_config)
            .unwrap();
    let encrypted =
        RemoteConnector::serve_in_process_with(Arc::clone(&local) as EngineHandle, 2, enc_config)
            .unwrap();
    assert!(encrypted.clients().iter().all(|c| c.is_encrypted()));
    assert!(plain.clients().iter().all(|c| !c.is_encrypted()));
    seed(&local);

    let neo = Session::customer("neo");
    let queries: Vec<(Session, GdprQuery)> = vec![
        (neo.clone(), GdprQuery::ReadDataByUser("neo".into())),
        (neo.clone(), GdprQuery::ReadMetadataByUser("neo".into())),
        (
            Session::processor("ads"),
            GdprQuery::ReadDataByPurpose("ads".into()),
        ),
        (Session::controller(), GdprQuery::GetSystemFeatures),
        // Errors must cross the cipher boundary exactly too.
        (neo.clone(), GdprQuery::ReadDataByUser("trinity".into())),
    ];
    for (session, query) in &queries {
        let direct = local.execute(session, query);
        let over_plain = plain.execute(session, query);
        let over_cipher = encrypted.execute(session, query);
        assert_eq!(over_plain, direct, "plaintext diverges on {query:?}");
        assert_eq!(over_cipher, direct, "encrypted diverges on {query:?}");
    }
    // Pipelined batches cross sealed too.
    let batch: Vec<(Session, GdprQuery)> = (0..20)
        .map(|_| (neo.clone(), GdprQuery::ReadDataByUser("neo".into())))
        .collect();
    let plain_batch = plain.execute_batch(batch.clone());
    let cipher_batch = encrypted.execute_batch(batch);
    assert_eq!(cipher_batch, plain_batch);
    assert_eq!(encrypted.record_count(), local.record_count());
    assert_eq!(encrypted.space_report(), local.space_report());
    assert_eq!(encrypted.features(), local.features());

    let enc_addr = encrypted.server().unwrap().local_addr().to_string();
    let stats = encrypted.server().unwrap().stats();
    assert_eq!(
        stats
            .handshakes_completed
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    // Wrong pre-shared key: the handshake completes (randoms are
    // unauthenticated) but the first sealed op fails on both sides.
    let wrong = crate::GdprClient::connect_encrypted(&enc_addr, Some("not-the-psk")).unwrap();
    assert!(wrong.ping(b"x").is_err());
    // Plaintext client against the encrypted endpoint: rejected, and
    // reported as a handshake failure — not a protocol error.
    let downgrade = crate::GdprClient::connect_plain(&enc_addr).unwrap();
    assert!(downgrade.ping(b"x").is_err());
    // Encrypted client against the plaintext endpoint: loud refusal.
    let plain_addr = plain.server().unwrap().local_addr().to_string();
    let err = crate::GdprClient::connect_encrypted(&plain_addr, None)
        .err()
        .expect("handshake against a plaintext server must fail");
    assert!(
        err.to_string().contains("downgrade"),
        "downgrade rejection must be loud, got: {err}"
    );
}

// ---- multi-tenant isolation ----

/// Drive two tenants holding *identical* logical corpora through one
/// connector and require that no predicate read, erasure, purge, audit
/// query, or metrics report ever crosses the tenant boundary. Tenant
/// names are parameters so callers sharing one engine (the encrypted /
/// plaintext pair) can use disjoint tenants per transport.
fn assert_tenant_isolation(conn: &dyn GdprConnector, acme_name: &str, zeta_name: &str) {
    use gdpr_core::tenant::TenantId;
    let acme = TenantId::new(acme_name).unwrap();
    let zeta = TenantId::new(zeta_name).unwrap();
    let name = conn.name().to_string();
    seed_as(conn, &acme);
    seed_as(conn, &zeta);

    // Predicate reads resolve only the caller's tenant: both tenants hold
    // the same keys, so leakage doubles the cardinality.
    let neo_acme = Session::customer("neo").with_tenant(acme.clone());
    let resp = conn
        .execute(&neo_acme, &GdprQuery::ReadDataByUser("neo".into()))
        .unwrap();
    let mut keys: Vec<_> = resp
        .as_data()
        .unwrap()
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    keys.sort();
    assert_eq!(keys, vec!["ph-1", "ph-2"], "{name}: predicate read leaked");
    let ads_acme = Session::processor("ads").with_tenant(acme.clone());
    assert_eq!(
        conn.execute(&ads_acme, &GdprQuery::ReadDataByPurpose("ads".into()))
            .unwrap()
            .cardinality(),
        3,
        "{name}: purpose read crossed the tenant boundary"
    );

    // Erasure in one tenant leaves the other's record untouched.
    conn.execute(&neo_acme, &GdprQuery::DeleteByKey("ph-1".into()))
        .unwrap();
    assert!(
        matches!(
            conn.execute(&neo_acme, &GdprQuery::ReadMetadataByKey("ph-1".into())),
            Err(GdprError::NotFound(_))
        ),
        "{name}: erased record still visible in its own tenant"
    );
    let neo_zeta = Session::customer("neo").with_tenant(zeta.clone());
    conn.execute(&neo_zeta, &GdprQuery::ReadMetadataByKey("ph-1".into()))
        .unwrap_or_else(|e| panic!("{name}: erasure crossed into the other tenant: {e}"));

    // User-scoped purge stays inside the tenant.
    let controller_acme = Session::controller().with_tenant(acme.clone());
    assert_eq!(
        conn.execute(
            &controller_acme,
            &GdprQuery::DeleteByUser("morpheus".into())
        )
        .unwrap(),
        GdprResponse::Deleted(1),
        "{name}"
    );
    let ads_zeta = Session::processor("ads").with_tenant(zeta.clone());
    conn.execute(&ads_zeta, &GdprQuery::ReadDataByKey("ph-5".into()))
        .unwrap_or_else(|e| panic!("{name}: purge crossed into the other tenant: {e}"));
    assert!(matches!(
        conn.execute(&ads_acme, &GdprQuery::ReadDataByKey("ph-5".into())),
        Err(GdprError::NotFound(_))
    ));

    // Deletion verification answers for the caller's tenant only: ph-5 is
    // erased in acme but alive in zeta.
    let regulator_acme = Session::regulator().with_tenant(acme.clone());
    let regulator_zeta = Session::regulator().with_tenant(zeta.clone());
    assert_eq!(
        conn.execute(&regulator_acme, &GdprQuery::VerifyDeletion("ph-5".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(true),
        "{name}"
    );
    assert_eq!(
        conn.execute(&regulator_zeta, &GdprQuery::VerifyDeletion("ph-5".into()))
            .unwrap(),
        GdprResponse::DeletionVerified(false),
        "{name}"
    );

    // One zeta-only operation the acme trail must never show.
    conn.execute(
        &regulator_zeta,
        &GdprQuery::ReadMetadataByUser("trinity".into()),
    )
    .unwrap();

    // GET-SYSTEM-LOGS returns only the caller's trail. Acme ran exactly
    // 12 audited ops (5 creates, 2 reads, 1 erasure + failed re-read,
    // 1 purge + failed read, 1 verification); zeta ran 9 (5 creates,
    // 2 reads, 1 verification, 1 metadata read). A trail query audits
    // itself *after* dispatch, so neither count includes its own query.
    let logs = |resp: gdpr_core::error::GdprResult<GdprResponse>| match resp.unwrap() {
        GdprResponse::Logs(lines) => lines,
        other => panic!("expected logs, got {other:?}"),
    };
    let acme_logs = logs(conn.execute(
        &regulator_acme,
        &GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        },
    ));
    assert_eq!(acme_logs.len(), 12, "{name}: acme trail wrong size");
    assert!(
        acme_logs
            .iter()
            .all(|l| l.operation != "read-metadata-by-usr"),
        "{name}: zeta's audit lines leaked into acme's trail"
    );
    let zeta_logs = logs(conn.execute(
        &regulator_zeta,
        &GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        },
    ));
    assert_eq!(zeta_logs.len(), 9, "{name}: zeta trail wrong size");
    assert_eq!(
        zeta_logs.last().unwrap().operation,
        "read-metadata-by-usr",
        "{name}"
    );

    // Per-tenant metrics: each tenant's table counts its own ops only.
    let acme_ops = conn
        .op_telemetry_for(&acme)
        .unwrap_or_else(|| panic!("{name}: no telemetry for acme"));
    let zeta_ops = conn
        .op_telemetry_for(&zeta)
        .unwrap_or_else(|| panic!("{name}: no telemetry for zeta"));
    assert_eq!(acme_ops.get("create-record").map(|o| o.total()), Some(5));
    assert_eq!(zeta_ops.get("create-record").map(|o| o.total()), Some(5));
    assert_eq!(
        acme_ops.get("delete-record-by-usr").map(|o| o.total()),
        Some(1),
        "{name}"
    );
    assert!(
        zeta_ops
            .get("delete-record-by-usr")
            .is_none_or(|o| o.total() == 0),
        "{name}: acme's purge counted in zeta's metrics"
    );
}

/// The tenant-isolation invariant across the whole fleet: every engine
/// variant in-process and again over loopback TCP, at whatever shard
/// count `GDPR_SHARDS` selects (CI pins 1 and 8).
#[test]
fn tenants_are_fully_isolated_on_every_connector() {
    for conn in connectors() {
        assert_tenant_isolation(conn.as_ref(), "acme", "zeta");
    }
}

/// The same invariant over the encrypted transport, sharing one engine
/// with a plaintext endpoint: isolation must hold per transport (disjoint
/// tenant pairs), and the sealed channel must carry the tenant header
/// as faithfully as plaintext does.
#[test]
fn tenants_are_fully_isolated_over_the_encrypted_transport() {
    let local: EngineHandle = Arc::new(RedisConnector::with_metadata_index(open_kv()).unwrap());
    let plain_config = gdpr_server::ServerConfig {
        workers: 2,
        queue_depth: 32,
        encrypt: None,
        ..Default::default()
    };
    let enc_config = gdpr_server::ServerConfig {
        encrypt: Some("tenant-psk".to_string()),
        ..plain_config.clone()
    };
    let plain =
        RemoteConnector::serve_in_process_with(Arc::clone(&local) as EngineHandle, 2, plain_config)
            .unwrap();
    let encrypted =
        RemoteConnector::serve_in_process_with(Arc::clone(&local) as EngineHandle, 2, enc_config)
            .unwrap();
    assert!(encrypted.clients().iter().all(|c| c.is_encrypted()));
    assert_tenant_isolation(&encrypted, "enc-acme", "enc-zeta");
    assert_tenant_isolation(&plain, "pt-acme", "pt-zeta");
    // Both transports see the same engine: a tenant written over the
    // sealed channel is readable in-process under that tenant.
    use gdpr_core::tenant::TenantId;
    let enc_acme = TenantId::new("enc-acme").unwrap();
    let neo = Session::customer("neo").with_tenant(enc_acme);
    let resp = local
        .execute(&neo, &GdprQuery::ReadDataByUser("neo".into()))
        .unwrap();
    assert_eq!(resp.cardinality(), 1); // ph-2 survives the isolation run
}

// ---- restart equivalence (index snapshot recovery) ----

/// A unique scratch directory per call (tests run concurrently).
fn snapshot_scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gdpr-conformance-snap-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn aof_kv_config() -> kvstore::KvConfig {
    kvstore::KvConfig {
        aof: kvstore::config::AofStorage::Memory,
        fsync: kvstore::FsyncPolicy::Never,
        ..Default::default()
    }
}

/// An op mix touching every index dimension: creates (one TTL'd), an
/// objection, a group sharing update, a rectification, an erasure.
fn restart_op_mix(conn: &dyn GdprConnector) {
    let controller = Session::controller();
    seed(conn);
    let mut ttl_record = record("ph-ttl", "morpheus", &["analytics"], "666-666");
    ttl_record.metadata.ttl = Some(Duration::from_secs(300));
    conn.execute(&controller, &GdprQuery::CreateRecord(ttl_record))
        .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::UpdateMetadataByKey {
            key: "ph-1".into(),
            update: MetadataUpdate::Add(MetadataField::Objections, "ads".into()),
        },
    )
    .unwrap();
    conn.execute(
        &controller,
        &GdprQuery::UpdateMetadataByUser {
            user: "trinity".into(),
            update: MetadataUpdate::Add(MetadataField::Sharing, "y-corp".into()),
        },
    )
    .unwrap();
    conn.execute(
        &Session::customer("neo"),
        &GdprQuery::UpdateDataByKey {
            key: "ph-2".into(),
            data: "222-999".into(),
        },
    )
    .unwrap();
    conn.execute(
        &Session::customer("morpheus"),
        &GdprQuery::DeleteByKey("ph-5".into()),
    )
    .unwrap();
}

/// The read battery both engines must answer byte-identically. Audit
/// logs are engine state, not index state, and are deliberately absent —
/// a restarted engine starts a fresh trail.
fn restart_battery() -> Vec<(Session, GdprQuery)> {
    let mut battery: Vec<(Session, GdprQuery)> = vec![
        (
            Session::processor("ads"),
            GdprQuery::ReadDataByPurpose("ads".into()),
        ),
        (
            Session::processor("analytics"),
            GdprQuery::ReadDataNotObjecting("ads".into()),
        ),
        (
            Session::processor("analytics"),
            GdprQuery::ReadDataDecisionEligible,
        ),
        (
            Session::regulator(),
            GdprQuery::ReadMetadataBySharedWith("y-corp".into()),
        ),
        (
            Session::regulator(),
            GdprQuery::VerifyDeletion("ph-5".into()),
        ),
        (
            Session::regulator(),
            GdprQuery::VerifyDeletion("ph-1".into()),
        ),
        (Session::controller(), GdprQuery::GetSystemFeatures),
        // Denied queries must deny identically too.
        (
            Session::customer("neo"),
            GdprQuery::ReadDataByUser("trinity".into()),
        ),
        (
            Session::customer("neo"),
            GdprQuery::ReadMetadataByKey("ph-3".into()),
        ),
    ];
    for user in ["neo", "trinity", "morpheus"] {
        battery.push((
            Session::customer(user),
            GdprQuery::ReadDataByUser(user.into()),
        ));
        battery.push((
            Session::customer(user),
            GdprQuery::ReadMetadataByUser(user.into()),
        ));
    }
    battery
}

fn assert_restart_equivalent(
    original: &dyn GdprConnector,
    restarted: &dyn GdprConnector,
    ctx: &str,
) {
    for (session, query) in restart_battery() {
        assert_eq!(
            restarted.execute(&session, &query),
            original.execute(&session, &query),
            "{ctx}: restarted engine diverges on {query:?}"
        );
    }
    assert_eq!(restarted.record_count(), original.record_count(), "{ctx}");
}

/// Restart equivalence, sharded: run the op mix, snapshot on close,
/// replay every shard AOF and reopen against the images — every shard
/// must come back through the O(index) restore (pinning that the
/// equality below is the snapshot's doing, not a rebuild's), and every
/// response must be byte-identical to the never-restarted engine, both
/// in-process and over loopback TCP. `GDPR_SHARDS` sets the topology (CI
/// runs 1 and 8).
#[test]
fn restart_equivalence_sharded_and_remote() {
    let shards = gdpr_core::shard_count_from_env();
    let dir = snapshot_scratch_dir("sharded");
    let sim = clock::sim();
    let fleet: Vec<Arc<kvstore::KvStore>> = (0..shards)
        .map(|_| kvstore::KvStore::open_with_clock(aof_kv_config(), sim.clone()).unwrap())
        .collect();
    let original =
        ShardedRedisConnector::with_metadata_index_snapshots(fleet.clone(), &dir).unwrap();
    restart_op_mix(&original);
    assert!(original.close().unwrap() > 0, "close persists the images");

    let restarted_fleet: Vec<Arc<kvstore::KvStore>> = fleet
        .iter()
        .map(|store| {
            let aof = store.aof_memory_buffer().unwrap().lock().clone();
            kvstore::KvStore::replay(aof_kv_config(), &aof, sim.clone()).unwrap()
        })
        .collect();
    let restarted =
        ShardedRedisConnector::with_metadata_index_snapshots(restarted_fleet, &dir).unwrap();
    for shard in 0..shards {
        assert!(
            restarted.index_recovery(shard).unwrap().is_restored(),
            "shard {shard} must recover through the snapshot, got {:?}",
            restarted.index_recovery(shard)
        );
    }
    assert_restart_equivalent(&original, &restarted, "sharded in-process");

    // The same restarted engine over real sockets.
    let remote = served(Arc::new(restarted));
    assert_restart_equivalent(&original, remote.as_ref(), "sharded over TCP");
}

/// Restart equivalence, unsharded `redis-mi`.
#[test]
fn restart_equivalence_redis_mi() {
    let dir = snapshot_scratch_dir("mi");
    let path = dir.join("metaindex.snap");
    let sim = clock::sim();
    let store = kvstore::KvStore::open_with_clock(aof_kv_config(), sim.clone()).unwrap();
    let original = RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
    restart_op_mix(&original);
    assert!(original.close().unwrap() > 0);

    let aof = store.aof_memory_buffer().unwrap().lock().clone();
    let replayed = kvstore::KvStore::replay(aof_kv_config(), &aof, sim.clone()).unwrap();
    let restarted = RedisConnector::with_metadata_index_snapshot(replayed, &path).unwrap();
    assert!(
        restarted.index_recovery().unwrap().is_restored(),
        "got {:?}",
        restarted.index_recovery()
    );
    assert_restart_equivalent(&original, &restarted, "redis-mi in-process");
    let remote = served(Arc::new(restarted));
    assert_restart_equivalent(&original, remote.as_ref(), "redis-mi over TCP");
}

/// A page-store config for restart tests: pool far smaller than the
/// dataset (recovery must page through eviction, not RAM residency) and
/// auto-checkpoint disabled so the reopen is forced through the WAL
/// replay path rather than a clean data file.
fn disk_restart_config() -> pagestore::PageStoreConfig {
    pagestore::PageStoreConfig {
        pool_pages: 4,
        checkpoint_frames: usize::MAX,
        ..Default::default()
    }
}

/// Restart equivalence for the `disk` variant through **WAL recovery**:
/// run the op mix, then reopen the directory with *no* graceful close —
/// no checkpoint, no index snapshot. The reopened store must come up by
/// replaying the WAL (asserted), rebuild its metadata index from the
/// recovered tree, and answer the whole battery byte-identically to the
/// never-restarted engine, in-process and over loopback TCP.
#[test]
fn restart_equivalence_disk_wal_recovery() {
    let dir = snapshot_scratch_dir("disk-wal");
    let sim = clock::sim();
    let store =
        pagestore::PageStore::open(dir.join("store"), disk_restart_config(), sim.clone()).unwrap();
    let original = crate::DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    restart_op_mix(&original);
    let generation = store.generation();
    drop(store); // simulate the crash: no close(), no checkpoint

    let reopened =
        pagestore::PageStore::open(dir.join("store"), disk_restart_config(), sim.clone()).unwrap();
    assert!(
        reopened.recovery().wal_frames > 0,
        "reopen must take the WAL recovery path, got {}",
        reopened.recovery()
    );
    assert_eq!(
        reopened.generation(),
        generation,
        "WAL replay must reproduce the commit sequence"
    );
    let restarted = crate::DiskConnector::with_metadata_index(reopened).unwrap();
    assert_restart_equivalent(&original, &restarted, "disk in-process");
    let remote = served(Arc::new(restarted));
    assert_restart_equivalent(&original, remote.as_ref(), "disk over TCP");
}

/// Restart equivalence for `disk-sharded` with index snapshots: persist
/// the per-shard index images, crash without checkpoint, and require
/// every shard to come back through BOTH the WAL replay (store level) and
/// the O(index) snapshot restore (engine level) — the generation stamp in
/// each image must match the generation the shard's WAL reproduces.
/// `GDPR_SHARDS` sets the topology (CI runs 1 and 8).
#[test]
fn restart_equivalence_disk_sharded_wal_and_snapshots() {
    let shards = gdpr_core::shard_count_from_env();
    let dir = snapshot_scratch_dir("disk-sharded");
    let snaps = dir.join("snaps");
    std::fs::create_dir_all(&snaps).unwrap();
    let sim = clock::sim();
    let fleet = crate::disk::open_store_fleet(
        dir.join("stores"),
        shards,
        disk_restart_config(),
        sim.clone(),
    )
    .unwrap();
    let original =
        crate::ShardedDiskConnector::with_metadata_index_snapshots(fleet.clone(), &snaps).unwrap();
    restart_op_mix(&original);
    assert!(
        original.write_index_snapshots().unwrap() > 0,
        "snapshots persist without a checkpoint"
    );
    drop(fleet); // crash: WAL is the only durable mutation record

    let refleet = crate::disk::open_store_fleet(
        dir.join("stores"),
        shards,
        disk_restart_config(),
        sim.clone(),
    )
    .unwrap();
    // At high shard counts some shards never saw a mutation — those come
    // up empty legitimately; every shard that committed must replay.
    let mut replayed = 0;
    for (i, store) in refleet.iter().enumerate() {
        if store.generation() > 0 {
            assert!(
                store.recovery().wal_frames > 0,
                "shard {i} committed but did not replay its WAL, got {}",
                store.recovery()
            );
            replayed += 1;
        }
    }
    assert!(replayed > 0, "the op mix must land on at least one shard");
    let restarted =
        crate::ShardedDiskConnector::with_metadata_index_snapshots(refleet, &snaps).unwrap();
    for shard in 0..shards {
        assert!(
            restarted.index_recovery(shard).unwrap().is_restored(),
            "shard {shard} must recover through the snapshot, got {:?}",
            restarted.index_recovery(shard)
        );
    }
    assert_restart_equivalent(&original, &restarted, "disk-sharded in-process");
    let remote = served(Arc::new(restarted));
    assert_restart_equivalent(&original, remote.as_ref(), "disk-sharded over TCP");
}

/// The conformance read battery under hard eviction pressure: a 2-page
/// buffer pool (~1–2% of the dataset's page footprint) serving ~1000
/// records. Every access faults pages in and out; after **every** engine
/// op the pin count must be back at zero (a leaked pin under pressure
/// would wedge eviction fleet-wide), and every read must still be exact.
#[test]
fn disk_conformance_under_eviction_pressure() {
    let dir = snapshot_scratch_dir("disk-evict");
    let config = pagestore::PageStoreConfig {
        pool_pages: 2,
        ..Default::default()
    };
    let store = pagestore::PageStore::open(&dir, config, clock::wall()).unwrap();
    let conn = crate::DiskConnector::with_metadata_index(Arc::clone(&store)).unwrap();
    let controller = Session::controller();

    seed(&conn);
    let users = ["neo", "trinity", "morpheus"];
    let mut per_user = [2usize, 2, 1]; // the seeded corpus
    for i in 0..1000 {
        let user = users[i % 3];
        per_user[i % 3] += 1;
        let mut r = record(&format!("evict-{i:04}"), user, &["ads"], &"x".repeat(256));
        if i % 7 == 0 {
            r.metadata.ttl = Some(Duration::from_secs(3600));
        }
        conn.execute(&controller, &GdprQuery::CreateRecord(r))
            .unwrap();
        assert_eq!(store.pinned_pages(), 0, "pin leak after create {i}");
    }
    assert_eq!(conn.record_count(), 1005);

    // Point reads for every key, by a processor on the declared purpose.
    let ads = Session::processor("ads");
    for i in 0..1000 {
        let resp = conn
            .execute(&ads, &GdprQuery::ReadDataByKey(format!("evict-{i:04}")))
            .unwrap();
        assert_eq!(resp.cardinality(), 1, "evict-{i:04} must read back exactly");
        assert_eq!(store.pinned_pages(), 0, "pin leak after read {i}");
    }
    // Predicate reads across the whole dataset.
    for (i, user) in users.iter().copied().enumerate() {
        let resp = conn
            .execute(
                &Session::customer(user),
                &GdprQuery::ReadDataByUser(user.to_string()),
            )
            .unwrap();
        assert_eq!(resp.cardinality(), per_user[i], "{user}");
        assert_eq!(store.pinned_pages(), 0, "pin leak after user read");
    }
    // The standard battery (including denied queries) leaks no pins either.
    for (session, query) in restart_battery() {
        let _ = conn.execute(&session, &query);
        assert_eq!(store.pinned_pages(), 0, "pin leak on {query:?}");
    }
    let stats = store.pool_stats();
    assert_eq!(stats.capacity, 2);
    assert!(
        stats.evictions > 1000,
        "the battery must churn the pool, got {stats:?}"
    );
}

#[test]
fn postgres_mi_uses_index_scans_for_metadata_queries() {
    let db = relstore::Database::open(relstore::RelConfig::default()).unwrap();
    let pg = PostgresConnector::with_metadata_indices(Arc::clone(&db)).unwrap();
    seed(&pg);
    let before = db
        .table(crate::postgres::TABLE)
        .unwrap()
        .read()
        .plan_stats();
    pg.execute(
        &Session::customer("neo"),
        &GdprQuery::ReadDataByUser("neo".into()),
    )
    .unwrap();
    let after = db
        .table(crate::postgres::TABLE)
        .unwrap()
        .read()
        .plan_stats();
    assert!(after.index_scans > before.index_scans);
    assert_eq!(
        after.seq_scans, before.seq_scans,
        "usr query must not seq-scan"
    );
}
