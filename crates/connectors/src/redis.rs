//! The Redis-shaped GDPR backend (§5.1 of the paper).
//!
//! Layout: one string key `rec:<key>` per record, holding the §4.2.1 wire
//! form, with a native `EXPIRE` when the record carries a TTL. The store
//! itself has no secondary structures, so the backend resolves every
//! metadata predicate by SCANning the whole `rec:*` keyspace and parsing
//! each record — precisely how the paper's Redis behaves and why its GDPR
//! workloads run orders of magnitude slower than YCSB (Figures 5a, 7b).
//!
//! All GDPR policy (authorization, visibility, audit, dispatch) lives in
//! [`gdpr_core::ComplianceEngine`]; this module is storage mechanism only.
//! Two connector variants wrap the same backend:
//!
//! * [`RedisConnector::new`] — paper-faithful: every metadata query scans.
//! * [`RedisConnector::with_metadata_index`] — the engine maintains a
//!   [`gdpr_core::MetadataIndex`] over the store, turning those O(n) scans
//!   into O(matches) probes. The store's expiry paths (lazy-on-access and
//!   active cycles) invalidate index entries via
//!   [`kvstore::KvStore::set_expiry_listener`], so the index never
//!   advertises reaped personal data.

use bytes::Bytes;
use gdpr_core::audit::AuditTrail;
use gdpr_core::compliance::{FeatureReport, FeatureSupport};
use gdpr_core::connector::SpaceReport;
use gdpr_core::engine::ComplianceEngine;
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::metaindex::MetadataIndex;
use gdpr_core::query::GdprQuery;
use gdpr_core::record::PersonalRecord;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::store::{ExpiryListener, RecordStore};
use gdpr_core::wire;
use gdpr_core::GdprConnector;
use kvstore::expire::ExpirationMode;
use kvstore::{Command, KvConfig, KvStore};
use std::sync::Arc;

const KEY_PREFIX: &str = "rec:";
const SCAN_BATCH: usize = 512;

/// [`RecordStore`] over [`kvstore::KvStore`]: wire-format strings under
/// `rec:<key>`, TTL via native EXPIRE, full-keyspace SCAN as the only
/// native predicate path.
pub struct RedisStore {
    store: Arc<KvStore>,
    /// `redis` or `redis-mi`, fixed at connector construction.
    variant_name: &'static str,
}

impl RedisStore {
    /// Wrap an open store as a backend (the sharded connector builds one
    /// of these per shard).
    pub(crate) fn over(store: Arc<KvStore>, variant_name: &'static str) -> RedisStore {
        RedisStore {
            store,
            variant_name,
        }
    }

    /// The underlying key-value store.
    pub(crate) fn kv(&self) -> &Arc<KvStore> {
        &self.store
    }

    fn storage_key(key: &str) -> Bytes {
        Bytes::from(format!("{KEY_PREFIX}{key}"))
    }

    fn store_err(e: impl ToString) -> GdprError {
        GdprError::Store(e.to_string())
    }
}

impl RecordStore for RedisStore {
    fn clock(&self) -> clock::SharedClock {
        self.store.clock().clone()
    }

    fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
        let reply = self
            .store
            .get(Self::storage_key(key).as_ref())
            .map_err(Self::store_err)?;
        match reply {
            Some(bytes) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|e| GdprError::InvalidRecord(e.to_string()))?;
                Ok(Some(wire::parse(text)?))
            }
            None => Ok(None),
        }
    }

    /// Store a record, setting EXPIRE from its TTL. Collision detection is
    /// an EXISTS probe (hash lookup, lazily reaping an expired occupant) —
    /// much cheaper than a GET, which would decrypt and parse the record.
    fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
        let key = Self::storage_key(&record.key);
        if self.store.exists(key.as_ref()).map_err(Self::store_err)? {
            return Err(GdprError::AlreadyExists(record.key.clone()));
        }
        let value = wire::serialize(record);
        match record.metadata.ttl {
            Some(ttl) => self
                .store
                .set_ex(key.as_ref(), value.as_bytes(), ttl)
                .map_err(Self::store_err),
            None => self
                .store
                .set(key.as_ref(), value.as_bytes())
                .map_err(Self::store_err),
        }
    }

    /// Rewrite a record in place, preserving its remaining store-level TTL
    /// unless the update changed the TTL itself.
    fn rewrite(&self, record: &PersonalRecord, ttl_changed: bool) -> GdprResult<()> {
        let key = Self::storage_key(&record.key);
        let value = wire::serialize(record);
        if ttl_changed {
            return match record.metadata.ttl {
                Some(ttl) => self
                    .store
                    .set_ex(key.as_ref(), value.as_bytes(), ttl)
                    .map_err(Self::store_err),
                None => self
                    .store
                    .set(key.as_ref(), value.as_bytes())
                    .map_err(Self::store_err),
            };
        }
        // Preserve the exact millisecond deadline: SET clears any expiry, so
        // re-arm with EXPIREAT afterwards. Going through the seconds-granular
        // TTL command instead would shave up to 1s per rewrite (and a
        // sub-second remainder would truncate to an instant expiry).
        let deadline = self.store.expiry_at(key.as_ref());
        self.store
            .set(key.as_ref(), value.as_bytes())
            .map_err(Self::store_err)?;
        if let Some(at) = deadline {
            self.store
                .execute(Command::ExpireAt {
                    key,
                    at_ms: at.as_millis(),
                })
                .map_err(Self::store_err)?;
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> GdprResult<bool> {
        self.store
            .del(Self::storage_key(key).as_ref())
            .map_err(Self::store_err)
    }

    /// Insert under a known absolute deadline — the shard-rebalance path.
    /// SET then EXPIREAT, so a migrated record keeps its exact remaining
    /// lifetime instead of being re-armed with the full declared TTL.
    fn put_with_deadline(
        &self,
        record: &PersonalRecord,
        deadline_ms: Option<u64>,
    ) -> GdprResult<()> {
        let key = Self::storage_key(&record.key);
        if self.store.exists(key.as_ref()).map_err(Self::store_err)? {
            return Err(GdprError::AlreadyExists(record.key.clone()));
        }
        let value = wire::serialize(record);
        self.store
            .set(key.as_ref(), value.as_bytes())
            .map_err(Self::store_err)?;
        if let Some(at_ms) = deadline_ms {
            self.store
                .execute(Command::ExpireAt { key, at_ms })
                .map_err(Self::store_err)?;
        }
        Ok(())
    }

    /// Full keyspace walk: SCAN `rec:*` in batches and parse every record —
    /// the O(n) path every metadata query takes without an engine index.
    ///
    /// The cursor walk completes *before* any GET: a GET can lazily reap an
    /// expired key, and the keyspace's swap-remove would then move an
    /// unvisited tail key into an already-visited cursor position, silently
    /// dropping a live record from the scan.
    fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
        let mut keys = Vec::new();
        let mut cursor = 0usize;
        loop {
            let reply = self
                .store
                .execute(Command::Scan {
                    cursor,
                    count: SCAN_BATCH,
                    pattern: Some(Bytes::from_static(b"rec:*")),
                })
                .map_err(Self::store_err)?;
            let parts = reply
                .as_array()
                .ok_or_else(|| GdprError::Store("SCAN reply shape".into()))?;
            let next = parts[0].as_int().unwrap_or(0) as usize;
            keys.extend(
                parts[1]
                    .as_array()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|r| r.as_bulk().cloned()),
            );
            if next == 0 {
                break;
            }
            cursor = next;
        }
        let mut records = Vec::with_capacity(keys.len());
        for key in keys {
            if let Ok(Some(reply)) = self.store.get(key.as_ref()).map_err(|e| e.to_string()) {
                if let Ok(text) = std::str::from_utf8(&reply) {
                    if let Ok(record) = wire::parse(text) {
                        records.push(record);
                    }
                }
            }
        }
        Ok(records)
    }

    fn purge_expired(&self) -> GdprResult<usize> {
        // Timely deletion is the store's job (EXPIRE); purging now means
        // running an active-expiration cycle synchronously.
        Ok(self.store.run_expiration_cycle().reaped)
    }

    /// Past-due keys *without* reaping. The default scan-derived
    /// enumeration is wrong here: a GET lazily destroys an expired record
    /// and its deadline, so the cursor walk must stay key-only and the
    /// deadline check must go through the pure `expiry_at` read.
    fn expired_keys(&self) -> GdprResult<Vec<String>> {
        let now_ms = self.store.clock().now().as_millis();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        loop {
            let reply = self
                .store
                .execute(Command::Scan {
                    cursor,
                    count: SCAN_BATCH,
                    pattern: Some(Bytes::from_static(b"rec:*")),
                })
                .map_err(Self::store_err)?;
            let parts = reply
                .as_array()
                .ok_or_else(|| GdprError::Store("SCAN reply shape".into()))?;
            let next = parts[0].as_int().unwrap_or(0) as usize;
            for storage_key in parts[1]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|r| r.as_bulk())
            {
                let due = self
                    .store
                    .expiry_at(storage_key.as_ref())
                    .is_some_and(|at| at.as_millis() <= now_ms);
                if due {
                    if let Ok(text) = std::str::from_utf8(storage_key.as_ref()) {
                        if let Some(key) = text.strip_prefix(KEY_PREFIX) {
                            out.push(key.to_string());
                        }
                    }
                }
            }
            if next == 0 {
                break;
            }
            cursor = next;
        }
        Ok(out)
    }

    fn deadline_ms(&self, key: &str) -> Option<u64> {
        self.store
            .expiry_at(Self::storage_key(key).as_ref())
            .map(|at| at.as_millis())
    }

    /// The store's AOF write-frame sequence — advanced by every write
    /// (engine-driven or behind the engine's back) and reproduced exactly
    /// by AOF replay, which is what lets an index snapshot stamped with
    /// it be trusted after a crash.
    fn persistence_generation(&self) -> Option<u64> {
        Some(self.store.mutation_generation())
    }

    fn on_expiry(&self, listener: ExpiryListener) {
        self.store
            .set_expiry_listener(Arc::new(move |storage_key: &[u8]| {
                // Only `rec:*` keys are GDPR records; other expiring keys (none
                // today) would not be indexed.
                if let Ok(text) = std::str::from_utf8(storage_key) {
                    if let Some(key) = text.strip_prefix(KEY_PREFIX) {
                        listener(key);
                    }
                }
            }));
    }

    fn space_report(&self) -> SpaceReport {
        let personal: usize = self
            .scan()
            .map(|records| records.iter().map(PersonalRecord::data_bytes).sum())
            .unwrap_or(0);
        // Total = what the datastore holds (keyspace + AOF). The GDPR-layer
        // audit trail and metadata index live client-side in the engine and
        // are not part of the paper's "total DB size".
        SpaceReport {
            personal_data_bytes: personal,
            total_bytes: self.store.memory_usage() + self.store.aof_bytes() as usize,
        }
    }

    fn record_count(&self) -> usize {
        self.store.dbsize()
    }

    fn features(&self) -> FeatureReport {
        let config = self.store.config();
        FeatureReport {
            // Native EXPIRE exists but is lazy; strict mode is the paper's
            // retrofit.
            timely_deletion: match config.expiration {
                ExpirationMode::Strict => FeatureSupport::Retrofitted,
                ExpirationMode::Lazy => FeatureSupport::Unsupported,
            },
            monitoring_and_logging: if config.log_reads {
                FeatureSupport::Retrofitted
            } else {
                FeatureSupport::Unsupported
            },
            // No secondary indexes exist in the store; metadata-based
            // access is retrofitted client-side — as SCAN+filter in the
            // baseline, as the engine's MetadataIndex in the `-mi` variant.
            metadata_indexing: FeatureSupport::Retrofitted,
            encryption: if config.encrypt_at_rest && config.encrypt_transit {
                FeatureSupport::Retrofitted
            } else {
                FeatureSupport::Unsupported
            },
            // Enforced in the engine, per the paper.
            access_control: FeatureSupport::Retrofitted,
        }
    }

    fn name(&self) -> &str {
        self.variant_name
    }
}

/// GDPR connector over [`kvstore::KvStore`]: the shared engine driving a
/// [`RedisStore`] backend.
pub struct RedisConnector {
    engine: ComplianceEngine<RedisStore>,
}

impl RedisConnector {
    /// Wrap an open store, paper-faithful (no metadata index: every
    /// metadata query scans the keyspace).
    pub fn new(store: Arc<KvStore>) -> Self {
        RedisConnector {
            engine: ComplianceEngine::new(RedisStore {
                store,
                variant_name: "redis",
            }),
        }
    }

    /// Wrap an open store with an engine-maintained metadata index —
    /// O(matches) predicate lookups at index-maintenance cost on writes.
    pub fn with_metadata_index(store: Arc<KvStore>) -> GdprResult<Self> {
        let backend = RedisStore {
            store,
            variant_name: "redis-mi",
        };
        Ok(RedisConnector {
            engine: ComplianceEngine::with_metadata_index(backend)?,
        })
    }

    /// As [`Self::with_metadata_index`], but the index recovers through
    /// the snapshot image at `path` — O(index) when the image's
    /// generation stamp matches the store's AOF position, the usual O(n)
    /// scan-backfill (loudly) otherwise — and [`Self::close`] /
    /// [`Self::write_index_snapshot`] persist it there again.
    pub fn with_metadata_index_snapshot(
        store: Arc<KvStore>,
        path: impl Into<std::path::PathBuf>,
    ) -> GdprResult<Self> {
        let backend = RedisStore {
            store,
            variant_name: "redis-mi",
        };
        Ok(RedisConnector {
            engine: ComplianceEngine::with_metadata_index_snapshot(backend, path)?,
        })
    }

    /// How the index came up (snapshot-aware variant only).
    pub fn index_recovery(&self) -> Option<&gdpr_core::IndexRecovery> {
        self.engine.index_recovery()
    }

    /// Persist the index snapshot now (snapshot-aware variant only).
    pub fn write_index_snapshot(&self) -> GdprResult<usize> {
        self.engine.write_index_snapshot()
    }

    /// Graceful close: snapshot the index when so configured, and flush
    /// the store's AOF.
    pub fn close(&self) -> GdprResult<usize> {
        let written = self.engine.close()?;
        self.store()
            .sync_aof()
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Ok(written)
    }

    /// Open a fully GDPR-compliant in-memory store (strict TTL, read
    /// logging, encryption) and wrap it.
    pub fn open_compliant() -> GdprResult<Self> {
        let store = KvStore::open(KvConfig::gdpr_compliant_in_memory())
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Ok(Self::new(store))
    }

    /// The underlying store (for experiment harnesses).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.engine.store().store
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditTrail {
        self.engine.audit()
    }

    /// The engine's metadata index (present on the `-mi` variant).
    pub fn metadata_index(&self) -> Option<&Arc<MetadataIndex>> {
        self.engine.metadata_index()
    }
}

impl GdprConnector for RedisConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.engine.execute(session, query)
    }

    fn features(&self) -> FeatureReport {
        self.engine.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.engine.space_report()
    }

    fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    fn name(&self) -> &str {
        self.engine.name()
    }

    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry()
    }

    fn op_telemetry_for(
        &self,
        tenant: &gdpr_core::tenant::TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, gdpr_core::telemetry::OpTelemetrySnapshot)> {
        self.engine.tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &gdpr_core::tenant::TenantId) -> GdprResult<()> {
        self.engine.provision_tenant(tenant)
    }

    fn close(&self) -> GdprResult<()> {
        RedisConnector::close(self).map(|_| ())
    }
}
