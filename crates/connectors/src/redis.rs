//! The Redis-shaped GDPR connector (§5.1 of the paper).
//!
//! Layout: one string key `rec:<key>` per record, holding the §4.2.1 wire
//! form, with a native `EXPIRE` when the record carries a TTL. There are no
//! secondary structures — queries that select by purpose, user, objection,
//! decision, or sharing SCAN the whole `rec:*` keyspace, parse each record,
//! and filter client-side. That is precisely how the paper's Redis behaves
//! and why its GDPR workloads run orders of magnitude slower than YCSB.

use bytes::Bytes;
use gdpr_core::acl::{authorize, record_visible};
use gdpr_core::audit::AuditTrail;
use gdpr_core::compliance::{FeatureReport, FeatureSupport};
use gdpr_core::connector::SpaceReport;
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::query::GdprQuery;
use gdpr_core::record::PersonalRecord;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::wire;
use gdpr_core::GdprConnector;
use kvstore::expire::ExpirationMode;
use kvstore::{Command, KvConfig, KvStore};
use std::sync::Arc;

const KEY_PREFIX: &str = "rec:";
const SCAN_BATCH: usize = 512;

/// GDPR connector over [`kvstore::KvStore`].
pub struct RedisConnector {
    store: Arc<KvStore>,
    audit: AuditTrail,
}

impl RedisConnector {
    /// Wrap an open store.
    pub fn new(store: Arc<KvStore>) -> Self {
        let audit = AuditTrail::new(store.clock().clone());
        RedisConnector { store, audit }
    }

    /// Open a fully GDPR-compliant in-memory store (strict TTL, read
    /// logging, encryption) and wrap it.
    pub fn open_compliant() -> GdprResult<Self> {
        let store = KvStore::open(KvConfig::gdpr_compliant_in_memory())
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Ok(Self::new(store))
    }

    /// The underlying store (for experiment harnesses).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditTrail {
        &self.audit
    }

    fn storage_key(key: &str) -> Bytes {
        Bytes::from(format!("{KEY_PREFIX}{key}"))
    }

    fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
        let reply = self
            .store
            .get(Self::storage_key(key).as_ref())
            .map_err(|e| GdprError::Store(e.to_string()))?;
        match reply {
            Some(bytes) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|e| GdprError::InvalidRecord(e.to_string()))?;
                Ok(Some(wire::parse(text)?))
            }
            None => Ok(None),
        }
    }

    /// Store a record, setting EXPIRE from its TTL.
    fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
        let key = Self::storage_key(&record.key);
        let value = wire::serialize(record);
        match record.metadata.ttl {
            Some(ttl) => self
                .store
                .set_ex(key.as_ref(), value.as_bytes(), ttl)
                .map_err(|e| GdprError::Store(e.to_string())),
            None => self
                .store
                .set(key.as_ref(), value.as_bytes())
                .map_err(|e| GdprError::Store(e.to_string())),
        }
    }

    /// Full keyspace walk: SCAN `rec:*` in batches and parse every record —
    /// the O(n) path every metadata query takes on Redis.
    fn scan_all(&self) -> GdprResult<Vec<PersonalRecord>> {
        let mut records = Vec::new();
        let mut cursor = 0usize;
        loop {
            let reply = self
                .store
                .execute(Command::Scan {
                    cursor,
                    count: SCAN_BATCH,
                    pattern: Some(Bytes::from_static(b"rec:*")),
                })
                .map_err(|e| GdprError::Store(e.to_string()))?;
            let parts = reply
                .as_array()
                .ok_or_else(|| GdprError::Store("SCAN reply shape".into()))?;
            let next = parts[0].as_int().unwrap_or(0) as usize;
            let keys: Vec<Bytes> = parts[1]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|r| r.as_bulk().cloned())
                .collect();
            for key in keys {
                if let Ok(Some(reply)) = self.store.get(key.as_ref()).map_err(|e| e.to_string()) {
                    if let Ok(text) = std::str::from_utf8(&reply) {
                        if let Ok(record) = wire::parse(text) {
                            records.push(record);
                        }
                    }
                }
            }
            if next == 0 {
                break;
            }
            cursor = next;
        }
        Ok(records)
    }

    fn delete_keys(&self, keys: impl IntoIterator<Item = String>) -> GdprResult<usize> {
        let mut n = 0;
        for key in keys {
            if self
                .store
                .del(Self::storage_key(&key).as_ref())
                .map_err(|e| GdprError::Store(e.to_string()))?
            {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Rewrite a record in place, preserving its remaining store-level TTL
    /// unless the update changed the TTL itself.
    fn rewrite(&self, record: &PersonalRecord, ttl_changed: bool) -> GdprResult<()> {
        let key = Self::storage_key(&record.key);
        let remaining = if ttl_changed {
            record.metadata.ttl
        } else {
            // TTL of the live key, so SET does not clear the deadline.
            let reply = self
                .store
                .execute(Command::Ttl { key: key.clone() })
                .map_err(|e| GdprError::Store(e.to_string()))?;
            match reply.as_int() {
                Some(secs) if secs >= 0 => Some(std::time::Duration::from_secs(secs as u64)),
                _ => None,
            }
        };
        let value = wire::serialize(record);
        match remaining {
            Some(ttl) => self
                .store
                .set_ex(key.as_ref(), value.as_bytes(), ttl)
                .map_err(|e| GdprError::Store(e.to_string())),
            None => self
                .store
                .set(key.as_ref(), value.as_bytes())
                .map_err(|e| GdprError::Store(e.to_string())),
        }
    }

    fn dispatch(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        use GdprQuery::*;
        let decision = authorize(session, query)?;
        let guard = |record: &PersonalRecord| -> GdprResult<()> {
            if decision.requires_record_check && !record_visible(session, record) {
                Err(GdprError::AccessDenied {
                    role: session.role.name().to_string(),
                    query: query.name().to_string(),
                    reason: "record not visible to this session".to_string(),
                })
            } else {
                Ok(())
            }
        };

        match query {
            CreateRecord(record) => {
                if self.fetch(&record.key)?.is_some() {
                    return Err(GdprError::AlreadyExists(record.key.clone()));
                }
                self.put(record)?;
                Ok(GdprResponse::Created)
            }

            DeleteByKey(key) => {
                let record = self.fetch(key)?.ok_or_else(|| GdprError::NotFound(key.clone()))?;
                guard(&record)?;
                self.delete_keys([key.clone()])?;
                Ok(GdprResponse::Deleted(1))
            }
            DeleteByPurpose(purpose) => {
                let victims: Vec<String> = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.purposes.iter().any(|p| p == purpose))
                    .map(|r| r.key)
                    .collect();
                Ok(GdprResponse::Deleted(self.delete_keys(victims)?))
            }
            DeleteExpired => {
                // Timely deletion is the store's job (EXPIRE); purging now
                // means running an active-expiration cycle synchronously.
                let stats = self.store.run_expiration_cycle();
                Ok(GdprResponse::Deleted(stats.reaped))
            }
            DeleteByUser(user) => {
                let victims: Vec<String> = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.user == *user)
                    .map(|r| r.key)
                    .collect();
                Ok(GdprResponse::Deleted(self.delete_keys(victims)?))
            }

            ReadDataByKey(key) => {
                let record = self.fetch(key)?.ok_or_else(|| GdprError::NotFound(key.clone()))?;
                guard(&record)?;
                Ok(GdprResponse::Data(vec![(record.key, record.data)]))
            }
            ReadDataByPurpose(purpose) => {
                let data = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.allows_purpose(purpose))
                    .map(|r| (r.key, r.data))
                    .collect();
                Ok(GdprResponse::Data(data))
            }
            ReadDataByUser(user) => {
                let data = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.user == *user)
                    .map(|r| (r.key, r.data))
                    .collect();
                Ok(GdprResponse::Data(data))
            }
            ReadDataNotObjecting(usage) => {
                let data = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| !r.metadata.objections.iter().any(|o| o == usage))
                    .map(|r| (r.key, r.data))
                    .collect();
                Ok(GdprResponse::Data(data))
            }
            ReadDataDecisionEligible => {
                let data = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.allows_automated_decisions())
                    .map(|r| (r.key, r.data))
                    .collect();
                Ok(GdprResponse::Data(data))
            }

            ReadMetadataByKey(key) => {
                let record = self.fetch(key)?.ok_or_else(|| GdprError::NotFound(key.clone()))?;
                guard(&record)?;
                Ok(GdprResponse::Metadata(vec![(record.key, record.metadata)]))
            }
            ReadMetadataByUser(user) => {
                let meta = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.user == *user)
                    .map(|r| (r.key, r.metadata))
                    .collect();
                Ok(GdprResponse::Metadata(meta))
            }
            ReadMetadataBySharedWith(party) => {
                let meta = self
                    .scan_all()?
                    .into_iter()
                    .filter(|r| r.metadata.sharing.iter().any(|s| s == party))
                    .map(|r| (r.key, r.metadata))
                    .collect();
                Ok(GdprResponse::Metadata(meta))
            }

            UpdateDataByKey { key, data } => {
                let mut record =
                    self.fetch(key)?.ok_or_else(|| GdprError::NotFound(key.clone()))?;
                guard(&record)?;
                record.data = data.clone();
                self.rewrite(&record, false)?;
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByKey { key, update } => {
                let mut record =
                    self.fetch(key)?.ok_or_else(|| GdprError::NotFound(key.clone()))?;
                guard(&record)?;
                let ttl_changed = matches!(update, gdpr_core::MetadataUpdate::SetTtl(_));
                update.apply(&mut record.metadata)?;
                self.rewrite(&record, ttl_changed)?;
                Ok(GdprResponse::Updated(1))
            }
            UpdateMetadataByPurpose { purpose, update } => {
                let ttl_changed = matches!(update, gdpr_core::MetadataUpdate::SetTtl(_));
                let mut n = 0;
                for mut record in self.scan_all()? {
                    if record.metadata.purposes.iter().any(|p| p == purpose) {
                        update.apply(&mut record.metadata)?;
                        self.rewrite(&record, ttl_changed)?;
                        n += 1;
                    }
                }
                Ok(GdprResponse::Updated(n))
            }
            UpdateMetadataByUser { user, update } => {
                let ttl_changed = matches!(update, gdpr_core::MetadataUpdate::SetTtl(_));
                let mut n = 0;
                for mut record in self.scan_all()? {
                    if record.metadata.user == *user {
                        update.apply(&mut record.metadata)?;
                        self.rewrite(&record, ttl_changed)?;
                        n += 1;
                    }
                }
                Ok(GdprResponse::Updated(n))
            }

            GetSystemLogs { from_ms, to_ms } => {
                Ok(GdprResponse::Logs(self.audit.lines_between(*from_ms, *to_ms)))
            }
            GetSystemFeatures => Ok(GdprResponse::Features(self.features())),
            VerifyDeletion(key) => Ok(GdprResponse::DeletionVerified(self.fetch(key)?.is_none())),
        }
    }
}

impl GdprConnector for RedisConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let result = self.dispatch(session, query);
        let err_text = result.as_ref().err().map(ToString::to_string);
        let outcome = match &result {
            Ok(resp) => Ok(resp.cardinality()),
            Err(_) => Err(err_text.as_deref().unwrap_or("error")),
        };
        self.audit
            .record(session, query.name(), detail_of(query), outcome);
        result
    }

    fn features(&self) -> FeatureReport {
        let config = self.store.config();
        FeatureReport {
            // Native EXPIRE exists but is lazy; strict mode is the paper's
            // retrofit.
            timely_deletion: match config.expiration {
                ExpirationMode::Strict => FeatureSupport::Retrofitted,
                ExpirationMode::Lazy => FeatureSupport::Unsupported,
            },
            monitoring_and_logging: if config.log_reads {
                FeatureSupport::Retrofitted
            } else {
                FeatureSupport::Unsupported
            },
            // No secondary indexes exist in the store; metadata-based
            // access is retrofitted as client-side SCAN+filter (the paper's
            // "partial support" — capability present, efficiency absent).
            metadata_indexing: FeatureSupport::Retrofitted,
            encryption: if config.encrypt_at_rest && config.encrypt_transit {
                FeatureSupport::Retrofitted
            } else {
                FeatureSupport::Unsupported
            },
            // Enforced in this client, per the paper.
            access_control: FeatureSupport::Retrofitted,
        }
    }

    fn space_report(&self) -> SpaceReport {
        let personal: usize = self
            .scan_all()
            .map(|records| records.iter().map(PersonalRecord::data_bytes).sum())
            .unwrap_or(0);
        // Total = what the datastore holds (keyspace + AOF). The GDPR-layer
        // audit trail lives client-side in this connector and is not part
        // of the paper's "total DB size".
        SpaceReport {
            personal_data_bytes: personal,
            total_bytes: self.store.memory_usage() + self.store.aof_bytes() as usize,
        }
    }

    fn record_count(&self) -> usize {
        self.store.dbsize()
    }

    fn name(&self) -> &str {
        "redis"
    }
}

fn detail_of(query: &GdprQuery) -> String {
    use GdprQuery::*;
    match query {
        CreateRecord(r) => format!("key={}", r.key),
        DeleteByKey(k) | ReadDataByKey(k) | ReadMetadataByKey(k) | VerifyDeletion(k) => {
            format!("key={k}")
        }
        DeleteByPurpose(p) | ReadDataByPurpose(p) => format!("pur={p}"),
        DeleteExpired => "ttl".into(),
        DeleteByUser(u) | ReadDataByUser(u) | ReadMetadataByUser(u) => format!("usr={u}"),
        ReadDataNotObjecting(o) => format!("obj={o}"),
        ReadDataDecisionEligible => "dec".into(),
        ReadMetadataBySharedWith(s) => format!("shr={s}"),
        UpdateDataByKey { key, .. } | UpdateMetadataByKey { key, .. } => format!("key={key}"),
        UpdateMetadataByPurpose { purpose, .. } => format!("pur={purpose}"),
        UpdateMetadataByUser { user, .. } => format!("usr={user}"),
        GetSystemLogs { from_ms, to_ms } => format!("range={from_ms}..{to_ms}"),
        GetSystemFeatures => "features".into(),
    }
}
