//! The remote connector: `GdprClient` speaks the `gdpr-server` wire
//! protocol over a TCP connection, and [`RemoteConnector`] pools clients
//! behind the same [`GdprConnector`] interface every other variant
//! implements — so the conformance suite, the property harnesses, and the
//! bench layer drive a server over loopback (or a real network) without
//! changing a line.
//!
//! Pipelining: [`GdprClient::pipeline`] bursts a batch of queries before
//! reading any response; the server answers strictly in request order and
//! echoes each request's `seq`, which the client verifies — a reordered or
//! cross-connection response is detected, never silently mis-attributed.

use gdpr_core::compliance::FeatureReport;
use gdpr_core::connector::{EngineHandle, SpaceReport};
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::query::GdprQuery;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::GdprConnector;
use gdpr_server::wire::{self, RequestBody, ResponseBody, StatsSnapshot};
use gdpr_server::{GdprServer, ServerConfig};
use parking_lot::Mutex;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

fn io_err(context: &str, e: impl std::fmt::Display) -> GdprError {
    GdprError::Store(format!("remote {context}: {e}"))
}

/// One client connection to a `gdpr-serve` endpoint.
///
/// A call holds the connection for its full round trip, so one client is
/// one unit of server-side concurrency; open several (or use
/// [`RemoteConnector`]'s pool) to drive a server with N in-flight
/// requests.
pub struct GdprClient {
    io: Mutex<ClientIo>,
    seq: AtomicU64,
}

struct ClientIo {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl GdprClient {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> GdprResult<GdprClient> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().map_err(|e| io_err("connect", e))?;
        Ok(GdprClient {
            io: Mutex::new(ClientIo {
                reader: BufReader::new(stream),
                writer,
            }),
            seq: AtomicU64::new(0),
        })
    }

    fn roundtrip(&self, body: &RequestBody) -> GdprResult<ResponseBody> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut io = self.io.lock();
        wire::write_frame(&mut io.writer, &wire::encode_request(seq, body))
            .map_err(|e| io_err("send", e))?;
        let payload = wire::read_frame(&mut io.reader, wire::MAX_FRAME)
            .map_err(|e| io_err("receive", e))?
            .ok_or_else(|| io_err("receive", "server closed the connection"))?;
        let (got_seq, response) =
            wire::decode_response(&payload).map_err(|e| io_err("decode", e))?;
        if got_seq != seq {
            // An out-of-order response would mis-attribute personal data
            // across requests; fail the call loudly instead.
            return Err(io_err(
                "sequencing",
                format!("response seq {got_seq} for request {seq}"),
            ));
        }
        Ok(response)
    }

    /// Execute one GDPR query. GDPR-layer errors decode back to the exact
    /// [`GdprError`] the in-process engine would have returned.
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        match self.roundtrip(&RequestBody::Execute(session.clone(), query.clone()))? {
            ResponseBody::Response(response) => Ok(response),
            ResponseBody::Error(error) => Err(error),
            ResponseBody::Protocol(msg) => Err(io_err("protocol", msg)),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// Pipeline a batch: write every request, then read every response (in
    /// order, seq-verified). One round of network buffering instead of
    /// `batch.len()` round trips. The server executes the whole burst as a
    /// single engine-side batch.
    pub fn pipeline(
        &self,
        batch: &[(Session, GdprQuery)],
    ) -> GdprResult<Vec<GdprResult<GdprResponse>>> {
        self.pipeline_windowed(batch, batch.len().max(1))
    }

    /// [`Self::pipeline`] with a bounded in-flight window: at most
    /// `window` requests are unanswered at any moment. The window is
    /// primed as one burst; each response read refills one slot. This is
    /// the shape of a real pipelining workload (the bench depth sweep),
    /// and it bounds client-side memory for arbitrarily long batches.
    pub fn pipeline_windowed(
        &self,
        batch: &[(Session, GdprQuery)],
        window: usize,
    ) -> GdprResult<Vec<GdprResult<GdprResponse>>> {
        let window = window.max(1);
        let mut io = self.io.lock();
        let seqs: Vec<u64> = batch
            .iter()
            .map(|_| self.seq.fetch_add(1, Ordering::Relaxed))
            .collect();
        let frame_for = |i: usize| -> GdprResult<Vec<u8>> {
            let (session, query) = &batch[i];
            let body = RequestBody::Execute(session.clone(), query.clone());
            let mut buf = Vec::new();
            wire::write_frame(&mut buf, &wire::encode_request(seqs[i], &body))
                .map_err(|e| io_err("send", e))?;
            Ok(buf)
        };
        // Prime the window as one buffered burst: the wire carries it in
        // as few segments as possible.
        let prime = batch.len().min(window);
        let mut burst = Vec::new();
        for i in 0..prime {
            burst.extend(frame_for(i)?);
        }
        io.writer.write_all(&burst).map_err(|e| io_err("send", e))?;
        let mut next_write = prime;
        let mut out = Vec::with_capacity(batch.len());
        for &expected_seq in &seqs {
            let payload = wire::read_frame(&mut io.reader, wire::MAX_FRAME)
                .map_err(|e| io_err("receive", e))?
                .ok_or_else(|| io_err("receive", "server closed mid-pipeline"))?;
            let (seq, response) =
                wire::decode_response(&payload).map_err(|e| io_err("decode", e))?;
            if seq != expected_seq {
                return Err(io_err(
                    "sequencing",
                    format!("pipelined response seq {seq}, expected {expected_seq}"),
                ));
            }
            out.push(match response {
                ResponseBody::Response(resp) => Ok(resp),
                ResponseBody::Error(error) => Err(error),
                other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
            });
            if next_write < batch.len() {
                let frame = frame_for(next_write)?;
                io.writer.write_all(&frame).map_err(|e| io_err("send", e))?;
                next_write += 1;
            }
        }
        Ok(out)
    }

    pub fn features(&self) -> GdprResult<FeatureReport> {
        match self.roundtrip(&RequestBody::Features)? {
            ResponseBody::Features(report) => Ok(report),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn space_report(&self) -> GdprResult<SpaceReport> {
        match self.roundtrip(&RequestBody::SpaceReport)? {
            ResponseBody::Space(space) => Ok(space),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn record_count(&self) -> GdprResult<usize> {
        match self.roundtrip(&RequestBody::RecordCount)? {
            ResponseBody::Count(n) => Ok(n as usize),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn server_name(&self) -> GdprResult<String> {
        match self.roundtrip(&RequestBody::Name)? {
            ResponseBody::Name(name) => Ok(name),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// Echo probe; verifies framing and liveness.
    pub fn ping(&self, blob: &[u8]) -> GdprResult<Vec<u8>> {
        match self.roundtrip(&RequestBody::Ping(blob.to_vec()))? {
            ResponseBody::Pong(echo) => Ok(echo),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// This connection's (and the server's) counters.
    pub fn conn_stats(&self) -> GdprResult<StatsSnapshot> {
        match self.roundtrip(&RequestBody::ConnStats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }
}

/// A [`GdprConnector`] over the wire: a pool of [`GdprClient`] connections
/// to one server, picked round-robin per call so up to `pool size` requests
/// proceed concurrently — the remote analogue of `--threads N` driving an
/// in-process engine.
pub struct RemoteConnector {
    clients: Vec<GdprClient>,
    next: AtomicUsize,
    /// The served connector's name, fetched once at connect (`name()`
    /// returns `&str`, so it cannot go over the wire per call).
    name: String,
    /// When serving in-process, the connector owns the server so the
    /// endpoint lives exactly as long as its clients.
    server: Option<GdprServer>,
}

impl RemoteConnector {
    /// Connect one client to `addr`.
    pub fn connect(addr: &str) -> GdprResult<RemoteConnector> {
        Self::connect_pool(addr, 1)
    }

    /// Connect a pool of `clients` connections to `addr`.
    pub fn connect_pool(addr: &str, clients: usize) -> GdprResult<RemoteConnector> {
        let clients = (0..clients.max(1))
            .map(|_| GdprClient::connect(addr))
            .collect::<GdprResult<Vec<_>>>()?;
        let name = clients[0].server_name()?;
        Ok(RemoteConnector {
            clients,
            next: AtomicUsize::new(0),
            name,
            server: None,
        })
    }

    /// Serve `engine` on an ephemeral loopback port and connect a pool to
    /// it — every in-process connector variant becomes a networked one in
    /// one call. The server shuts down when the connector drops.
    pub fn serve_in_process(engine: EngineHandle, clients: usize) -> GdprResult<RemoteConnector> {
        Self::serve_in_process_with(engine, clients, ServerConfig::default())
    }

    /// [`Self::serve_in_process`] with explicit server tuning.
    pub fn serve_in_process_with(
        engine: EngineHandle,
        clients: usize,
        config: ServerConfig,
    ) -> GdprResult<RemoteConnector> {
        let server =
            GdprServer::bind(engine, "127.0.0.1:0", config).map_err(|e| io_err("bind", e))?;
        let mut connector = Self::connect_pool(&server.local_addr().to_string(), clients)?;
        connector.server = Some(server);
        Ok(connector)
    }

    /// The pooled connections.
    pub fn clients(&self) -> &[GdprClient] {
        &self.clients
    }

    /// One client, round-robin.
    pub fn client(&self) -> &GdprClient {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.clients.len();
        &self.clients[i]
    }

    /// The in-process server, when this connector owns one.
    pub fn server(&self) -> Option<&GdprServer> {
        self.server.as_ref()
    }
}

impl GdprConnector for RemoteConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.client().execute(session, query)
    }

    /// A batch rides one connection as one pipelined burst — the server
    /// executes it as a single engine-side batch. On a transport failure
    /// the whole batch reports that failure per op (per-op GDPR errors
    /// still arrive individually via the pipeline).
    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        match self.client().pipeline(&ops) {
            Ok(results) => results,
            Err(error) => ops.iter().map(|_| Err(error.clone())).collect(),
        }
    }

    // The introspection methods have no error channel in the trait, and
    // inventing answers for an unreachable server would be worse than
    // failing: a fabricated `record_count() == 0` reads as "all personal
    // data erased", and a default `features()` reads as a real (fully
    // non-compliant) posture. Panic with context instead; callers that
    // need fallible access use the same calls on [`Self::client`].

    fn features(&self) -> FeatureReport {
        self.client()
            .features()
            .expect("remote features: server unreachable")
    }

    fn space_report(&self) -> SpaceReport {
        self.client()
            .space_report()
            .expect("remote space report: server unreachable")
    }

    fn record_count(&self) -> usize {
        self.client()
            .record_count()
            .expect("remote record count: server unreachable")
    }

    fn name(&self) -> &str {
        &self.name
    }
}
