//! The remote connector: `GdprClient` speaks the `gdpr-server` wire
//! protocol over a TCP connection, and [`RemoteConnector`] pools clients
//! behind the same [`GdprConnector`] interface every other variant
//! implements — so the conformance suite, the property harnesses, and the
//! bench layer drive a server over loopback (or a real network) without
//! changing a line.
//!
//! Pipelining: [`GdprClient::pipeline`] bursts a batch of queries before
//! reading any response; the server answers strictly in request order and
//! echoes each request's `seq`, which the client verifies — a reordered or
//! cross-connection response is detected, never silently mis-attributed.

use gdpr_core::compliance::FeatureReport;
use gdpr_core::connector::{EngineHandle, SpaceReport};
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::query::GdprQuery;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::tenant::TenantId;
use gdpr_core::GdprConnector;
use gdpr_server::secure;
use gdpr_server::wire::{self, MetricsReport, RequestBody, ResponseBody, StatsSnapshot};
use gdpr_server::{GdprServer, ServerConfig};
use parking_lot::Mutex;
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

fn io_err(context: &str, e: impl std::fmt::Display) -> GdprError {
    GdprError::Store(format!("remote {context}: {e}"))
}

/// One client connection to a `gdpr-serve` endpoint.
///
/// A call holds the connection for its full round trip, so one client is
/// one unit of server-side concurrency; open several (or use
/// [`RemoteConnector`]'s pool) to drive a server with N in-flight
/// requests.
pub struct GdprClient {
    io: Mutex<ClientIo>,
    seq: AtomicU64,
    /// The tenant stamped into control-request headers (`GetMetrics`,
    /// `Features`, ...). `Execute` headers use the session's tenant
    /// instead — the session is authoritative for data ops.
    tenant: TenantId,
}

struct ClientIo {
    /// One descriptor serves both directions: calls are serialized by the
    /// client's mutex and strictly write-then-read, and writes go through
    /// [`BufReader::get_mut`] (duplicating the fd with `try_clone` would
    /// double the descriptor cost of a 10k-connection population).
    stream: BufReader<TcpStream>,
    /// `Some` once the encrypted-transport handshake completed; every
    /// outbound frame payload is then sealed and every inbound one opened.
    channel: Option<Box<crypto::channel::DuplexChannel>>,
}

impl ClientIo {
    fn send(&mut self, bytes: &[u8]) -> GdprResult<()> {
        self.stream
            .get_mut()
            .write_all(bytes)
            .map_err(|e| io_err("send", e))
    }

    /// Encode (and, on an encrypted transport, seal) one request payload
    /// into its wire frame.
    fn frame_bytes(&mut self, plaintext: &[u8]) -> GdprResult<Vec<u8>> {
        let mut buf = Vec::new();
        match &mut self.channel {
            Some(channel) => wire::write_frame(&mut buf, &channel.seal(plaintext)),
            None => wire::write_frame(&mut buf, plaintext),
        }
        .map_err(|e| io_err("send", e))?;
        Ok(buf)
    }

    /// Read one frame and open it when the transport is encrypted.
    /// `Ok(None)` is a clean server close.
    fn recv_frame(&mut self) -> GdprResult<Option<Vec<u8>>> {
        let max = wire::MAX_FRAME
            + if self.channel.is_some() {
                secure::SEAL_OVERHEAD
            } else {
                0
            };
        let Some(payload) =
            wire::read_frame(&mut self.stream, max).map_err(|e| io_err("receive", e))?
        else {
            return Ok(None);
        };
        match &mut self.channel {
            Some(channel) => channel
                .open(&payload)
                .map(Some)
                .map_err(|e| io_err("open sealed record", e)),
            None => Ok(Some(payload)),
        }
    }
}

/// Run the client half of the [`secure`] handshake. Rejects any answer
/// that is not a well-formed server hello — in particular a plaintext
/// server's protocol-error response — so an encrypted client can never be
/// silently downgraded to plaintext.
fn client_handshake(
    stream: &mut BufReader<TcpStream>,
    key: &str,
) -> GdprResult<crypto::channel::DuplexChannel> {
    let client_random = secure::session_random();
    let hello = secure::encode_hello(secure::ROLE_CLIENT, &client_random);
    wire::write_frame(stream.get_mut(), &hello).map_err(|e| io_err("handshake send", e))?;
    let ack = wire::read_frame(stream, wire::MAX_FRAME)
        .map_err(|e| io_err("handshake receive", e))?
        .ok_or_else(|| {
            io_err(
                "handshake",
                "server closed during handshake (wrong pre-shared key, or no --encrypt?)",
            )
        })?;
    let server_random = secure::decode_hello(&ack, secure::ROLE_SERVER).map_err(|e| {
        io_err(
            "handshake",
            format!(
                "{e} — refusing to continue: the endpoint did not complete the \
                 encrypted handshake (plaintext downgrade rejected)"
            ),
        )
    })?;
    Ok(secure::client_channel(key, &client_random, &server_random))
}

impl GdprClient {
    /// Connect to `addr` (`host:port`), following `GDPR_ENCRYPT` /
    /// `GDPR_ENCRYPT_KEY` for the transport — the same environment the
    /// server's `ServerConfig::default` reads, so suites flip both ends
    /// together.
    pub fn connect(addr: &str) -> GdprResult<GdprClient> {
        Self::connect_with(addr, secure::encrypt_key_from_env().as_deref())
    }

    /// Connect in plaintext regardless of environment.
    pub fn connect_plain(addr: &str) -> GdprResult<GdprClient> {
        Self::connect_with(addr, None)
    }

    /// Connect over the encrypted transport with `key` (the server's
    /// pre-shared key; `None` uses the default). Fails loudly if the
    /// endpoint does not complete the handshake.
    pub fn connect_encrypted(addr: &str, key: Option<&str>) -> GdprResult<GdprClient> {
        Self::connect_with(addr, Some(key.unwrap_or(secure::DEFAULT_PSK)))
    }

    /// Connect with an explicit transport choice: `Some(key)` runs the
    /// encrypted handshake before the first op, `None` stays plaintext.
    pub fn connect_with(addr: &str, encrypt_key: Option<&str>) -> GdprResult<GdprClient> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).ok();
        let mut stream = BufReader::new(stream);
        let channel = match encrypt_key {
            Some(key) => Some(Box::new(client_handshake(&mut stream, key)?)),
            None => None,
        };
        Ok(GdprClient {
            io: Mutex::new(ClientIo { stream, channel }),
            seq: AtomicU64::new(0),
            tenant: TenantId::default(),
        })
    }

    /// Whether this connection runs the encrypted transport.
    pub fn is_encrypted(&self) -> bool {
        self.io.lock().channel.is_some()
    }

    /// Scope this client's control requests to `tenant`.
    pub fn set_tenant(&mut self, tenant: TenantId) {
        self.tenant = tenant;
    }

    /// The tenant this client's control requests run as.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    fn roundtrip(&self, body: &RequestBody) -> GdprResult<ResponseBody> {
        self.roundtrip_as(&self.tenant, body)
    }

    fn roundtrip_as(&self, tenant: &TenantId, body: &RequestBody) -> GdprResult<ResponseBody> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut io = self.io.lock();
        let frame = io.frame_bytes(&wire::encode_request(seq, tenant, body))?;
        io.send(&frame)?;
        let payload = io
            .recv_frame()?
            .ok_or_else(|| io_err("receive", "server closed the connection"))?;
        let (got_seq, response) =
            wire::decode_response(&payload).map_err(|e| io_err("decode", e))?;
        if got_seq != seq {
            // An out-of-order response would mis-attribute personal data
            // across requests; fail the call loudly instead.
            return Err(io_err(
                "sequencing",
                format!("response seq {got_seq} for request {seq}"),
            ));
        }
        Ok(response)
    }

    /// Execute one GDPR query. GDPR-layer errors decode back to the exact
    /// [`GdprError`] the in-process engine would have returned.
    pub fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        let tenant = session.tenant.clone();
        match self.roundtrip_as(
            &tenant,
            &RequestBody::Execute(session.clone(), query.clone()),
        )? {
            ResponseBody::Response(response) => Ok(response),
            ResponseBody::Error(error) => Err(error),
            ResponseBody::Protocol(msg) => Err(io_err("protocol", msg)),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// Pipeline a batch: write every request, then read every response (in
    /// order, seq-verified). One round of network buffering instead of
    /// `batch.len()` round trips. The server executes the whole burst as a
    /// single engine-side batch.
    pub fn pipeline(
        &self,
        batch: &[(Session, GdprQuery)],
    ) -> GdprResult<Vec<GdprResult<GdprResponse>>> {
        self.pipeline_windowed(batch, batch.len().max(1))
    }

    /// [`Self::pipeline`] with a bounded in-flight window: at most
    /// `window` requests are unanswered at any moment. The window is
    /// primed as one burst; each response read refills one slot. This is
    /// the shape of a real pipelining workload (the bench depth sweep),
    /// and it bounds client-side memory for arbitrarily long batches.
    pub fn pipeline_windowed(
        &self,
        batch: &[(Session, GdprQuery)],
        window: usize,
    ) -> GdprResult<Vec<GdprResult<GdprResponse>>> {
        let window = window.max(1);
        let mut io = self.io.lock();
        let seqs: Vec<u64> = batch
            .iter()
            .map(|_| self.seq.fetch_add(1, Ordering::Relaxed))
            .collect();
        // Frames are built (and on an encrypted transport sealed) at
        // write time, not up front: record sequence numbers must follow
        // the actual send order as responses refill the window.
        let frame_for = |io: &mut ClientIo, i: usize| -> GdprResult<Vec<u8>> {
            let (session, query) = &batch[i];
            let body = RequestBody::Execute(session.clone(), query.clone());
            io.frame_bytes(&wire::encode_request(seqs[i], &session.tenant, &body))
        };
        // Prime the window as one buffered burst: the wire carries it in
        // as few segments as possible.
        let prime = batch.len().min(window);
        let mut burst = Vec::new();
        for i in 0..prime {
            let frame = frame_for(&mut io, i)?;
            burst.extend(frame);
        }
        io.send(&burst)?;
        let mut next_write = prime;
        let mut out = Vec::with_capacity(batch.len());
        for &expected_seq in &seqs {
            let payload = io
                .recv_frame()?
                .ok_or_else(|| io_err("receive", "server closed mid-pipeline"))?;
            let (seq, response) =
                wire::decode_response(&payload).map_err(|e| io_err("decode", e))?;
            if seq != expected_seq {
                return Err(io_err(
                    "sequencing",
                    format!("pipelined response seq {seq}, expected {expected_seq}"),
                ));
            }
            out.push(match response {
                ResponseBody::Response(resp) => Ok(resp),
                ResponseBody::Error(error) => Err(error),
                other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
            });
            if next_write < batch.len() {
                let frame = frame_for(&mut io, next_write)?;
                io.send(&frame)?;
                next_write += 1;
            }
        }
        Ok(out)
    }

    pub fn features(&self) -> GdprResult<FeatureReport> {
        match self.roundtrip(&RequestBody::Features)? {
            ResponseBody::Features(report) => Ok(report),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn space_report(&self) -> GdprResult<SpaceReport> {
        match self.roundtrip(&RequestBody::SpaceReport)? {
            ResponseBody::Space(space) => Ok(space),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn record_count(&self) -> GdprResult<usize> {
        match self.roundtrip(&RequestBody::RecordCount)? {
            ResponseBody::Count(n) => Ok(n as usize),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    pub fn server_name(&self) -> GdprResult<String> {
        match self.roundtrip(&RequestBody::Name)? {
            ResponseBody::Name(name) => Ok(name),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// Echo probe; verifies framing and liveness.
    pub fn ping(&self, blob: &[u8]) -> GdprResult<Vec<u8>> {
        match self.roundtrip(&RequestBody::Ping(blob.to_vec()))? {
            ResponseBody::Pong(echo) => Ok(echo),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// This connection's (and the server's) counters.
    pub fn conn_stats(&self) -> GdprResult<StatsSnapshot> {
        match self.roundtrip(&RequestBody::ConnStats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }

    /// The server's full telemetry snapshot: per-opcode op/error counts and
    /// latency histograms, per-stage pipeline histograms, and the flat
    /// server/security counters.
    pub fn metrics(&self) -> GdprResult<MetricsReport> {
        self.metrics_for(&self.tenant)
    }

    /// [`Self::metrics`] scoped to an explicit tenant: the per-opcode
    /// table covers that tenant's traffic alone.
    pub fn metrics_for(&self, tenant: &TenantId) -> GdprResult<MetricsReport> {
        match self.roundtrip_as(tenant, &RequestBody::GetMetrics)? {
            ResponseBody::Metrics(report) => Ok(report),
            other => Err(io_err("protocol", format!("unexpected response {other:?}"))),
        }
    }
}

/// A [`GdprConnector`] over the wire: a pool of [`GdprClient`] connections
/// to one server, picked round-robin per call so up to `pool size` requests
/// proceed concurrently — the remote analogue of `--threads N` driving an
/// in-process engine.
pub struct RemoteConnector {
    clients: Vec<GdprClient>,
    next: AtomicUsize,
    /// The served connector's name, fetched once at connect (`name()`
    /// returns `&str`, so it cannot go over the wire per call).
    name: String,
    /// When serving in-process, the connector owns the server so the
    /// endpoint lives exactly as long as its clients.
    server: Option<GdprServer>,
}

impl RemoteConnector {
    /// Connect one client to `addr`.
    pub fn connect(addr: &str) -> GdprResult<RemoteConnector> {
        Self::connect_pool(addr, 1)
    }

    /// Connect a pool of `clients` connections to `addr`, with the
    /// transport chosen by `GDPR_ENCRYPT` / `GDPR_ENCRYPT_KEY`.
    pub fn connect_pool(addr: &str, clients: usize) -> GdprResult<RemoteConnector> {
        Self::connect_pool_with(addr, clients, secure::encrypt_key_from_env().as_deref())
    }

    /// Connect a pool over the encrypted transport (`None` key = default
    /// pre-shared key).
    pub fn connect_pool_encrypted(
        addr: &str,
        clients: usize,
        key: Option<&str>,
    ) -> GdprResult<RemoteConnector> {
        Self::connect_pool_with(addr, clients, Some(key.unwrap_or(secure::DEFAULT_PSK)))
    }

    /// Connect a pool with an explicit transport choice.
    pub fn connect_pool_with(
        addr: &str,
        clients: usize,
        encrypt_key: Option<&str>,
    ) -> GdprResult<RemoteConnector> {
        let clients = (0..clients.max(1))
            .map(|_| GdprClient::connect_with(addr, encrypt_key))
            .collect::<GdprResult<Vec<_>>>()?;
        let name = clients[0].server_name()?;
        Ok(RemoteConnector {
            clients,
            next: AtomicUsize::new(0),
            name,
            server: None,
        })
    }

    /// Serve `engine` on an ephemeral loopback port and connect a pool to
    /// it — every in-process connector variant becomes a networked one in
    /// one call. The server shuts down when the connector drops.
    pub fn serve_in_process(engine: EngineHandle, clients: usize) -> GdprResult<RemoteConnector> {
        Self::serve_in_process_with(engine, clients, ServerConfig::default())
    }

    /// [`Self::serve_in_process`] with explicit server tuning. The pool's
    /// transport follows `config.encrypt`, so an encrypted in-process
    /// server always gets matching clients.
    pub fn serve_in_process_with(
        engine: EngineHandle,
        clients: usize,
        config: ServerConfig,
    ) -> GdprResult<RemoteConnector> {
        let encrypt = config.encrypt.clone();
        let server =
            GdprServer::bind(engine, "127.0.0.1:0", config).map_err(|e| io_err("bind", e))?;
        let mut connector = Self::connect_pool_with(
            &server.local_addr().to_string(),
            clients,
            encrypt.as_deref(),
        )?;
        connector.server = Some(server);
        Ok(connector)
    }

    /// Scope every pooled connection's control requests to `tenant` —
    /// what `gdprbench --tenant` applies after connecting.
    pub fn set_tenant(&mut self, tenant: &TenantId) {
        for client in &mut self.clients {
            client.set_tenant(tenant.clone());
        }
    }

    /// The pooled connections.
    pub fn clients(&self) -> &[GdprClient] {
        &self.clients
    }

    /// One client, round-robin.
    pub fn client(&self) -> &GdprClient {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.clients.len();
        &self.clients[i]
    }

    /// The in-process server, when this connector owns one.
    pub fn server(&self) -> Option<&GdprServer> {
        self.server.as_ref()
    }
}

impl GdprConnector for RemoteConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.client().execute(session, query)
    }

    /// A batch rides one connection as one pipelined burst — the server
    /// executes it as a single engine-side batch. On a transport failure
    /// the whole batch reports that failure per op (per-op GDPR errors
    /// still arrive individually via the pipeline).
    fn execute_batch(&self, ops: Vec<(Session, GdprQuery)>) -> Vec<GdprResult<GdprResponse>> {
        match self.client().pipeline(&ops) {
            Ok(results) => results,
            Err(error) => ops.iter().map(|_| Err(error.clone())).collect(),
        }
    }

    // The introspection methods have no error channel in the trait, and
    // inventing answers for an unreachable server would be worse than
    // failing: a fabricated `record_count() == 0` reads as "all personal
    // data erased", and a default `features()` reads as a real (fully
    // non-compliant) posture. Panic with context instead; callers that
    // need fallible access use the same calls on [`Self::client`].

    fn features(&self) -> FeatureReport {
        self.client()
            .features()
            .expect("remote features: server unreachable")
    }

    fn space_report(&self) -> SpaceReport {
        self.client()
            .space_report()
            .expect("remote space report: server unreachable")
    }

    fn record_count(&self) -> usize {
        self.client()
            .record_count()
            .expect("remote record count: server unreachable")
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// The server engine's per-opcode table, fetched over the wire via
    /// `GetMetrics`; `None` when the server is unreachable rather than a
    /// fabricated empty table.
    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.client()
            .metrics()
            .ok()
            .map(|report| gdpr_core::telemetry::OpTelemetrySnapshot { ops: report.ops })
    }

    /// One tenant's table, via a tenant-scoped `GetMetrics`.
    fn op_telemetry_for(
        &self,
        tenant: &TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.client()
            .metrics_for(tenant)
            .ok()
            .map(|report| gdpr_core::telemetry::OpTelemetrySnapshot { ops: report.ops })
    }
}
