//! The disk-native connector: the compliance engine over
//! [`pagestore::PageStore`] — slotted 4 KiB pages, buffer pool, B+tree,
//! and a checksummed WAL, so the dataset no longer has to fit in RAM.
//!
//! Semantics deliberately mirror the Redis-shaped connector byte for byte
//! (lazy reap-on-access, inclusive deadline boundary, DBSIZE counting
//! unreaped expired keys): the store-equivalence proptest in
//! `tests/proptests.rs` holds the two backends to identical responses
//! over random op mixes. `persistence_generation` is the WAL's logical
//! commit sequence, so the PR-5 index-snapshot layer works unchanged.
//!
//! Variants, mirroring the kvstore pair:
//!
//! * [`DiskConnector::new`] — scan-based predicate resolution.
//! * [`DiskConnector::with_metadata_index`] — the headline `disk` variant.
//! * [`ShardedDiskConnector`] — N stores (each its own directory) behind
//!   the hash-partitioned router (`disk-sharded`).

use gdpr_core::audit::AuditTrail;
use gdpr_core::compliance::{FeatureReport, FeatureSupport};
use gdpr_core::connector::SpaceReport;
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::metaindex::MetadataIndex;
use gdpr_core::query::GdprQuery;
use gdpr_core::record::PersonalRecord;
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::sharded::ShardedEngine;
use gdpr_core::store::{ExpiryListener, RecordStore};
use gdpr_core::wire;
use gdpr_core::{ComplianceEngine, GdprConnector};
use pagestore::{PageStore, PageStoreConfig};
use std::sync::Arc;

/// [`RecordStore`] over one paged store. Records travel in the same wire
/// text format as every other backend; the page store seals the bytes at
/// rest and tracks the TTL deadline natively per leaf entry.
pub struct DiskStore {
    store: Arc<PageStore>,
    variant_name: &'static str,
}

impl DiskStore {
    pub fn over(store: Arc<PageStore>, variant_name: &'static str) -> DiskStore {
        DiskStore {
            store,
            variant_name,
        }
    }

    pub fn page_store(&self) -> &Arc<PageStore> {
        &self.store
    }

    fn store_err(e: pagestore::Error) -> GdprError {
        GdprError::Store(e.to_string())
    }

    fn deadline_from_ttl(&self, record: &PersonalRecord) -> Option<u64> {
        record
            .metadata
            .ttl
            .map(|ttl| self.store.clock().now().as_millis() + ttl.as_millis() as u64)
    }
}

impl RecordStore for DiskStore {
    fn clock(&self) -> clock::SharedClock {
        self.store.clock()
    }

    fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
        match self.store.get(key).map_err(Self::store_err)? {
            Some(bytes) => {
                let text = std::str::from_utf8(&bytes)
                    .map_err(|e| GdprError::InvalidRecord(e.to_string()))?;
                Ok(Some(wire::parse(text)?))
            }
            None => Ok(None),
        }
    }

    /// Insert, arming the native per-entry deadline from the declared TTL.
    /// The page store's collision probe lazily reaps an expired occupant,
    /// exactly like the kvstore EXISTS probe.
    fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
        let value = wire::serialize(record);
        let deadline = self.deadline_from_ttl(record);
        let inserted = self
            .store
            .insert(&record.key, value.as_bytes(), deadline)
            .map_err(Self::store_err)?;
        if !inserted {
            return Err(GdprError::AlreadyExists(record.key.clone()));
        }
        Ok(())
    }

    /// Rewrite in place. When the TTL itself did not change, the original
    /// absolute deadline is carried over exactly (millisecond-preserving,
    /// like the kvstore's SET + EXPIREAT pair).
    fn rewrite(&self, record: &PersonalRecord, ttl_changed: bool) -> GdprResult<()> {
        let value = wire::serialize(record);
        let deadline = if ttl_changed {
            self.deadline_from_ttl(record)
        } else {
            self.store
                .deadline_ms(&record.key)
                .map_err(Self::store_err)?
        };
        self.store
            .upsert(&record.key, value.as_bytes(), deadline)
            .map_err(Self::store_err)
    }

    fn delete(&self, key: &str) -> GdprResult<bool> {
        self.store.remove(key).map_err(Self::store_err)
    }

    /// Insert under a known absolute deadline — the shard-rebalance path;
    /// a migrated record keeps its exact remaining lifetime.
    fn put_with_deadline(
        &self,
        record: &PersonalRecord,
        deadline_ms: Option<u64>,
    ) -> GdprResult<()> {
        let value = wire::serialize(record);
        let inserted = self
            .store
            .insert(&record.key, value.as_bytes(), deadline_ms)
            .map_err(Self::store_err)?;
        if !inserted {
            return Err(GdprError::AlreadyExists(record.key.clone()));
        }
        Ok(())
    }

    /// Ordered leaf-chain walk. Like the kvstore scan, expired records the
    /// walk encounters are reaped (listener notified), not returned.
    fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
        let pairs = self.store.scan().map_err(Self::store_err)?;
        let mut records = Vec::with_capacity(pairs.len());
        for (_, bytes) in pairs {
            if let Ok(text) = std::str::from_utf8(&bytes) {
                if let Ok(record) = wire::parse(text) {
                    records.push(record);
                }
            }
        }
        Ok(records)
    }

    fn purge_expired(&self) -> GdprResult<usize> {
        self.store.purge_expired().map_err(Self::store_err)
    }

    /// Past-due keys without reaping — a pure leaf-chain walk over the
    /// native deadlines.
    fn expired_keys(&self) -> GdprResult<Vec<String>> {
        self.store.expired_keys().map_err(Self::store_err)
    }

    fn deadline_ms(&self, key: &str) -> Option<u64> {
        self.store.deadline_ms(key).ok().flatten()
    }

    /// The WAL's logical commit sequence: advanced by every committed
    /// mutation (lazy reaps included — they are real transactions here)
    /// and reproduced exactly by WAL recovery.
    fn persistence_generation(&self) -> Option<u64> {
        Some(self.store.generation())
    }

    fn on_expiry(&self, listener: ExpiryListener) {
        self.store
            .set_expiry_listener(Arc::new(move |key: &str| listener(key)));
    }

    fn space_report(&self) -> SpaceReport {
        let personal: usize = self
            .scan()
            .map(|records| records.iter().map(PersonalRecord::data_bytes).sum())
            .unwrap_or(0);
        SpaceReport {
            personal_data_bytes: personal,
            total_bytes: self.store.disk_bytes() as usize,
        }
    }

    fn record_count(&self) -> usize {
        self.store.record_count()
    }

    fn features(&self) -> FeatureReport {
        FeatureReport {
            // Native per-entry deadlines exist but reaping is lazy, like
            // stock Redis.
            timely_deletion: FeatureSupport::Unsupported,
            monitoring_and_logging: FeatureSupport::Unsupported,
            metadata_indexing: FeatureSupport::Retrofitted,
            // Values are sealed at rest (ChaCha20 + tag) by default, but
            // transit encryption is the transport layer's business, so
            // at-rest-only reports Unsupported parity with the kvstore
            // default config — the conformance battery compares variants.
            encryption: FeatureSupport::Unsupported,
            access_control: FeatureSupport::Retrofitted,
        }
    }

    fn name(&self) -> &str {
        self.variant_name
    }
}

/// GDPR connector over one [`PageStore`].
pub struct DiskConnector {
    engine: ComplianceEngine<DiskStore>,
}

impl DiskConnector {
    /// Wrap an open page store, scan-based.
    pub fn new(store: Arc<PageStore>) -> Self {
        DiskConnector {
            engine: ComplianceEngine::new(DiskStore::over(store, "disk-scan")),
        }
    }

    /// Wrap an open page store with the engine-maintained metadata index —
    /// the headline `disk` variant.
    pub fn with_metadata_index(store: Arc<PageStore>) -> GdprResult<Self> {
        Ok(DiskConnector {
            engine: ComplianceEngine::with_metadata_index(DiskStore::over(store, "disk"))?,
        })
    }

    /// As [`Self::with_metadata_index`], with index-snapshot recovery and
    /// persistence at `path` — trusted when the image's generation stamp
    /// matches the store's WAL commit sequence.
    pub fn with_metadata_index_snapshot(
        store: Arc<PageStore>,
        path: impl Into<std::path::PathBuf>,
    ) -> GdprResult<Self> {
        Ok(DiskConnector {
            engine: ComplianceEngine::with_metadata_index_snapshot(
                DiskStore::over(store, "disk"),
                path,
            )?,
        })
    }

    /// How the index came up (snapshot-aware variant only).
    pub fn index_recovery(&self) -> Option<&gdpr_core::IndexRecovery> {
        self.engine.index_recovery()
    }

    /// Persist the index snapshot now (snapshot-aware variant only).
    pub fn write_index_snapshot(&self) -> GdprResult<usize> {
        self.engine.write_index_snapshot()
    }

    /// Graceful close: snapshot the index when so configured, then
    /// checkpoint the store (flush WAL images into the data file).
    pub fn close(&self) -> GdprResult<usize> {
        let written = self.engine.close()?;
        self.store()
            .checkpoint()
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Ok(written)
    }

    /// The underlying page store (for experiment harnesses and the
    /// eviction/fault suites).
    pub fn store(&self) -> &Arc<PageStore> {
        self.engine.store().page_store()
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditTrail {
        self.engine.audit()
    }

    /// The engine's metadata index (present on the indexed variants).
    pub fn metadata_index(&self) -> Option<&Arc<MetadataIndex>> {
        self.engine.metadata_index()
    }
}

impl GdprConnector for DiskConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.engine.execute(session, query)
    }

    fn features(&self) -> FeatureReport {
        self.engine.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.engine.space_report()
    }

    fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    fn name(&self) -> &str {
        self.engine.name()
    }

    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry()
    }

    fn op_telemetry_for(
        &self,
        tenant: &gdpr_core::tenant::TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, gdpr_core::telemetry::OpTelemetrySnapshot)> {
        self.engine.tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &gdpr_core::tenant::TenantId) -> GdprResult<()> {
        self.engine.provision_tenant(tenant)
    }

    fn close(&self) -> GdprResult<()> {
        DiskConnector::close(self).map(|_| ())
    }
}

/// GDPR connector hash-partitioning records across N page stores, each in
/// its own directory with its own WAL, buffer pool, and per-shard index.
pub struct ShardedDiskConnector {
    engine: ShardedEngine<DiskStore>,
}

impl ShardedDiskConnector {
    /// Wrap open stores, one per shard, scan-based.
    pub fn new(stores: Vec<Arc<PageStore>>) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| DiskStore::over(s, "disk-scan"))
            .collect();
        Ok(ShardedDiskConnector {
            engine: ShardedEngine::new(backends)?.named("disk-sharded-scan"),
        })
    }

    /// Per-shard engine-maintained metadata indexes — the `disk-sharded`
    /// variant.
    pub fn with_metadata_index(stores: Vec<Arc<PageStore>>) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| DiskStore::over(s, "disk"))
            .collect();
        Ok(ShardedDiskConnector {
            engine: ShardedEngine::with_metadata_index(backends)?.named("disk-sharded"),
        })
    }

    /// Snapshot-aware sharded open: shard *i* recovers its index from
    /// `dir/metaindex-shard-i.snap` when the image matches the shard's
    /// WAL generation and topology.
    pub fn with_metadata_index_snapshots(
        stores: Vec<Arc<PageStore>>,
        dir: impl AsRef<std::path::Path>,
    ) -> GdprResult<Self> {
        let backends = stores
            .into_iter()
            .map(|s| DiskStore::over(s, "disk"))
            .collect();
        Ok(ShardedDiskConnector {
            engine: ShardedEngine::with_metadata_index_snapshots(backends, dir)?
                .named("disk-sharded"),
        })
    }

    /// Open `shards` fresh stores under `dir/shard-i/`, indexed, sharing
    /// one clock.
    pub fn open_in(
        dir: impl AsRef<std::path::Path>,
        shards: usize,
        config: PageStoreConfig,
        clock: clock::SharedClock,
    ) -> GdprResult<Self> {
        let stores = open_store_fleet(dir, shards, config, clock)?;
        Self::with_metadata_index(stores)
    }

    /// How one shard's index came up (snapshot-aware variant only).
    pub fn index_recovery(&self, shard: usize) -> Option<&gdpr_core::IndexRecovery> {
        self.engine.shards()[shard].index_recovery()
    }

    /// Persist every shard's index snapshot now.
    pub fn write_index_snapshots(&self) -> GdprResult<usize> {
        self.engine.write_index_snapshots()
    }

    /// Graceful close: snapshot every shard's index when so configured,
    /// then checkpoint every shard's store.
    pub fn close(&self) -> GdprResult<usize> {
        let written = self.engine.close()?;
        for i in 0..self.shard_count() {
            self.store(i)
                .checkpoint()
                .map_err(|e| GdprError::Store(e.to_string()))?;
        }
        Ok(written)
    }

    pub fn engine(&self) -> &ShardedEngine<DiskStore> {
        &self.engine
    }

    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    pub fn store(&self, shard: usize) -> &Arc<PageStore> {
        self.engine.shards()[shard].store().page_store()
    }

    pub fn metadata_index(&self, shard: usize) -> Option<&Arc<MetadataIndex>> {
        self.engine.shards()[shard].metadata_index()
    }

    pub fn audit(&self) -> &AuditTrail {
        self.engine.audit()
    }

    pub fn verify_placement(&self) -> GdprResult<()> {
        self.engine.verify_placement()
    }

    pub fn rebalance(&self) -> GdprResult<usize> {
        self.engine.rebalance()
    }
}

/// `n` page stores under `dir/shard-i/`, sharing one clock instance (the
/// sharded engine requires comparable timestamps fleet-wide).
pub fn open_store_fleet(
    dir: impl AsRef<std::path::Path>,
    n: usize,
    config: PageStoreConfig,
    clock: clock::SharedClock,
) -> GdprResult<Vec<Arc<PageStore>>> {
    (0..n.max(1))
        .map(|i| {
            PageStore::open(
                dir.as_ref().join(format!("shard-{i}")),
                config.clone(),
                clock.clone(),
            )
            .map_err(|e| GdprError::Store(e.to_string()))
        })
        .collect()
}

impl GdprConnector for ShardedDiskConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.engine.execute(session, query)
    }

    fn features(&self) -> FeatureReport {
        self.engine.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.engine.space_report()
    }

    fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    fn name(&self) -> &str {
        GdprConnector::name(&self.engine)
    }

    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry()
    }

    fn op_telemetry_for(
        &self,
        tenant: &gdpr_core::tenant::TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, gdpr_core::telemetry::OpTelemetrySnapshot)> {
        self.engine.tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &gdpr_core::tenant::TenantId) -> GdprResult<()> {
        self.engine.provision_tenant(tenant)
    }

    fn close(&self) -> GdprResult<()> {
        ShardedDiskConnector::close(self).map(|_| ())
    }
}
