//! The PostgreSQL-shaped GDPR backend (§5.2 of the paper).
//!
//! One `personal_data` table holds everything: the key, the data payload,
//! and one column per metadata attribute (`text[]` for the multi-valued
//! ones). TTL is materialized twice, as the paper's retrofit does: the
//! declared duration (`ttl_secs`, reported back to customers per G13.2a)
//! and the absolute `expiry` timestamp the 1-second sweep daemon deletes by.
//!
//! All GDPR policy (authorization, visibility, audit, dispatch) lives in
//! [`gdpr_core::ComplianceEngine`]; this module is storage mechanism only.
//! Unlike the key-value backend it implements the engine's *predicate
//! pushdown* hooks ([`gdpr_core::RecordStore::select`] /
//! [`gdpr_core::RecordStore::delete_matching`]), translating each
//! [`RecordPredicate`] into a native relstore [`Predicate`] so the two
//! paper configurations fall out of the schema alone:
//!
//! * **baseline** — only the primary key is indexed; every metadata query
//!   is a sequential scan (Figure 5b),
//! * **metadata-index** — a secondary index on every metadata column
//!   (inverted for the array ones), turning those scans into probes
//!   (Figure 5c) at the Table 3 space cost (3.5× → 5.95×).

use gdpr_core::audit::AuditTrail;
use gdpr_core::compliance::{FeatureReport, FeatureSupport};
use gdpr_core::connector::SpaceReport;
use gdpr_core::engine::ComplianceEngine;
use gdpr_core::error::{GdprError, GdprResult};
use gdpr_core::query::GdprQuery;
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::response::GdprResponse;
use gdpr_core::role::Session;
use gdpr_core::store::{RecordPredicate, RecordStore};
use gdpr_core::GdprConnector;
use relstore::ttl::{SweepTarget, TtlDaemon};
use relstore::{ColumnType, Database, Datum, Predicate, RelConfig, Statement, StatementResult};
use std::sync::Arc;
use std::time::Duration;

/// The personal-data table name.
pub const TABLE: &str = "personal_data";

/// [`RecordStore`] over [`relstore::Database`]: the `personal_data` table
/// with full predicate pushdown.
pub struct PostgresStore {
    db: Arc<Database>,
    metadata_indices: bool,
    variant_name: &'static str,
}

impl PostgresStore {
    fn exec(&self, stmt: &Statement) -> GdprResult<StatementResult> {
        self.db
            .execute(stmt)
            .map_err(|e| GdprError::Store(e.to_string()))
    }

    fn now_ms(&self) -> u64 {
        self.db.clock().now().as_millis()
    }

    /// Create the `personal_data` table. Idempotent: an existing table
    /// (the WAL-recovery reopen path, where DDL replayed already) is fine.
    fn create_table(&self) -> GdprResult<()> {
        match self.db.execute(&Statement::CreateTable {
            table: TABLE.into(),
            columns: vec![
                ("key".into(), ColumnType::Text),
                ("data".into(), ColumnType::Text),
                ("pur".into(), ColumnType::TextArray),
                ("ttl_secs".into(), ColumnType::Int),
                ("expiry".into(), ColumnType::Timestamp),
                ("usr".into(), ColumnType::Text),
                ("obj".into(), ColumnType::TextArray),
                ("dec".into(), ColumnType::TextArray),
                ("shr".into(), ColumnType::TextArray),
                ("src".into(), ColumnType::Text),
            ],
            pk: "key".into(),
        }) {
            Ok(_) | Err(relstore::RelError::TableExists(_)) => Ok(()),
            Err(e) => Err(GdprError::Store(e.to_string())),
        }
    }

    /// Create the metadata secondary indices. Idempotent, as
    /// [`Self::create_table`].
    fn create_metadata_indices(&self) -> GdprResult<()> {
        let specs: [(&str, &str, bool); 7] = [
            ("usr_idx", "usr", false),
            ("expiry_idx", "expiry", false),
            ("src_idx", "src", false),
            ("pur_idx", "pur", true),
            ("obj_idx", "obj", true),
            ("dec_idx", "dec", true),
            ("shr_idx", "shr", true),
        ];
        for (index, column, inverted) in specs {
            match self.db.execute(&Statement::CreateIndex {
                table: TABLE.into(),
                index: index.into(),
                column: column.into(),
                inverted,
            }) {
                Ok(_) | Err(relstore::RelError::IndexExists(_)) => {}
                Err(e) => return Err(GdprError::Store(e.to_string())),
            }
        }
        Ok(())
    }

    fn to_row(&self, record: &PersonalRecord) -> Vec<Datum> {
        let m = &record.metadata;
        let (ttl_secs, expiry) = match m.ttl {
            Some(ttl) => (
                Datum::Int(ttl.as_secs() as i64),
                Datum::Timestamp(self.now_ms() + ttl.as_millis() as u64),
            ),
            None => (Datum::Null, Datum::Null),
        };
        vec![
            Datum::Text(record.key.clone()),
            Datum::Text(record.data.clone()),
            Datum::TextArray(m.purposes.clone()),
            ttl_secs,
            expiry,
            Datum::Text(m.user.clone()),
            Datum::TextArray(m.objections.clone()),
            Datum::TextArray(m.decisions.clone()),
            Datum::TextArray(m.sharing.clone()),
            Datum::Text(m.source.clone()),
        ]
    }

    fn from_row(row: &[Datum]) -> GdprResult<PersonalRecord> {
        let text = |i: usize| -> String {
            row.get(i)
                .and_then(Datum::as_text)
                .unwrap_or_default()
                .to_string()
        };
        let array = |i: usize| -> Vec<String> {
            row.get(i)
                .and_then(Datum::as_text_array)
                .map(<[String]>::to_vec)
                .unwrap_or_default()
        };
        let ttl = row
            .get(3)
            .and_then(Datum::as_int)
            .map(|secs| Duration::from_secs(secs.max(0) as u64));
        Ok(PersonalRecord {
            key: text(0),
            data: text(1),
            metadata: Metadata {
                purposes: array(2),
                ttl,
                user: text(5),
                objections: array(6),
                decisions: array(7),
                sharing: array(8),
                source: text(9),
            },
        })
    }

    fn select_records(&self, pred: Predicate) -> GdprResult<Vec<PersonalRecord>> {
        let result = self.exec(&Statement::Select {
            table: TABLE.into(),
            pred,
        })?;
        result.rows().iter().map(|r| Self::from_row(r)).collect()
    }

    fn delete_where(&self, pred: Predicate) -> GdprResult<usize> {
        let result = self.exec(&Statement::Delete {
            table: TABLE.into(),
            pred,
        })?;
        Ok(result.rows_affected())
    }

    /// Translate an engine predicate into a native relational one — this is
    /// the pushdown boundary: everything below it runs on relstore's
    /// planner and (in the `-mi` variant) its secondary indexes.
    fn translate(pred: &RecordPredicate) -> Predicate {
        match pred {
            RecordPredicate::User(u) => Predicate::eq_text("usr", u),
            RecordPredicate::DeclaredPurpose(p) => Predicate::contains("pur", p),
            RecordPredicate::AllowsPurpose(p) => Predicate::And(vec![
                Predicate::contains("pur", p),
                Predicate::Not(Box::new(Predicate::contains("obj", p))),
            ]),
            RecordPredicate::NotObjecting(usage) => {
                Predicate::Not(Box::new(Predicate::contains("obj", usage)))
            }
            RecordPredicate::DecisionEligible => {
                Predicate::Not(Box::new(Predicate::contains("dec", Metadata::DEC_OPT_OUT)))
            }
            RecordPredicate::SharedWith(party) => Predicate::contains("shr", party),
        }
    }
}

impl RecordStore for PostgresStore {
    fn clock(&self) -> clock::SharedClock {
        self.db.clock().clone()
    }

    fn fetch(&self, key: &str) -> GdprResult<Option<PersonalRecord>> {
        let mut records = self.select_records(Predicate::eq_text("key", key))?;
        Ok(records.pop())
    }

    fn put(&self, record: &PersonalRecord) -> GdprResult<()> {
        let row = self.to_row(record);
        match self.db.execute(&Statement::Insert {
            table: TABLE.into(),
            row,
        }) {
            Ok(_) => Ok(()),
            Err(relstore::RelError::UniqueViolation { .. }) => {
                Err(GdprError::AlreadyExists(record.key.clone()))
            }
            Err(e) => Err(GdprError::Store(e.to_string())),
        }
    }

    /// Write back one record's metadata/data columns (expiry untouched
    /// unless `ttl_changed`).
    fn rewrite(&self, record: &PersonalRecord, ttl_changed: bool) -> GdprResult<()> {
        let m = &record.metadata;
        let mut assignments = vec![
            ("data".to_string(), Datum::Text(record.data.clone())),
            ("pur".to_string(), Datum::TextArray(m.purposes.clone())),
            ("usr".to_string(), Datum::Text(m.user.clone())),
            ("obj".to_string(), Datum::TextArray(m.objections.clone())),
            ("dec".to_string(), Datum::TextArray(m.decisions.clone())),
            ("shr".to_string(), Datum::TextArray(m.sharing.clone())),
            ("src".to_string(), Datum::Text(m.source.clone())),
        ];
        if ttl_changed {
            match m.ttl {
                Some(ttl) => {
                    assignments.push(("ttl_secs".into(), Datum::Int(ttl.as_secs() as i64)));
                    assignments.push((
                        "expiry".into(),
                        Datum::Timestamp(self.now_ms() + ttl.as_millis() as u64),
                    ));
                }
                None => {
                    assignments.push(("ttl_secs".into(), Datum::Null));
                    assignments.push(("expiry".into(), Datum::Null));
                }
            }
        }
        self.exec(&Statement::Update {
            table: TABLE.into(),
            pred: Predicate::eq_text("key", &record.key),
            assignments,
        })
        .map(|_| ())
    }

    fn delete(&self, key: &str) -> GdprResult<bool> {
        Ok(self.delete_where(Predicate::eq_text("key", key))? > 0)
    }

    fn scan(&self) -> GdprResult<Vec<PersonalRecord>> {
        self.select_records(Predicate::True)
    }

    fn purge_expired(&self) -> GdprResult<usize> {
        self.delete_where(Predicate::Le(
            "expiry".into(),
            Datum::Timestamp(self.now_ms()),
        ))
    }

    /// The database's WAL statement position — advanced by every write
    /// and reproduced exactly by WAL recovery, so an engine-side index
    /// snapshot stamped with it is trustworthy after a crash.
    fn persistence_generation(&self) -> Option<u64> {
        Some(self.db.mutation_generation())
    }

    fn select(&self, pred: &RecordPredicate) -> Option<GdprResult<Vec<PersonalRecord>>> {
        Some(self.select_records(Self::translate(pred)))
    }

    fn delete_matching(&self, pred: &RecordPredicate) -> Option<GdprResult<usize>> {
        Some(self.delete_where(Self::translate(pred)))
    }

    fn space_report(&self) -> SpaceReport {
        let personal = self
            .scan()
            .map(|records| records.iter().map(PersonalRecord::data_bytes).sum())
            .unwrap_or(0);
        // Total = heap + indices + WAL; the engine-side audit trail is
        // client state, not database size.
        SpaceReport {
            personal_data_bytes: personal,
            total_bytes: self.db.total_size_bytes() + self.db.wal_bytes() as usize,
        }
    }

    fn record_count(&self) -> usize {
        self.db
            .table(TABLE)
            .map(|t| t.read().row_count())
            .unwrap_or(0)
    }

    fn features(&self) -> FeatureReport {
        let config = self.db.config();
        FeatureReport {
            // No native row TTL; the sweep daemon retrofits it (§5.2).
            timely_deletion: FeatureSupport::Retrofitted,
            monitoring_and_logging: if config.log_statements && config.log_reads {
                FeatureSupport::Native // csvlog + row-level response logging
            } else {
                FeatureSupport::Unsupported
            },
            metadata_indexing: if self.metadata_indices {
                FeatureSupport::Native // built-in secondary indices
            } else {
                // Metadata queries still work (sequential scans), so the
                // capability is present even when no index backs it.
                FeatureSupport::Retrofitted
            },
            encryption: if config.encrypt_at_rest && config.encrypt_transit {
                FeatureSupport::Retrofitted // LUKS + SSL
            } else {
                FeatureSupport::Unsupported
            },
            access_control: FeatureSupport::Retrofitted, // engine-enforced
        }
    }

    fn name(&self) -> &str {
        self.variant_name
    }
}

/// GDPR connector over [`relstore::Database`]: the shared engine driving a
/// [`PostgresStore`] backend.
pub struct PostgresConnector {
    engine: ComplianceEngine<PostgresStore>,
}

impl PostgresConnector {
    /// Create the connector and its `personal_data` table over an open
    /// database (baseline: primary-key index only).
    pub fn new(db: Arc<Database>) -> GdprResult<Self> {
        let backend = PostgresStore {
            db,
            metadata_indices: false,
            variant_name: "postgres",
        };
        backend.create_table()?;
        Ok(PostgresConnector {
            engine: ComplianceEngine::new(backend),
        })
    }

    /// As [`Self::new`], then add a secondary index on every metadata
    /// column — the paper's metadata-index configuration.
    pub fn with_metadata_indices(db: Arc<Database>) -> GdprResult<Self> {
        let backend = PostgresStore {
            db,
            metadata_indices: true,
            variant_name: "postgres-mi",
        };
        backend.create_table()?;
        backend.create_metadata_indices()?;
        Ok(PostgresConnector {
            engine: ComplianceEngine::new(backend),
        })
    }

    /// As [`Self::new`], but the *engine* additionally maintains a
    /// snapshot-persistable [`gdpr_core::MetadataIndex`] over the table,
    /// recovered from the image at `path` (variant `postgres-emi`).
    /// Predicate reads still push down to the store's planner — the
    /// engine index earns its keep on the TTL purge path, whose
    /// deadline-ordered due set (with absolute deadlines) survives
    /// restarts in O(index) instead of a table rescan; it also exercises
    /// the generic snapshot machinery over the WAL-backed backend (the
    /// recovery suite's relational leg).
    pub fn with_engine_index_snapshot(
        db: Arc<Database>,
        path: impl Into<std::path::PathBuf>,
    ) -> GdprResult<Self> {
        let backend = PostgresStore {
            db,
            metadata_indices: false,
            variant_name: "postgres-emi",
        };
        backend.create_table()?;
        Ok(PostgresConnector {
            engine: ComplianceEngine::with_metadata_index_snapshot(backend, path)?,
        })
    }

    /// How the engine index came up (snapshot-aware variant only).
    pub fn index_recovery(&self) -> Option<&gdpr_core::IndexRecovery> {
        self.engine.index_recovery()
    }

    /// The engine's metadata index (snapshot-aware variant only).
    pub fn metadata_index(&self) -> Option<&Arc<gdpr_core::MetadataIndex>> {
        self.engine.metadata_index()
    }

    /// Graceful close: snapshot the engine index when so configured, and
    /// flush the WAL.
    pub fn close(&self) -> GdprResult<usize> {
        let written = self.engine.close()?;
        self.database()
            .sync_wal()
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Ok(written)
    }

    /// Open a fully compliant in-memory database and wrap it (baseline
    /// indexing).
    pub fn open_compliant() -> GdprResult<Self> {
        let db = Database::open(RelConfig::gdpr_compliant_in_memory())
            .map_err(|e| GdprError::Store(e.to_string()))?;
        Self::new(db)
    }

    /// The underlying database (for harnesses and daemons).
    pub fn database(&self) -> &Arc<Database> {
        &self.engine.store().db
    }

    /// The audit trail.
    pub fn audit(&self) -> &AuditTrail {
        self.engine.audit()
    }

    /// A TTL sweep daemon targeting the personal-data table (§5.2's
    /// 1-second expiry daemon). Call `start()` on the result, or
    /// `sweep_once()` from simulated-clock harnesses.
    pub fn ttl_daemon(&self) -> TtlDaemon {
        TtlDaemon::new(
            Arc::clone(&self.engine.store().db),
            vec![SweepTarget {
                table: TABLE.to_string(),
                expiry_column: "expiry".to_string(),
            }],
        )
    }
}

impl GdprConnector for PostgresConnector {
    fn execute(&self, session: &Session, query: &GdprQuery) -> GdprResult<GdprResponse> {
        self.engine.execute(session, query)
    }

    fn features(&self) -> FeatureReport {
        self.engine.features()
    }

    fn space_report(&self) -> SpaceReport {
        self.engine.space_report()
    }

    fn record_count(&self) -> usize {
        self.engine.record_count()
    }

    fn name(&self) -> &str {
        self.engine.name()
    }

    fn op_telemetry(&self) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry()
    }

    fn op_telemetry_for(
        &self,
        tenant: &gdpr_core::tenant::TenantId,
    ) -> Option<gdpr_core::telemetry::OpTelemetrySnapshot> {
        self.engine.op_telemetry_for(tenant)
    }

    fn tenant_telemetry(&self) -> Vec<(String, gdpr_core::telemetry::OpTelemetrySnapshot)> {
        self.engine.tenant_telemetry()
    }

    fn provision_tenant(&self, tenant: &gdpr_core::tenant::TenantId) -> GdprResult<()> {
        self.engine.provision_tenant(tenant)
    }

    fn close(&self) -> GdprResult<()> {
        PostgresConnector::close(self).map(|_| ())
    }
}
