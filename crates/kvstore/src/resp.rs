//! REdis Serialization Protocol (RESP) encoding.
//!
//! Commands are encoded as arrays of bulk strings — the same representation
//! Redis uses both on the wire and in the append-only file. The AOF stores
//! RESP-encoded commands ([`crate::aof`]), and the in-transit encryption
//! boundary seals RESP frames ([`crate::server`]).

use crate::error::{KvError, KvResult};
use bytes::Bytes;

/// Encode a command (name + args) as a RESP array of bulk strings.
pub fn encode_command(parts: &[Bytes]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + parts.iter().map(|p| p.len() + 16).sum::<usize>());
    out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
    for part in parts {
        out.extend_from_slice(format!("${}\r\n", part.len()).as_bytes());
        out.extend_from_slice(part);
        out.extend_from_slice(b"\r\n");
    }
    out
}

/// Parse one RESP array of bulk strings. Returns the parts and the number of
/// bytes consumed.
pub fn parse_command(buf: &[u8]) -> KvResult<(Vec<Bytes>, usize)> {
    let mut pos = 0;
    let n = expect_sized_header(buf, &mut pos, b'*')?;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let len = expect_sized_header(buf, &mut pos, b'$')?;
        if buf.len() < pos + len + 2 {
            return Err(KvError::Syntax("truncated bulk string".into()));
        }
        parts.push(Bytes::copy_from_slice(&buf[pos..pos + len]));
        pos += len;
        if &buf[pos..pos + 2] != b"\r\n" {
            return Err(KvError::Syntax("missing bulk terminator".into()));
        }
        pos += 2;
    }
    Ok((parts, pos))
}

fn expect_sized_header(buf: &[u8], pos: &mut usize, marker: u8) -> KvResult<usize> {
    if buf.len() <= *pos || buf[*pos] != marker {
        return Err(KvError::Syntax(format!(
            "expected '{}' header at offset {}",
            marker as char, *pos
        )));
    }
    *pos += 1;
    let start = *pos;
    while *pos < buf.len() && buf[*pos] != b'\r' {
        *pos += 1;
    }
    if buf.len() < *pos + 2 || buf[*pos + 1] != b'\n' {
        return Err(KvError::Syntax("missing CRLF".into()));
    }
    let digits = std::str::from_utf8(&buf[start..*pos])
        .map_err(|_| KvError::Syntax("non-utf8 length".into()))?;
    let n: usize = digits
        .parse()
        .map_err(|_| KvError::Syntax(format!("bad length {digits:?}")))?;
    *pos += 2;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn encode_matches_resp_spec() {
        let enc = encode_command(&[b("SET"), b("k"), b("v")]);
        assert_eq!(enc, b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
    }

    #[test]
    fn roundtrip() {
        let parts = vec![b("HSET"), b("rec:1"), b("data"), b("123-456")];
        let enc = encode_command(&parts);
        let (parsed, consumed) = parse_command(&enc).unwrap();
        assert_eq!(parsed, parts);
        assert_eq!(consumed, enc.len());
    }

    #[test]
    fn roundtrip_with_binary_and_empty_parts() {
        let parts = vec![b(""), Bytes::from(vec![0u8, 255, 13, 10, 42])];
        let enc = encode_command(&parts);
        let (parsed, _) = parse_command(&enc).unwrap();
        assert_eq!(parsed, parts);
    }

    #[test]
    fn multiple_commands_in_stream() {
        let mut stream = encode_command(&[b("SET"), b("a"), b("1")]);
        stream.extend(encode_command(&[b("DEL"), b("a")]));
        let (first, used) = parse_command(&stream).unwrap();
        assert_eq!(first[0], b("SET"));
        let (second, used2) = parse_command(&stream[used..]).unwrap();
        assert_eq!(second[0], b("DEL"));
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let enc = encode_command(&[b("SET"), b("key"), b("value")]);
        for cut in [1, 5, 10, enc.len() - 1] {
            assert!(
                parse_command(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_command(b"!3\r\n").is_err());
        assert!(parse_command(b"*x\r\n").is_err());
        assert!(parse_command(b"*1\r\n$abc\r\n").is_err());
        assert!(parse_command(b"").is_err());
    }
}
