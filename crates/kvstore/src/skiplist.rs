//! A probabilistic skip list ordered by `(score, member)` — the data
//! structure behind sorted sets, as in Redis' `t_zset.c`.
//!
//! Sorted sets are how a Redis client gets ordered access over an unordered
//! keyspace: YCSB's Redis binding keeps an index ZSET to implement SCAN, and
//! the GDPR connector keeps a TTL-ordered ZSET to find expiring records. Both
//! uses need ordered insertion, removal, and range queries by score.

use crate::rng::XorShift64;
use bytes::Bytes;

const MAX_LEVEL: usize = 24;
/// Probability numerator for promoting a node one level (Redis uses 1/4).
const P_NUM: u64 = 1;
const P_DEN: u64 = 4;

struct Node {
    member: Bytes,
    score: f64,
    /// `next[l]` is the index of the next node at level `l`, or usize::MAX.
    next: Vec<usize>,
}

const NIL: usize = usize::MAX;

/// A skip list of `(score, member)` pairs, ordered by score then member.
///
/// Members are unique; inserting an existing member updates its score.
pub struct SkipList {
    /// Arena of nodes; index 0 is the head sentinel.
    nodes: Vec<Node>,
    /// Free slots in the arena from removed nodes.
    free: Vec<usize>,
    level: usize,
    len: usize,
    rng: XorShift64,
}

impl SkipList {
    pub fn new() -> Self {
        SkipList {
            nodes: vec![Node {
                member: Bytes::new(),
                score: f64::NEG_INFINITY,
                next: vec![NIL; MAX_LEVEL],
            }],
            free: Vec::new(),
            level: 1,
            len: 0,
            rng: XorShift64::new(0x5a5a_1234),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn random_level(&mut self) -> usize {
        let mut level = 1;
        while level < MAX_LEVEL && self.rng.next_u64() % P_DEN < P_NUM {
            level += 1;
        }
        level
    }

    /// True if `(a_score, a_member)` orders before `(b_score, b_member)`.
    fn before(a_score: f64, a_member: &[u8], b_score: f64, b_member: &[u8]) -> bool {
        match a_score.partial_cmp(&b_score) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => a_member < b_member,
        }
    }

    /// Find per-level predecessors of `(score, member)`.
    fn find_predecessors(&self, score: f64, member: &[u8]) -> [usize; MAX_LEVEL] {
        let mut update = [0usize; MAX_LEVEL];
        let mut x = 0;
        for l in (0..self.level).rev() {
            loop {
                let nxt = self.nodes[x].next[l];
                if nxt != NIL
                    && Self::before(
                        self.nodes[nxt].score,
                        &self.nodes[nxt].member,
                        score,
                        member,
                    )
                {
                    x = nxt;
                } else {
                    break;
                }
            }
            update[l] = x;
        }
        update
    }

    /// Insert a member that is **not already present**.
    ///
    /// The caller must guarantee uniqueness — the [`crate::value::ZSet`]
    /// wrapper pairs this list with a member→score hash map (as Redis pairs
    /// its skiplist with a dict) and removes the old entry before
    /// re-inserting on score updates. This keeps insertion O(log n).
    pub fn insert(&mut self, member: Bytes, score: f64) {
        let level = self.random_level();
        if level > self.level {
            self.level = level;
        }
        let update = self.find_predecessors(score, &member);
        let node = Node {
            member,
            score,
            next: vec![NIL; level],
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        for (l, item) in update.iter().enumerate().take(level) {
            self.nodes[idx].next[l] = self.nodes[*item].next[l];
            self.nodes[*item].next[l] = idx;
        }
        self.len += 1;
    }

    /// Remove `(member, score)`. The score must be the member's current score
    /// (the ZSet wrapper tracks it). Returns `true` if removed.
    pub fn remove(&mut self, member: &[u8], score: f64) -> bool {
        let update = self.find_predecessors(score, member);
        let target = self.nodes[update[0]].next[0];
        if target == NIL
            || self.nodes[target].score != score
            || self.nodes[target].member.as_ref() != member
        {
            return false;
        }
        for (l, &pred) in update.iter().enumerate().take(self.level) {
            if self.nodes[pred].next[l] == target {
                self.nodes[pred].next[l] = self.nodes[target].next[l];
            }
        }
        while self.level > 1 && self.nodes[0].next[self.level - 1] == NIL {
            self.level -= 1;
        }
        self.nodes[target].next.clear();
        self.nodes[target].member = Bytes::new();
        self.free.push(target);
        self.len -= 1;
        true
    }

    /// Iterate `(member, score)` in order over `min..=max` scores.
    pub fn range_by_score(&self, min: f64, max: f64) -> Vec<(Bytes, f64)> {
        self.range_by_score_limit(min, max, usize::MAX)
    }

    /// As [`Self::range_by_score`], stopping after `limit` members — the
    /// `ZRANGEBYSCORE ... LIMIT` path that keeps ordered scans O(log n + k).
    pub fn range_by_score_limit(&self, min: f64, max: f64, limit: usize) -> Vec<(Bytes, f64)> {
        let mut out = Vec::new();
        // Descend to the first node with score >= min.
        let mut x = 0;
        for l in (0..self.level).rev() {
            loop {
                let nxt = self.nodes[x].next[l];
                if nxt != NIL && self.nodes[nxt].score < min {
                    x = nxt;
                } else {
                    break;
                }
            }
        }
        let mut cur = self.nodes[x].next[0];
        while cur != NIL && self.nodes[cur].score <= max && out.len() < limit {
            out.push((self.nodes[cur].member.clone(), self.nodes[cur].score));
            cur = self.nodes[cur].next[0];
        }
        out
    }

    /// Members in rank order `[start, stop]` (inclusive, like ZRANGE).
    pub fn range_by_rank(&self, start: usize, stop: usize) -> Vec<(Bytes, f64)> {
        let mut out = Vec::new();
        let mut cur = self.nodes[0].next[0];
        let mut rank = 0usize;
        while cur != NIL && rank <= stop {
            if rank >= start {
                out.push((self.nodes[cur].member.clone(), self.nodes[cur].score));
            }
            rank += 1;
            cur = self.nodes[cur].next[0];
        }
        out
    }

    /// All members in order.
    pub fn iter_all(&self) -> Vec<(Bytes, f64)> {
        self.range_by_rank(0, usize::MAX)
    }
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_orders_by_score() {
        let mut sl = SkipList::new();
        sl.insert(b("c"), 3.0);
        sl.insert(b("a"), 1.0);
        sl.insert(b("b"), 2.0);
        let members: Vec<_> = sl.iter_all().into_iter().map(|(m, _)| m).collect();
        assert_eq!(members, vec![b("a"), b("b"), b("c")]);
    }

    #[test]
    fn equal_scores_order_by_member() {
        let mut sl = SkipList::new();
        sl.insert(b("z"), 1.0);
        sl.insert(b("a"), 1.0);
        sl.insert(b("m"), 1.0);
        let members: Vec<_> = sl.iter_all().into_iter().map(|(m, _)| m).collect();
        assert_eq!(members, vec![b("a"), b("m"), b("z")]);
    }

    #[test]
    fn range_by_score_is_inclusive() {
        let mut sl = SkipList::new();
        for i in 0..10 {
            sl.insert(b(&format!("k{i}")), i as f64);
        }
        let got = sl.range_by_score(3.0, 6.0);
        let scores: Vec<_> = got.iter().map(|(_, s)| *s).collect();
        assert_eq!(scores, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn remove_then_range() {
        let mut sl = SkipList::new();
        for i in 0..100 {
            sl.insert(b(&format!("k{i:03}")), i as f64);
        }
        for i in (0..100).step_by(2) {
            assert!(sl.remove(format!("k{i:03}").as_bytes(), i as f64));
        }
        assert_eq!(sl.len(), 50);
        let remaining = sl.range_by_score(f64::NEG_INFINITY, f64::INFINITY);
        assert!(remaining.iter().all(|(_, s)| (*s as u64) % 2 == 1));
        assert_eq!(remaining.len(), 50);
    }

    #[test]
    fn remove_nonexistent_is_false() {
        let mut sl = SkipList::new();
        sl.insert(b("a"), 1.0);
        assert!(
            !sl.remove(b"a".as_ref(), 2.0),
            "wrong score must not remove"
        );
        assert!(!sl.remove(b"b".as_ref(), 1.0));
        assert_eq!(sl.len(), 1);
    }

    #[test]
    fn score_update_via_remove_and_insert() {
        let mut sl = SkipList::new();
        sl.insert(b("a"), 1.0);
        assert!(sl.remove(b"a".as_ref(), 1.0));
        sl.insert(b("a"), 9.0);
        assert_eq!(sl.len(), 1);
        assert_eq!(sl.iter_all(), vec![(b("a"), 9.0)]);
    }

    #[test]
    fn rank_range() {
        let mut sl = SkipList::new();
        for i in 0..10 {
            sl.insert(b(&format!("k{i}")), i as f64);
        }
        let got = sl.range_by_rank(2, 4);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1, 2.0);
        assert_eq!(got[2].1, 4.0);
    }

    #[test]
    fn large_insert_remove_stress_stays_consistent() {
        let mut sl = SkipList::new();
        let mut rng = XorShift64::new(42);
        let mut model: std::collections::BTreeMap<u64, f64> = Default::default();
        for _ in 0..2000 {
            let id = rng.next_below(300) as u64;
            let member = format!("m{id:05}");
            if rng.next_u64().is_multiple_of(3) {
                if let Some(score) = model.remove(&id) {
                    assert!(sl.remove(member.as_bytes(), score));
                }
            } else {
                let score = rng.next_below(1000) as f64;
                if let Some(old) = model.remove(&id) {
                    assert!(sl.remove(member.as_bytes(), old));
                }
                sl.insert(b(&member), score);
                model.insert(id, score);
            }
        }
        assert_eq!(sl.len(), model.len());
        let all = sl.iter_all();
        assert!(all
            .windows(2)
            .all(|w| { w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 <= w[1].0) }));
    }
}
