//! The command set: typed commands, their wire (RESP) form, and their
//! execution against the keyspace.
//!
//! This mirrors Redis' dispatch table: each command knows its name, whether
//! it mutates the keyspace (and therefore must be AOF-logged), its RESP
//! encoding (for the AOF and the encrypted transit boundary), and how to
//! apply itself to a [`Db`].

use crate::db::Db;
use crate::error::{KvError, KvResult};
use crate::rng::XorShift64;
use crate::value::{Value, ZSet};
use bytes::Bytes;
use clock::Timestamp;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

/// A reply from the store — the RESP reply universe.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `+OK`
    Ok,
    /// Null bulk string.
    Nil,
    /// `:n`
    Int(i64),
    /// `$len\r\n...`
    Bulk(Bytes),
    /// `*n` of nested replies.
    Array(Vec<Reply>),
}

impl Reply {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Reply::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bulk(&self) -> Option<&Bytes> {
        match self {
            Reply::Bulk(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Reply]> {
        match self {
            Reply::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_nil(&self) -> bool {
        matches!(self, Reply::Nil)
    }

    /// RESP-encode this reply (for the encrypted transit boundary).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
            Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
            Reply::Int(n) => out.extend_from_slice(format!(":{n}\r\n").as_bytes()),
            Reply::Bulk(b) => {
                out.extend_from_slice(format!("${}\r\n", b.len()).as_bytes());
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
            }
            Reply::Array(items) => {
                out.extend_from_slice(format!("*{}\r\n", items.len()).as_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
        }
    }
}

/// A typed store command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    // --- strings / generic ---
    Set {
        key: Bytes,
        value: Bytes,
        expire: Option<Duration>,
    },
    Get {
        key: Bytes,
    },
    Del {
        keys: Vec<Bytes>,
    },
    Exists {
        keys: Vec<Bytes>,
    },
    Expire {
        key: Bytes,
        ttl: Duration,
    },
    /// Absolute-deadline expiry (what the AOF logs, as Redis logs PEXPIREAT).
    ExpireAt {
        key: Bytes,
        at_ms: u64,
    },
    Ttl {
        key: Bytes,
    },
    Persist {
        key: Bytes,
    },
    TypeOf {
        key: Bytes,
    },
    Keys {
        pattern: Bytes,
    },
    Scan {
        cursor: usize,
        count: usize,
        pattern: Option<Bytes>,
    },
    RandomKey,
    DbSize,
    FlushAll,
    IncrBy {
        key: Bytes,
        delta: i64,
    },
    Append {
        key: Bytes,
        value: Bytes,
    },
    Strlen {
        key: Bytes,
    },
    // --- hashes ---
    HSet {
        key: Bytes,
        pairs: Vec<(Bytes, Bytes)>,
    },
    HGet {
        key: Bytes,
        field: Bytes,
    },
    HGetAll {
        key: Bytes,
    },
    HDel {
        key: Bytes,
        fields: Vec<Bytes>,
    },
    HLen {
        key: Bytes,
    },
    HExists {
        key: Bytes,
        field: Bytes,
    },
    // --- sets ---
    SAdd {
        key: Bytes,
        members: Vec<Bytes>,
    },
    SRem {
        key: Bytes,
        members: Vec<Bytes>,
    },
    SMembers {
        key: Bytes,
    },
    SIsMember {
        key: Bytes,
        member: Bytes,
    },
    SCard {
        key: Bytes,
    },
    // --- lists ---
    LPush {
        key: Bytes,
        values: Vec<Bytes>,
    },
    RPush {
        key: Bytes,
        values: Vec<Bytes>,
    },
    LPop {
        key: Bytes,
    },
    RPop {
        key: Bytes,
    },
    LRange {
        key: Bytes,
        start: i64,
        stop: i64,
    },
    LLen {
        key: Bytes,
    },
    // --- sorted sets ---
    ZAdd {
        key: Bytes,
        entries: Vec<(f64, Bytes)>,
    },
    ZRem {
        key: Bytes,
        members: Vec<Bytes>,
    },
    ZScore {
        key: Bytes,
        member: Bytes,
    },
    ZCard {
        key: Bytes,
    },
    ZRangeByScore {
        key: Bytes,
        min: f64,
        max: f64,
        /// `LIMIT 0 n` — cap on members returned.
        limit: Option<usize>,
    },
    ZRange {
        key: Bytes,
        start: i64,
        stop: i64,
    },
}

impl Command {
    /// The command's wire name.
    pub fn name(&self) -> &'static str {
        use Command::*;
        match self {
            Set { .. } => "SET",
            Get { .. } => "GET",
            Del { .. } => "DEL",
            Exists { .. } => "EXISTS",
            Expire { .. } => "EXPIRE",
            ExpireAt { .. } => "EXPIREAT",
            Ttl { .. } => "TTL",
            Persist { .. } => "PERSIST",
            TypeOf { .. } => "TYPE",
            Keys { .. } => "KEYS",
            Scan { .. } => "SCAN",
            RandomKey => "RANDOMKEY",
            DbSize => "DBSIZE",
            FlushAll => "FLUSHALL",
            IncrBy { .. } => "INCRBY",
            Append { .. } => "APPEND",
            Strlen { .. } => "STRLEN",
            HSet { .. } => "HSET",
            HGet { .. } => "HGET",
            HGetAll { .. } => "HGETALL",
            HDel { .. } => "HDEL",
            HLen { .. } => "HLEN",
            HExists { .. } => "HEXISTS",
            SAdd { .. } => "SADD",
            SRem { .. } => "SREM",
            SMembers { .. } => "SMEMBERS",
            SIsMember { .. } => "SISMEMBER",
            SCard { .. } => "SCARD",
            LPush { .. } => "LPUSH",
            RPush { .. } => "RPUSH",
            LPop { .. } => "LPOP",
            RPop { .. } => "RPOP",
            LRange { .. } => "LRANGE",
            LLen { .. } => "LLEN",
            ZAdd { .. } => "ZADD",
            ZRem { .. } => "ZREM",
            ZScore { .. } => "ZSCORE",
            ZCard { .. } => "ZCARD",
            ZRangeByScore { .. } => "ZRANGEBYSCORE",
            ZRange { .. } => "ZRANGE",
        }
    }

    /// Does this command mutate the keyspace? Mutating commands are always
    /// AOF-logged; read commands only under GDPR read-logging.
    pub fn is_write(&self) -> bool {
        use Command::*;
        matches!(
            self,
            Set { .. }
                | Del { .. }
                | Expire { .. }
                | ExpireAt { .. }
                | Persist { .. }
                | FlushAll
                | IncrBy { .. }
                | Append { .. }
                | HSet { .. }
                | HDel { .. }
                | SAdd { .. }
                | SRem { .. }
                | LPush { .. }
                | RPush { .. }
                | LPop { .. }
                | RPop { .. }
                | ZAdd { .. }
                | ZRem { .. }
        )
    }

    /// Wire (RESP array) form: command name followed by arguments.
    pub fn to_wire(&self) -> Vec<Bytes> {
        use Command::*;
        let s = |t: &str| Bytes::copy_from_slice(t.as_bytes());
        let mut parts = vec![s(self.name())];
        match self {
            Set { key, value, expire } => {
                parts.push(key.clone());
                parts.push(value.clone());
                if let Some(d) = expire {
                    parts.push(s("PX"));
                    parts.push(s(&d.as_millis().to_string()));
                }
            }
            Get { key }
            | Ttl { key }
            | Persist { key }
            | TypeOf { key }
            | Strlen { key }
            | HGetAll { key }
            | HLen { key }
            | SMembers { key }
            | SCard { key }
            | LPop { key }
            | RPop { key }
            | LLen { key }
            | ZCard { key } => {
                parts.push(key.clone());
            }
            Del { keys } | Exists { keys } => parts.extend(keys.iter().cloned()),
            Expire { key, ttl } => {
                parts.push(key.clone());
                parts.push(s(&ttl.as_millis().to_string()));
            }
            ExpireAt { key, at_ms } => {
                parts.push(key.clone());
                parts.push(s(&at_ms.to_string()));
            }
            Keys { pattern } => parts.push(pattern.clone()),
            Scan {
                cursor,
                count,
                pattern,
            } => {
                parts.push(s(&cursor.to_string()));
                parts.push(s("COUNT"));
                parts.push(s(&count.to_string()));
                if let Some(p) = pattern {
                    parts.push(s("MATCH"));
                    parts.push(p.clone());
                }
            }
            RandomKey | DbSize | FlushAll => {}
            IncrBy { key, delta } => {
                parts.push(key.clone());
                parts.push(s(&delta.to_string()));
            }
            Append { key, value } => {
                parts.push(key.clone());
                parts.push(value.clone());
            }
            HSet { key, pairs } => {
                parts.push(key.clone());
                for (f, v) in pairs {
                    parts.push(f.clone());
                    parts.push(v.clone());
                }
            }
            HGet { key, field } | HExists { key, field } => {
                parts.push(key.clone());
                parts.push(field.clone());
            }
            HDel { key, fields } => {
                parts.push(key.clone());
                parts.extend(fields.iter().cloned());
            }
            SAdd { key, members } | SRem { key, members } | ZRem { key, members } => {
                parts.push(key.clone());
                parts.extend(members.iter().cloned());
            }
            SIsMember { key, member } | ZScore { key, member } => {
                parts.push(key.clone());
                parts.push(member.clone());
            }
            LPush { key, values } | RPush { key, values } => {
                parts.push(key.clone());
                parts.extend(values.iter().cloned());
            }
            LRange { key, start, stop } | ZRange { key, start, stop } => {
                parts.push(key.clone());
                parts.push(s(&start.to_string()));
                parts.push(s(&stop.to_string()));
            }
            ZAdd { key, entries } => {
                parts.push(key.clone());
                for (score, member) in entries {
                    parts.push(s(&score.to_string()));
                    parts.push(member.clone());
                }
            }
            ZRangeByScore {
                key,
                min,
                max,
                limit,
            } => {
                parts.push(key.clone());
                parts.push(s(&min.to_string()));
                parts.push(s(&max.to_string()));
                if let Some(n) = limit {
                    parts.push(s("LIMIT"));
                    parts.push(s("0"));
                    parts.push(s(&n.to_string()));
                }
            }
        }
        parts
    }

    /// Parse a wire-form command (used by AOF replay).
    pub fn from_wire(parts: &[Bytes]) -> KvResult<Command> {
        use Command::*;
        let name = parts
            .first()
            .ok_or_else(|| KvError::Syntax("empty command".into()))?;
        let name = std::str::from_utf8(name)
            .map_err(|_| KvError::Syntax("non-utf8 command name".into()))?
            .to_ascii_uppercase();
        let args = &parts[1..];
        let arity = |n: usize| -> KvResult<()> {
            if args.len() == n {
                Ok(())
            } else {
                Err(KvError::Syntax(format!(
                    "{name} expects {n} args, got {}",
                    args.len()
                )))
            }
        };
        let at_least = |n: usize| -> KvResult<()> {
            if args.len() >= n {
                Ok(())
            } else {
                Err(KvError::Syntax(format!(
                    "{name} expects at least {n} args, got {}",
                    args.len()
                )))
            }
        };
        Ok(match name.as_str() {
            "SET" => {
                at_least(2)?;
                let expire = if args.len() >= 4 {
                    let unit = std::str::from_utf8(&args[2]).unwrap_or("");
                    let n = parse_u64(&args[3])?;
                    match unit.to_ascii_uppercase().as_str() {
                        "PX" => Some(Duration::from_millis(n)),
                        "EX" => Some(Duration::from_secs(n)),
                        other => return Err(KvError::Syntax(format!("bad SET option {other}"))),
                    }
                } else {
                    None
                };
                Set {
                    key: args[0].clone(),
                    value: args[1].clone(),
                    expire,
                }
            }
            "GET" => {
                arity(1)?;
                Get {
                    key: args[0].clone(),
                }
            }
            "DEL" => {
                at_least(1)?;
                Del {
                    keys: args.to_vec(),
                }
            }
            "EXISTS" => {
                at_least(1)?;
                Exists {
                    keys: args.to_vec(),
                }
            }
            "EXPIRE" => {
                arity(2)?;
                Expire {
                    key: args[0].clone(),
                    ttl: Duration::from_millis(parse_u64(&args[1])?),
                }
            }
            "EXPIREAT" => {
                arity(2)?;
                ExpireAt {
                    key: args[0].clone(),
                    at_ms: parse_u64(&args[1])?,
                }
            }
            "TTL" => {
                arity(1)?;
                Ttl {
                    key: args[0].clone(),
                }
            }
            "PERSIST" => {
                arity(1)?;
                Persist {
                    key: args[0].clone(),
                }
            }
            "TYPE" => {
                arity(1)?;
                TypeOf {
                    key: args[0].clone(),
                }
            }
            "KEYS" => {
                arity(1)?;
                Keys {
                    pattern: args[0].clone(),
                }
            }
            "SCAN" => {
                at_least(1)?;
                let cursor = parse_u64(&args[0])? as usize;
                let mut count = 10usize;
                let mut pattern = None;
                let mut i = 1;
                while i + 1 < args.len() + 1 && i < args.len() {
                    let opt = std::str::from_utf8(&args[i])
                        .unwrap_or("")
                        .to_ascii_uppercase();
                    match opt.as_str() {
                        "COUNT" => {
                            count =
                                parse_u64(args.get(i + 1).ok_or_else(|| {
                                    KvError::Syntax("COUNT missing value".into())
                                })?)? as usize;
                            i += 2;
                        }
                        "MATCH" => {
                            pattern = Some(
                                args.get(i + 1)
                                    .ok_or_else(|| KvError::Syntax("MATCH missing value".into()))?
                                    .clone(),
                            );
                            i += 2;
                        }
                        other => return Err(KvError::Syntax(format!("bad SCAN option {other}"))),
                    }
                }
                Scan {
                    cursor,
                    count,
                    pattern,
                }
            }
            "RANDOMKEY" => RandomKey,
            "DBSIZE" => DbSize,
            "FLUSHALL" => FlushAll,
            "INCRBY" => {
                arity(2)?;
                IncrBy {
                    key: args[0].clone(),
                    delta: parse_i64(&args[1])?,
                }
            }
            "APPEND" => {
                arity(2)?;
                Append {
                    key: args[0].clone(),
                    value: args[1].clone(),
                }
            }
            "STRLEN" => {
                arity(1)?;
                Strlen {
                    key: args[0].clone(),
                }
            }
            "HSET" => {
                at_least(3)?;
                if args.len() % 2 != 1 {
                    return Err(KvError::Syntax("HSET needs field/value pairs".into()));
                }
                HSet {
                    key: args[0].clone(),
                    pairs: args[1..]
                        .chunks_exact(2)
                        .map(|c| (c[0].clone(), c[1].clone()))
                        .collect(),
                }
            }
            "HGET" => {
                arity(2)?;
                HGet {
                    key: args[0].clone(),
                    field: args[1].clone(),
                }
            }
            "HGETALL" => {
                arity(1)?;
                HGetAll {
                    key: args[0].clone(),
                }
            }
            "HDEL" => {
                at_least(2)?;
                HDel {
                    key: args[0].clone(),
                    fields: args[1..].to_vec(),
                }
            }
            "HLEN" => {
                arity(1)?;
                HLen {
                    key: args[0].clone(),
                }
            }
            "HEXISTS" => {
                arity(2)?;
                HExists {
                    key: args[0].clone(),
                    field: args[1].clone(),
                }
            }
            "SADD" => {
                at_least(2)?;
                SAdd {
                    key: args[0].clone(),
                    members: args[1..].to_vec(),
                }
            }
            "SREM" => {
                at_least(2)?;
                SRem {
                    key: args[0].clone(),
                    members: args[1..].to_vec(),
                }
            }
            "SMEMBERS" => {
                arity(1)?;
                SMembers {
                    key: args[0].clone(),
                }
            }
            "SISMEMBER" => {
                arity(2)?;
                SIsMember {
                    key: args[0].clone(),
                    member: args[1].clone(),
                }
            }
            "SCARD" => {
                arity(1)?;
                SCard {
                    key: args[0].clone(),
                }
            }
            "LPUSH" => {
                at_least(2)?;
                LPush {
                    key: args[0].clone(),
                    values: args[1..].to_vec(),
                }
            }
            "RPUSH" => {
                at_least(2)?;
                RPush {
                    key: args[0].clone(),
                    values: args[1..].to_vec(),
                }
            }
            "LPOP" => {
                arity(1)?;
                LPop {
                    key: args[0].clone(),
                }
            }
            "RPOP" => {
                arity(1)?;
                RPop {
                    key: args[0].clone(),
                }
            }
            "LRANGE" => {
                arity(3)?;
                LRange {
                    key: args[0].clone(),
                    start: parse_i64(&args[1])?,
                    stop: parse_i64(&args[2])?,
                }
            }
            "LLEN" => {
                arity(1)?;
                LLen {
                    key: args[0].clone(),
                }
            }
            "ZADD" => {
                at_least(3)?;
                if args.len() % 2 != 1 {
                    return Err(KvError::Syntax("ZADD needs score/member pairs".into()));
                }
                ZAdd {
                    key: args[0].clone(),
                    entries: args[1..]
                        .chunks_exact(2)
                        .map(|c| Ok((parse_f64(&c[0])?, c[1].clone())))
                        .collect::<KvResult<_>>()?,
                }
            }
            "ZREM" => {
                at_least(2)?;
                ZRem {
                    key: args[0].clone(),
                    members: args[1..].to_vec(),
                }
            }
            "ZSCORE" => {
                arity(2)?;
                ZScore {
                    key: args[0].clone(),
                    member: args[1].clone(),
                }
            }
            "ZCARD" => {
                arity(1)?;
                ZCard {
                    key: args[0].clone(),
                }
            }
            "ZRANGEBYSCORE" => {
                at_least(3)?;
                let limit = if args.len() == 6 {
                    Some(parse_u64(&args[5])? as usize)
                } else if args.len() == 3 {
                    None
                } else {
                    return Err(KvError::Syntax(
                        "ZRANGEBYSCORE takes 3 args or LIMIT 0 n".into(),
                    ));
                };
                ZRangeByScore {
                    key: args[0].clone(),
                    min: parse_f64(&args[1])?,
                    max: parse_f64(&args[2])?,
                    limit,
                }
            }
            "ZRANGE" => {
                arity(3)?;
                ZRange {
                    key: args[0].clone(),
                    start: parse_i64(&args[1])?,
                    stop: parse_i64(&args[2])?,
                }
            }
            other => return Err(KvError::Syntax(format!("unknown command {other}"))),
        })
    }

    /// Execute against a keyspace. `rng` serves RANDOMKEY.
    pub fn execute(&self, db: &mut Db, rng: &mut XorShift64) -> KvResult<Reply> {
        use Command::*;
        Ok(match self {
            Set { key, value, expire } => {
                db.set(key.clone(), Value::Str(value.clone()));
                if let Some(d) = expire {
                    let at = db.clock().now() + *d;
                    db.set_expiry(key, at);
                }
                Reply::Ok
            }
            Get { key } => match db.get(key) {
                Some(v) => Reply::Bulk(v.as_str()?.clone()),
                None => Reply::Nil,
            },
            Del { keys } => {
                let mut n = 0;
                for key in keys {
                    if db.remove(key) {
                        n += 1;
                    }
                }
                Reply::Int(n)
            }
            Exists { keys } => {
                let mut n = 0;
                for key in keys {
                    if db.exists(key) {
                        n += 1;
                    }
                }
                Reply::Int(n)
            }
            Expire { key, ttl } => {
                let at = db.clock().now() + *ttl;
                Reply::Int(db.set_expiry(key, at) as i64)
            }
            ExpireAt { key, at_ms } => {
                Reply::Int(db.set_expiry(key, Timestamp::from_millis(*at_ms)) as i64)
            }
            Ttl { key } => match db.ttl(key) {
                None => Reply::Int(-2),
                Some(None) => Reply::Int(-1),
                Some(Some(d)) => Reply::Int(d.as_secs() as i64),
            },
            Persist { key } => Reply::Int(db.clear_expiry(key) as i64),
            TypeOf { key } => match db.get(key) {
                Some(v) => Reply::Bulk(Bytes::copy_from_slice(v.type_name().as_bytes())),
                None => Reply::Bulk(Bytes::from_static(b"none")),
            },
            Keys { pattern } => Reply::Array(
                db.keys_matching(pattern)
                    .into_iter()
                    .map(Reply::Bulk)
                    .collect(),
            ),
            Scan {
                cursor,
                count,
                pattern,
            } => {
                let (keys, next) = db.scan(*cursor, *count, pattern.as_deref());
                Reply::Array(vec![
                    Reply::Int(next as i64),
                    Reply::Array(keys.into_iter().map(Reply::Bulk).collect()),
                ])
            }
            RandomKey => match db.random_key(rng) {
                Some(k) => Reply::Bulk(k),
                None => Reply::Nil,
            },
            DbSize => Reply::Int(db.len() as i64),
            FlushAll => {
                db.flush();
                Reply::Ok
            }
            IncrBy { key, delta } => {
                let current = match db.get(key) {
                    Some(v) => parse_i64(v.as_str()?)?,
                    None => 0,
                };
                let next = current
                    .checked_add(*delta)
                    .ok_or_else(|| KvError::Syntax("increment overflow".into()))?;
                // INCR preserves any TTL (unlike SET).
                let expiry = db.expiry_of(key);
                db.set(key.clone(), Value::Str(Bytes::from(next.to_string())));
                if let Some(at) = expiry {
                    db.set_expiry(key, at);
                }
                Reply::Int(next)
            }
            Append { key, value } => {
                let existing = match db.get(key) {
                    Some(v) => v.as_str()?.to_vec(),
                    None => Vec::new(),
                };
                let mut combined = existing;
                combined.extend_from_slice(value);
                let len = combined.len();
                db.set(key.clone(), Value::Str(Bytes::from(combined)));
                Reply::Int(len as i64)
            }
            Strlen { key } => match db.get(key) {
                Some(v) => Reply::Int(v.as_str()?.len() as i64),
                None => Reply::Int(0),
            },
            HSet { key, pairs } => {
                let hash = db
                    .get_or_create(
                        key,
                        || Value::Hash(HashMap::new()),
                        |v| matches!(v, Value::Hash(_)),
                    )?
                    .as_hash_mut()?;
                let mut added = 0;
                for (f, v) in pairs {
                    if hash.insert(f.clone(), v.clone()).is_none() {
                        added += 1;
                    }
                }
                Reply::Int(added)
            }
            HGet { key, field } => match db.get(key) {
                Some(v) => match v.as_hash()?.get(field) {
                    Some(val) => Reply::Bulk(val.clone()),
                    None => Reply::Nil,
                },
                None => Reply::Nil,
            },
            HGetAll { key } => match db.get(key) {
                Some(v) => {
                    let hash = v.as_hash()?;
                    let mut items = Vec::with_capacity(hash.len() * 2);
                    for (f, val) in hash {
                        items.push(Reply::Bulk(f.clone()));
                        items.push(Reply::Bulk(val.clone()));
                    }
                    Reply::Array(items)
                }
                None => Reply::Array(vec![]),
            },
            HDel { key, fields } => {
                let mut removed = 0;
                if let Some(v) = db.get_mut(key) {
                    let hash = v.as_hash_mut()?;
                    for f in fields {
                        if hash.remove(f).is_some() {
                            removed += 1;
                        }
                    }
                }
                db.drop_if_empty(key);
                Reply::Int(removed)
            }
            HLen { key } => match db.get(key) {
                Some(v) => Reply::Int(v.as_hash()?.len() as i64),
                None => Reply::Int(0),
            },
            HExists { key, field } => match db.get(key) {
                Some(v) => Reply::Int(v.as_hash()?.contains_key(field) as i64),
                None => Reply::Int(0),
            },
            SAdd { key, members } => {
                let set = db
                    .get_or_create(
                        key,
                        || Value::Set(HashSet::new()),
                        |v| matches!(v, Value::Set(_)),
                    )?
                    .as_set_mut()?;
                let mut added = 0;
                for m in members {
                    if set.insert(m.clone()) {
                        added += 1;
                    }
                }
                Reply::Int(added)
            }
            SRem { key, members } => {
                let mut removed = 0;
                if let Some(v) = db.get_mut(key) {
                    let set = v.as_set_mut()?;
                    for m in members {
                        if set.remove(m) {
                            removed += 1;
                        }
                    }
                }
                db.drop_if_empty(key);
                Reply::Int(removed)
            }
            SMembers { key } => match db.get(key) {
                Some(v) => Reply::Array(v.as_set()?.iter().cloned().map(Reply::Bulk).collect()),
                None => Reply::Array(vec![]),
            },
            SIsMember { key, member } => match db.get(key) {
                Some(v) => Reply::Int(v.as_set()?.contains(member) as i64),
                None => Reply::Int(0),
            },
            SCard { key } => match db.get(key) {
                Some(v) => Reply::Int(v.as_set()?.len() as i64),
                None => Reply::Int(0),
            },
            LPush { key, values } | RPush { key, values } => {
                let front = matches!(self, LPush { .. });
                let list = db
                    .get_or_create(
                        key,
                        || Value::List(VecDeque::new()),
                        |v| matches!(v, Value::List(_)),
                    )?
                    .as_list_mut()?;
                for v in values {
                    if front {
                        list.push_front(v.clone());
                    } else {
                        list.push_back(v.clone());
                    }
                }
                Reply::Int(list.len() as i64)
            }
            LPop { key } | RPop { key } => {
                let front = matches!(self, LPop { .. });
                let popped = match db.get_mut(key) {
                    Some(v) => {
                        let list = v.as_list_mut()?;
                        if front {
                            list.pop_front()
                        } else {
                            list.pop_back()
                        }
                    }
                    None => None,
                };
                db.drop_if_empty(key);
                match popped {
                    Some(v) => Reply::Bulk(v),
                    None => Reply::Nil,
                }
            }
            LRange { key, start, stop } => match db.get(key) {
                Some(v) => {
                    let list = v.as_list()?;
                    let (s, e) = normalize_range(*start, *stop, list.len());
                    Reply::Array(
                        list.iter()
                            .skip(s)
                            .take(e.saturating_sub(s))
                            .cloned()
                            .map(Reply::Bulk)
                            .collect(),
                    )
                }
                None => Reply::Array(vec![]),
            },
            LLen { key } => match db.get(key) {
                Some(v) => Reply::Int(v.as_list()?.len() as i64),
                None => Reply::Int(0),
            },
            ZAdd { key, entries } => {
                let zset = db
                    .get_or_create(
                        key,
                        || Value::ZSet(ZSet::new()),
                        |v| matches!(v, Value::ZSet(_)),
                    )?
                    .as_zset_mut()?;
                let mut added = 0;
                for (score, member) in entries {
                    if zset.add(member.clone(), *score) {
                        added += 1;
                    }
                }
                Reply::Int(added)
            }
            ZRem { key, members } => {
                let mut removed = 0;
                if let Some(v) = db.get_mut(key) {
                    let zset = v.as_zset_mut()?;
                    for m in members {
                        if zset.remove(m) {
                            removed += 1;
                        }
                    }
                }
                db.drop_if_empty(key);
                Reply::Int(removed)
            }
            ZScore { key, member } => match db.get(key) {
                Some(v) => match v.as_zset()?.score(member) {
                    Some(score) => Reply::Bulk(Bytes::from(score.to_string())),
                    None => Reply::Nil,
                },
                None => Reply::Nil,
            },
            ZCard { key } => match db.get(key) {
                Some(v) => Reply::Int(v.as_zset()?.len() as i64),
                None => Reply::Int(0),
            },
            ZRangeByScore {
                key,
                min,
                max,
                limit,
            } => match db.get(key) {
                Some(v) => Reply::Array(
                    v.as_zset()?
                        .range_by_score_limit(*min, *max, limit.unwrap_or(usize::MAX))
                        .into_iter()
                        .map(|(m, _)| Reply::Bulk(m))
                        .collect(),
                ),
                None => Reply::Array(vec![]),
            },
            ZRange { key, start, stop } => match db.get(key) {
                Some(v) => {
                    let zset = v.as_zset()?;
                    let (s, e) = normalize_range(*start, *stop, zset.len());
                    if s >= e {
                        Reply::Array(vec![])
                    } else {
                        Reply::Array(
                            zset.range_by_rank(s, e - 1)
                                .into_iter()
                                .map(|(m, _)| Reply::Bulk(m))
                                .collect(),
                        )
                    }
                }
                None => Reply::Array(vec![]),
            },
        })
    }
}

/// Map Redis-style inclusive indices (negative = from end) onto `[s, e)`.
fn normalize_range(start: i64, stop: i64, len: usize) -> (usize, usize) {
    let len = len as i64;
    let s = if start < 0 {
        (len + start).max(0)
    } else {
        start.min(len)
    };
    let e = if stop < 0 {
        len + stop + 1
    } else {
        (stop + 1).min(len)
    };
    ((s.max(0)) as usize, (e.max(0)) as usize)
}

fn parse_u64(b: &[u8]) -> KvResult<u64> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| KvError::Syntax(format!("bad integer {:?}", String::from_utf8_lossy(b))))
}

fn parse_i64(b: &[u8]) -> KvResult<i64> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| KvError::Syntax(format!("bad integer {:?}", String::from_utf8_lossy(b))))
}

fn parse_f64(b: &[u8]) -> KvResult<f64> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| KvError::Syntax(format!("bad float {:?}", String::from_utf8_lossy(b))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn fresh() -> (Db, XorShift64) {
        (Db::new(clock::sim()), XorShift64::new(7))
    }

    fn run(db: &mut Db, rng: &mut XorShift64, cmd: Command) -> Reply {
        cmd.execute(db, rng).unwrap()
    }

    #[test]
    fn set_get_del() {
        let (mut db, mut rng) = fresh();
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::Set {
                    key: b("k"),
                    value: b("v"),
                    expire: None
                }
            ),
            Reply::Ok
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Get { key: b("k") }),
            Reply::Bulk(b("v"))
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::Del {
                    keys: vec![b("k"), b("ghost")]
                }
            ),
            Reply::Int(1)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Get { key: b("k") }),
            Reply::Nil
        );
    }

    #[test]
    fn set_with_expiry_and_ttl() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        let mut rng = XorShift64::new(1);
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("k"),
                value: b("v"),
                expire: Some(Duration::from_secs(10)),
            },
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Ttl { key: b("k") }),
            Reply::Int(10)
        );
        sim.advance(Duration::from_secs(11));
        assert_eq!(
            run(&mut db, &mut rng, Command::Get { key: b("k") }),
            Reply::Nil
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Ttl { key: b("k") }),
            Reply::Int(-2)
        );
    }

    #[test]
    fn ttl_reports_minus_one_without_expiry() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("k"),
                value: b("v"),
                expire: None,
            },
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Ttl { key: b("k") }),
            Reply::Int(-1)
        );
    }

    #[test]
    fn incrby_preserves_ttl() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        let mut rng = XorShift64::new(1);
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("n"),
                value: b("5"),
                expire: Some(Duration::from_secs(100)),
            },
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::IncrBy {
                    key: b("n"),
                    delta: 3
                }
            ),
            Reply::Int(8)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Ttl { key: b("n") }),
            Reply::Int(100)
        );
    }

    #[test]
    fn incrby_on_non_numeric_fails() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("s"),
                value: b("abc"),
                expire: None,
            },
        );
        assert!(Command::IncrBy {
            key: b("s"),
            delta: 1
        }
        .execute(&mut db, &mut rng)
        .is_err());
    }

    #[test]
    fn hash_commands() {
        let (mut db, mut rng) = fresh();
        let pairs = vec![(b("data"), b("123")), (b("usr"), b("neo"))];
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::HSet {
                    key: b("rec"),
                    pairs
                }
            ),
            Reply::Int(2)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::HGet {
                    key: b("rec"),
                    field: b("usr")
                }
            ),
            Reply::Bulk(b("neo"))
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::HLen { key: b("rec") }),
            Reply::Int(2)
        );
        let all = run(&mut db, &mut rng, Command::HGetAll { key: b("rec") });
        assert_eq!(all.as_array().unwrap().len(), 4);
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::HDel {
                    key: b("rec"),
                    fields: vec![b("data"), b("usr")]
                }
            ),
            Reply::Int(2)
        );
        // Hash became empty → key removed.
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::Exists {
                    keys: vec![b("rec")]
                }
            ),
            Reply::Int(0)
        );
    }

    #[test]
    fn hset_overwrite_counts_only_new_fields() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::HSet {
                key: b("h"),
                pairs: vec![(b("f"), b("1"))],
            },
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::HSet {
                    key: b("h"),
                    pairs: vec![(b("f"), b("2"))]
                }
            ),
            Reply::Int(0)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::HGet {
                    key: b("h"),
                    field: b("f")
                }
            ),
            Reply::Bulk(b("2"))
        );
    }

    #[test]
    fn wrongtype_across_commands() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("s"),
                value: b("v"),
                expire: None,
            },
        );
        assert_eq!(
            Command::HGet {
                key: b("s"),
                field: b("f")
            }
            .execute(&mut db, &mut rng)
            .unwrap_err(),
            KvError::WrongType
        );
        assert_eq!(
            Command::SAdd {
                key: b("s"),
                members: vec![b("m")]
            }
            .execute(&mut db, &mut rng)
            .unwrap_err(),
            KvError::WrongType
        );
    }

    #[test]
    fn set_commands() {
        let (mut db, mut rng) = fresh();
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::SAdd {
                    key: b("s"),
                    members: vec![b("a"), b("b"), b("a")]
                }
            ),
            Reply::Int(2)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::SIsMember {
                    key: b("s"),
                    member: b("a")
                }
            ),
            Reply::Int(1)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::SCard { key: b("s") }),
            Reply::Int(2)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::SRem {
                    key: b("s"),
                    members: vec![b("a"), b("b")]
                }
            ),
            Reply::Int(2)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Exists { keys: vec![b("s")] }),
            Reply::Int(0)
        );
    }

    #[test]
    fn list_commands() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::RPush {
                key: b("l"),
                values: vec![b("1"), b("2"), b("3")],
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::LPush {
                key: b("l"),
                values: vec![b("0")],
            },
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::LLen { key: b("l") }),
            Reply::Int(4)
        );
        let range = run(
            &mut db,
            &mut rng,
            Command::LRange {
                key: b("l"),
                start: 0,
                stop: -1,
            },
        );
        assert_eq!(
            range,
            Reply::Array(vec![
                Reply::Bulk(b("0")),
                Reply::Bulk(b("1")),
                Reply::Bulk(b("2")),
                Reply::Bulk(b("3"))
            ])
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::LPop { key: b("l") }),
            Reply::Bulk(b("0"))
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::RPop { key: b("l") }),
            Reply::Bulk(b("3"))
        );
    }

    #[test]
    fn zset_commands() {
        let (mut db, mut rng) = fresh();
        run(
            &mut db,
            &mut rng,
            Command::ZAdd {
                key: b("z"),
                entries: vec![(2.0, b("b")), (1.0, b("a")), (3.0, b("c"))],
            },
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::ZCard { key: b("z") }),
            Reply::Int(3)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::ZScore {
                    key: b("z"),
                    member: b("b")
                }
            ),
            Reply::Bulk(b("2"))
        );
        let range = run(
            &mut db,
            &mut rng,
            Command::ZRangeByScore {
                key: b("z"),
                min: 1.5,
                max: 3.0,
                limit: None,
            },
        );
        assert_eq!(
            range,
            Reply::Array(vec![Reply::Bulk(b("b")), Reply::Bulk(b("c"))])
        );
        let by_rank = run(
            &mut db,
            &mut rng,
            Command::ZRange {
                key: b("z"),
                start: 0,
                stop: 1,
            },
        );
        assert_eq!(by_rank.as_array().unwrap().len(), 2);
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::ZRem {
                    key: b("z"),
                    members: vec![b("a"), b("b"), b("c")]
                }
            ),
            Reply::Int(3)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Exists { keys: vec![b("z")] }),
            Reply::Int(0)
        );
    }

    #[test]
    fn append_and_strlen() {
        let (mut db, mut rng) = fresh();
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::Append {
                    key: b("s"),
                    value: b("foo")
                }
            ),
            Reply::Int(3)
        );
        assert_eq!(
            run(
                &mut db,
                &mut rng,
                Command::Append {
                    key: b("s"),
                    value: b("bar")
                }
            ),
            Reply::Int(6)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Strlen { key: b("s") }),
            Reply::Int(6)
        );
        assert_eq!(
            run(&mut db, &mut rng, Command::Get { key: b("s") }),
            Reply::Bulk(b("foobar"))
        );
    }

    #[test]
    fn scan_and_dbsize() {
        let (mut db, mut rng) = fresh();
        for i in 0..25 {
            run(
                &mut db,
                &mut rng,
                Command::Set {
                    key: b(&format!("k{i}")),
                    value: b("v"),
                    expire: None,
                },
            );
        }
        assert_eq!(run(&mut db, &mut rng, Command::DbSize), Reply::Int(25));
        let reply = run(
            &mut db,
            &mut rng,
            Command::Scan {
                cursor: 0,
                count: 10,
                pattern: None,
            },
        );
        let parts = reply.as_array().unwrap();
        assert_eq!(parts[0], Reply::Int(10));
        assert_eq!(parts[1].as_array().unwrap().len(), 10);
    }

    #[test]
    fn wire_roundtrip_all_commands() {
        let samples = vec![
            Command::Set {
                key: b("k"),
                value: b("v"),
                expire: Some(Duration::from_millis(1500)),
            },
            Command::Set {
                key: b("k"),
                value: b("v"),
                expire: None,
            },
            Command::Get { key: b("k") },
            Command::Del {
                keys: vec![b("a"), b("b")],
            },
            Command::Exists { keys: vec![b("a")] },
            Command::Expire {
                key: b("k"),
                ttl: Duration::from_secs(9),
            },
            Command::ExpireAt {
                key: b("k"),
                at_ms: 123456,
            },
            Command::Ttl { key: b("k") },
            Command::Persist { key: b("k") },
            Command::TypeOf { key: b("k") },
            Command::Keys {
                pattern: b("rec:*"),
            },
            Command::Scan {
                cursor: 5,
                count: 64,
                pattern: Some(b("x*")),
            },
            Command::Scan {
                cursor: 0,
                count: 10,
                pattern: None,
            },
            Command::RandomKey,
            Command::DbSize,
            Command::FlushAll,
            Command::IncrBy {
                key: b("n"),
                delta: -4,
            },
            Command::Append {
                key: b("s"),
                value: b("x"),
            },
            Command::Strlen { key: b("s") },
            Command::HSet {
                key: b("h"),
                pairs: vec![(b("f"), b("v"))],
            },
            Command::HGet {
                key: b("h"),
                field: b("f"),
            },
            Command::HGetAll { key: b("h") },
            Command::HDel {
                key: b("h"),
                fields: vec![b("f")],
            },
            Command::HLen { key: b("h") },
            Command::HExists {
                key: b("h"),
                field: b("f"),
            },
            Command::SAdd {
                key: b("s"),
                members: vec![b("m")],
            },
            Command::SRem {
                key: b("s"),
                members: vec![b("m")],
            },
            Command::SMembers { key: b("s") },
            Command::SIsMember {
                key: b("s"),
                member: b("m"),
            },
            Command::SCard { key: b("s") },
            Command::LPush {
                key: b("l"),
                values: vec![b("v")],
            },
            Command::RPush {
                key: b("l"),
                values: vec![b("v")],
            },
            Command::LPop { key: b("l") },
            Command::RPop { key: b("l") },
            Command::LRange {
                key: b("l"),
                start: 0,
                stop: -1,
            },
            Command::LLen { key: b("l") },
            Command::ZAdd {
                key: b("z"),
                entries: vec![(1.5, b("m"))],
            },
            Command::ZRem {
                key: b("z"),
                members: vec![b("m")],
            },
            Command::ZScore {
                key: b("z"),
                member: b("m"),
            },
            Command::ZCard { key: b("z") },
            Command::ZRangeByScore {
                key: b("z"),
                min: 0.0,
                max: 10.0,
                limit: None,
            },
            Command::ZRangeByScore {
                key: b("z"),
                min: 0.0,
                max: 10.0,
                limit: Some(25),
            },
            Command::ZRange {
                key: b("z"),
                start: 0,
                stop: 5,
            },
        ];
        for cmd in samples {
            let wire = cmd.to_wire();
            let parsed =
                Command::from_wire(&wire).unwrap_or_else(|e| panic!("{}: {e}", cmd.name()));
            assert_eq!(parsed, cmd, "wire roundtrip mismatch for {}", cmd.name());
        }
    }

    #[test]
    fn unknown_command_is_rejected() {
        assert!(Command::from_wire(&[b("BOGUS")]).is_err());
        assert!(Command::from_wire(&[]).is_err());
    }

    #[test]
    fn arity_errors() {
        assert!(Command::from_wire(&[b("GET")]).is_err());
        assert!(Command::from_wire(&[b("SET"), b("k")]).is_err());
        assert!(Command::from_wire(&[b("HSET"), b("k"), b("f")]).is_err());
        assert!(Command::from_wire(&[b("EXPIRE"), b("k"), b("abc")]).is_err());
    }

    #[test]
    fn normalize_range_semantics() {
        assert_eq!(normalize_range(0, -1, 5), (0, 5));
        assert_eq!(normalize_range(1, 3, 5), (1, 4));
        assert_eq!(normalize_range(-2, -1, 5), (3, 5));
        assert_eq!(normalize_range(0, 100, 5), (0, 5));
        assert_eq!(normalize_range(10, 20, 5), (5, 5));
        assert_eq!(normalize_range(0, -1, 0), (0, 0));
    }

    #[test]
    fn reply_encoding() {
        assert_eq!(Reply::Ok.encode(), b"+OK\r\n");
        assert_eq!(Reply::Nil.encode(), b"$-1\r\n");
        assert_eq!(Reply::Int(-3).encode(), b":-3\r\n");
        assert_eq!(Reply::Bulk(b("hi")).encode(), b"$2\r\nhi\r\n");
        assert_eq!(
            Reply::Array(vec![Reply::Int(1), Reply::Bulk(b("x"))]).encode(),
            b"*2\r\n:1\r\n$1\r\nx\r\n"
        );
    }

    #[test]
    fn write_classification() {
        assert!(Command::Set {
            key: b("k"),
            value: b("v"),
            expire: None
        }
        .is_write());
        assert!(Command::FlushAll.is_write());
        assert!(Command::LPop { key: b("l") }.is_write());
        assert!(!Command::Get { key: b("k") }.is_write());
        assert!(!Command::Scan {
            cursor: 0,
            count: 1,
            pattern: None
        }
        .is_write());
        assert!(!Command::HGetAll { key: b("h") }.is_write());
    }
}
