//! The value types a key can hold: string, list, hash, set, sorted set —
//! the five core Redis data types.

use crate::error::{KvError, KvResult};
use crate::skiplist::SkipList;
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};

/// A sorted set: a skiplist for order plus a member→score map for O(1) score
/// lookup, mirroring Redis' dual representation.
#[derive(Default)]
pub struct ZSet {
    list: SkipList,
    scores: HashMap<Bytes, f64>,
}

impl ZSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or update a member. Returns `true` if the member was new.
    pub fn add(&mut self, member: Bytes, score: f64) -> bool {
        match self.scores.insert(member.clone(), score) {
            Some(old) => {
                if old != score {
                    self.list.remove(&member, old);
                    self.list.insert(member, score);
                }
                false
            }
            None => {
                self.list.insert(member, score);
                true
            }
        }
    }

    /// Remove a member. Returns `true` if it was present.
    pub fn remove(&mut self, member: &[u8]) -> bool {
        match self.scores.remove(member) {
            Some(score) => {
                self.list.remove(member, score);
                true
            }
            None => false,
        }
    }

    pub fn score(&self, member: &[u8]) -> Option<f64> {
        self.scores.get(member).copied()
    }

    pub fn len(&self) -> usize {
        self.scores.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Members with `min <= score <= max`, in score order.
    pub fn range_by_score(&self, min: f64, max: f64) -> Vec<(Bytes, f64)> {
        self.list.range_by_score(min, max)
    }

    /// As [`Self::range_by_score`], stopping after `limit` members.
    pub fn range_by_score_limit(&self, min: f64, max: f64, limit: usize) -> Vec<(Bytes, f64)> {
        self.list.range_by_score_limit(min, max, limit)
    }

    /// Members with rank in `[start, stop]`, in score order.
    pub fn range_by_rank(&self, start: usize, stop: usize) -> Vec<(Bytes, f64)> {
        self.list.range_by_rank(start, stop)
    }

    /// Approximate heap footprint in bytes, for the space-overhead metric.
    pub fn memory_usage(&self) -> usize {
        self.scores
            .keys()
            .map(|m| m.len() + 8 + 48) // member + score + node overhead
            .sum()
    }
}

impl std::fmt::Debug for ZSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZSet").field("len", &self.len()).finish()
    }
}

/// A value stored at a key.
pub enum Value {
    Str(Bytes),
    List(VecDeque<Bytes>),
    Hash(HashMap<Bytes, Bytes>),
    Set(HashSet<Bytes>),
    ZSet(ZSet),
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(b) => f.debug_tuple("Str").field(b).finish(),
            Value::List(l) => f.debug_tuple("List").field(&l.len()).finish(),
            Value::Hash(h) => f.debug_tuple("Hash").field(&h.len()).finish(),
            Value::Set(s) => f.debug_tuple("Set").field(&s.len()).finish(),
            Value::ZSet(z) => z.fmt(f),
        }
    }
}

impl Value {
    /// Human-readable type name (as returned by Redis' `TYPE`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Hash(_) => "hash",
            Value::Set(_) => "set",
            Value::ZSet(_) => "zset",
        }
    }

    pub fn as_str(&self) -> KvResult<&Bytes> {
        match self {
            Value::Str(b) => Ok(b),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_hash(&self) -> KvResult<&HashMap<Bytes, Bytes>> {
        match self {
            Value::Hash(h) => Ok(h),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_hash_mut(&mut self) -> KvResult<&mut HashMap<Bytes, Bytes>> {
        match self {
            Value::Hash(h) => Ok(h),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_list_mut(&mut self) -> KvResult<&mut VecDeque<Bytes>> {
        match self {
            Value::List(l) => Ok(l),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_list(&self) -> KvResult<&VecDeque<Bytes>> {
        match self {
            Value::List(l) => Ok(l),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_set(&self) -> KvResult<&HashSet<Bytes>> {
        match self {
            Value::Set(s) => Ok(s),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_set_mut(&mut self) -> KvResult<&mut HashSet<Bytes>> {
        match self {
            Value::Set(s) => Ok(s),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_zset(&self) -> KvResult<&ZSet> {
        match self {
            Value::ZSet(z) => Ok(z),
            _ => Err(KvError::WrongType),
        }
    }

    pub fn as_zset_mut(&mut self) -> KvResult<&mut ZSet> {
        match self {
            Value::ZSet(z) => Ok(z),
            _ => Err(KvError::WrongType),
        }
    }

    /// True when a container value has become empty and the key should be
    /// removed from the keyspace (Redis deletes empty aggregates).
    pub fn is_empty_container(&self) -> bool {
        match self {
            Value::Str(_) => false,
            Value::List(l) => l.is_empty(),
            Value::Hash(h) => h.is_empty(),
            Value::Set(s) => s.is_empty(),
            Value::ZSet(z) => z.is_empty(),
        }
    }

    /// Approximate heap footprint in bytes, for the space-overhead metric
    /// (Table 3 of the paper).
    pub fn memory_usage(&self) -> usize {
        match self {
            Value::Str(b) => b.len(),
            Value::List(l) => l.iter().map(|b| b.len() + 16).sum(),
            Value::Hash(h) => h.iter().map(|(k, v)| k.len() + v.len() + 48).sum(),
            Value::Set(s) => s.iter().map(|m| m.len() + 48).sum(),
            Value::ZSet(z) => z.memory_usage(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn zset_add_update_remove() {
        let mut z = ZSet::new();
        assert!(z.add(b("a"), 1.0));
        assert!(!z.add(b("a"), 2.0), "update is not an add");
        assert_eq!(z.score(b"a"), Some(2.0));
        assert_eq!(z.len(), 1);
        assert!(z.remove(b"a"));
        assert!(!z.remove(b"a"));
        assert!(z.is_empty());
    }

    #[test]
    fn zset_update_maintains_order() {
        let mut z = ZSet::new();
        z.add(b("a"), 1.0);
        z.add(b("b"), 2.0);
        z.add(b("a"), 3.0); // a moves after b
        let members: Vec<_> = z.range_by_score(f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(members[0].0, b("b"));
        assert_eq!(members[1].0, b("a"));
    }

    #[test]
    fn zset_same_score_readd_is_noop() {
        let mut z = ZSet::new();
        z.add(b("a"), 1.0);
        assert!(!z.add(b("a"), 1.0));
        assert_eq!(z.range_by_score(1.0, 1.0).len(), 1);
    }

    #[test]
    fn wrong_type_errors() {
        let v = Value::Str(b("x"));
        assert_eq!(v.as_hash().unwrap_err(), KvError::WrongType);
        assert_eq!(v.as_set().unwrap_err(), KvError::WrongType);
        assert_eq!(v.as_zset().unwrap_err(), KvError::WrongType);
        let mut v = Value::Hash(HashMap::new());
        assert_eq!(v.as_str().unwrap_err(), KvError::WrongType);
        assert!(v.as_hash_mut().is_ok());
    }

    #[test]
    fn empty_container_detection() {
        assert!(!Value::Str(b("")).is_empty_container());
        assert!(Value::Hash(HashMap::new()).is_empty_container());
        assert!(Value::Set(HashSet::new()).is_empty_container());
        assert!(Value::List(VecDeque::new()).is_empty_container());
        let mut s = HashSet::new();
        s.insert(b("m"));
        assert!(!Value::Set(s).is_empty_container());
    }

    #[test]
    fn memory_usage_scales_with_content() {
        let small = Value::Str(b("ab"));
        let large = Value::Str(Bytes::from(vec![0u8; 1000]));
        assert!(large.memory_usage() > small.memory_usage());
        let mut h = HashMap::new();
        h.insert(b("field"), b("value"));
        let hash = Value::Hash(h);
        assert!(hash.memory_usage() >= 10);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Str(b("")).type_name(), "string");
        assert_eq!(Value::ZSet(ZSet::new()).type_name(), "zset");
    }
}
