use std::fmt;

/// Errors surfaced by the key-value store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// Operation applied to a key holding a different value type
    /// (Redis' `WRONGTYPE`).
    WrongType,
    /// A command was malformed (wrong arity, unparsable integer, ...).
    Syntax(String),
    /// The append-only file could not be written or replayed.
    Aof(String),
    /// Persisted data failed authentication/decryption on replay.
    Corrupt(String),
    /// An I/O error from the persistence layer.
    Io(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::WrongType => {
                write!(
                    f,
                    "WRONGTYPE operation against a key holding the wrong kind of value"
                )
            }
            KvError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            KvError::Aof(msg) => write!(f, "append-only file error: {msg}"),
            KvError::Corrupt(msg) => write!(f, "corrupt persisted data: {msg}"),
            KvError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> Self {
        KvError::Io(e.to_string())
    }
}

/// Store-level result alias.
pub type KvResult<T> = Result<T, KvError>;
