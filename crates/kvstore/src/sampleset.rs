//! An indexed set supporting O(1) insert, remove, membership, and uniform
//! random sampling.
//!
//! Redis keeps the keys-with-expiry in a dict it can sample randomly
//! (`dictGetRandomKey`). A plain `HashMap` cannot be sampled in O(1), so the
//! store pairs a dense `Vec` of elements with a position map; removal
//! swap-removes and patches the displaced element's index. The keyspace
//! itself also uses one of these for SCAN cursors and RANDOMKEY.

use crate::rng::XorShift64;
use std::collections::HashMap;
use std::hash::Hash;

/// A set over `T` with O(1) uniform random sampling.
#[derive(Debug, Clone, Default)]
pub struct SampleSet<T: Eq + Hash + Clone> {
    items: Vec<T>,
    pos: HashMap<T, usize>,
}

impl<T: Eq + Hash + Clone> SampleSet<T> {
    pub fn new() -> Self {
        SampleSet {
            items: Vec::new(),
            pos: HashMap::new(),
        }
    }

    /// Insert `item`; returns `true` if it was not already present.
    pub fn insert(&mut self, item: T) -> bool {
        if self.pos.contains_key(&item) {
            return false;
        }
        self.pos.insert(item.clone(), self.items.len());
        self.items.push(item);
        true
    }

    /// Remove `item`; returns `true` if it was present.
    pub fn remove(&mut self, item: &T) -> bool {
        let Some(idx) = self.pos.remove(item) else {
            return false;
        };
        let last = self.items.len() - 1;
        self.items.swap(idx, last);
        self.items.pop();
        if idx < self.items.len() {
            // Patch the index of the element that was swapped into `idx`.
            *self
                .pos
                .get_mut(&self.items[idx])
                .expect("swapped element indexed") = idx;
        }
        true
    }

    pub fn contains(&self, item: &T) -> bool {
        self.pos.contains_key(item)
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Uniformly random element, or `None` if empty.
    pub fn sample(&self, rng: &mut XorShift64) -> Option<&T> {
        if self.items.is_empty() {
            None
        } else {
            Some(&self.items[rng.next_below(self.items.len())])
        }
    }

    /// Element at a dense position (used for SCAN-style cursors). Positions
    /// are only stable in the absence of removals.
    pub fn get_at(&self, idx: usize) -> Option<&T> {
        self.items.get(idx)
    }

    /// Iterate all elements in dense order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SampleSet::new();
        assert!(s.insert("a"));
        assert!(!s.insert("a"), "duplicate insert must be rejected");
        assert!(s.insert("b"));
        assert!(s.contains(&"a"));
        assert!(s.remove(&"a"));
        assert!(!s.remove(&"a"));
        assert!(!s.contains(&"a"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn swap_remove_keeps_indices_consistent() {
        let mut s = SampleSet::new();
        for i in 0..100 {
            s.insert(i);
        }
        // Remove from the middle repeatedly; every remaining element must
        // still be findable and removable.
        for i in (0..100).step_by(3) {
            assert!(s.remove(&i));
        }
        for i in 0..100 {
            assert_eq!(s.contains(&i), i % 3 != 0);
        }
        for i in 0..100 {
            if i % 3 != 0 {
                assert!(s.remove(&i), "element {i} lost after swap-removals");
            }
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sample_is_uniformish() {
        let mut s = SampleSet::new();
        for i in 0..10 {
            s.insert(i);
        }
        let mut rng = XorShift64::new(123);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[*s.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!((700..1300).contains(&count), "element {i} skewed: {count}");
        }
    }

    #[test]
    fn sample_of_empty_is_none() {
        let s: SampleSet<u32> = SampleSet::new();
        assert!(s.sample(&mut XorShift64::new(1)).is_none());
    }

    #[test]
    fn iter_yields_all() {
        let mut s = SampleSet::new();
        for i in 0..5 {
            s.insert(i);
        }
        let mut got: Vec<_> = s.iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
