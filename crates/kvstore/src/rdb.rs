//! Point-in-time snapshots — the RDB file of this Redis-shaped store.
//!
//! The paper's at-rest encryption (LUKS) protects exactly this artifact for
//! an in-memory store: the serialized dataset on disk. A snapshot captures
//! every live key with its value and absolute expiry; restoring into a store
//! sharing the same clock domain resurrects the dataset with TTL deadlines
//! intact. Snapshots are framed like the AOF (`[u32 length][payload]`, one
//! frame per key) and sealed with [`crypto::Volume`] when encryption at rest
//! is configured.

use crate::db::Db;
use crate::error::{KvError, KvResult};
use crate::value::{Value, ZSet};
use bytes::Bytes;
use crypto::Volume;
use std::collections::{HashMap, HashSet, VecDeque};

/// Magic prefix so a snapshot is never confused with an AOF.
const MAGIC: &[u8; 8] = b"KVSNAP01";

/// Serialize the whole keyspace.
pub fn snapshot(db: &Db, volume: Option<&Volume>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut block = 0u64;
    let keys: Vec<Bytes> = db.keys_matching(b"*");
    for key in keys {
        let mut payload = Vec::new();
        encode_bytes(&mut payload, &key);
        match db.expiry_of(&key) {
            Some(at) => {
                payload.push(1);
                payload.extend_from_slice(&at.as_millis().to_le_bytes());
            }
            None => payload.push(0),
        }
        // Peek the value without the lazy-expiry mutation path: the caller
        // holds `&Db`, and `expiry_of`/`keys_matching` are non-reaping.
        let Some(value) = db.peek(&key) else { continue };
        encode_value(&mut payload, value);
        let framed = match volume {
            Some(v) => {
                let sealed = v.seal(block, &payload);
                block += 1;
                sealed
            }
            None => payload,
        };
        out.extend_from_slice(&(framed.len() as u32).to_le_bytes());
        out.extend_from_slice(&framed);
    }
    out
}

/// Restore a snapshot into an (empty or not) keyspace. Existing keys with
/// the same names are overwritten. Returns keys restored.
pub fn restore(db: &mut Db, data: &[u8], volume: Option<&Volume>) -> KvResult<usize> {
    let rest = data
        .strip_prefix(MAGIC.as_slice())
        .ok_or_else(|| KvError::Corrupt("not a snapshot (bad magic)".into()))?;
    let mut rest = rest;
    let mut expected_block = 0u64;
    let mut restored = 0usize;
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(KvError::Corrupt("truncated snapshot frame header".into()));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(KvError::Corrupt("truncated snapshot frame".into()));
        }
        let frame = &rest[..len];
        rest = &rest[len..];
        let plain;
        let payload: &[u8] = match volume {
            Some(v) => {
                let (block, pt) = v
                    .open(frame)
                    .map_err(|e| KvError::Corrupt(format!("snapshot decrypt: {e}")))?;
                if block != expected_block {
                    return Err(KvError::Corrupt("snapshot frame out of order".into()));
                }
                expected_block += 1;
                plain = pt;
                &plain
            }
            None => frame,
        };
        let mut pos = 0usize;
        let key = decode_bytes(payload, &mut pos)?;
        let expiry = match take(payload, &mut pos, 1)?[0] {
            0 => None,
            1 => {
                let ms = u64::from_le_bytes(take(payload, &mut pos, 8)?.try_into().unwrap());
                Some(clock::Timestamp::from_millis(ms))
            }
            other => return Err(KvError::Corrupt(format!("bad expiry tag {other}"))),
        };
        let value = decode_value(payload, &mut pos)?;
        if pos != payload.len() {
            return Err(KvError::Corrupt("trailing bytes in snapshot frame".into()));
        }
        db.set(key.clone(), value);
        if let Some(at) = expiry {
            db.set_expiry(&key, at);
        }
        restored += 1;
    }
    Ok(restored)
}

fn encode_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> KvResult<&'a [u8]> {
    if buf.len() < *pos + n {
        return Err(KvError::Corrupt("truncated snapshot payload".into()));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn decode_bytes(buf: &[u8], pos: &mut usize) -> KvResult<Bytes> {
    let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
    Ok(Bytes::copy_from_slice(take(buf, pos, len)?))
}

fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Str(b) => {
            out.push(0);
            encode_bytes(out, b);
        }
        Value::List(l) => {
            out.push(1);
            out.extend_from_slice(&(l.len() as u32).to_le_bytes());
            for item in l {
                encode_bytes(out, item);
            }
        }
        Value::Hash(h) => {
            out.push(2);
            out.extend_from_slice(&(h.len() as u32).to_le_bytes());
            for (f, v) in h {
                encode_bytes(out, f);
                encode_bytes(out, v);
            }
        }
        Value::Set(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for m in s {
                encode_bytes(out, m);
            }
        }
        Value::ZSet(z) => {
            out.push(4);
            let members = z.range_by_score(f64::NEG_INFINITY, f64::INFINITY);
            out.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for (m, score) in members {
                encode_bytes(out, &m);
                out.extend_from_slice(&score.to_le_bytes());
            }
        }
    }
}

fn decode_value(buf: &[u8], pos: &mut usize) -> KvResult<Value> {
    let tag = take(buf, pos, 1)?[0];
    let count = |buf: &[u8], pos: &mut usize| -> KvResult<usize> {
        Ok(u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize)
    };
    Ok(match tag {
        0 => Value::Str(decode_bytes(buf, pos)?),
        1 => {
            let n = count(buf, pos)?;
            let mut l = VecDeque::with_capacity(n.min(4096));
            for _ in 0..n {
                l.push_back(decode_bytes(buf, pos)?);
            }
            Value::List(l)
        }
        2 => {
            let n = count(buf, pos)?;
            let mut h = HashMap::with_capacity(n.min(4096));
            for _ in 0..n {
                let f = decode_bytes(buf, pos)?;
                let v = decode_bytes(buf, pos)?;
                h.insert(f, v);
            }
            Value::Hash(h)
        }
        3 => {
            let n = count(buf, pos)?;
            let mut s = HashSet::with_capacity(n.min(4096));
            for _ in 0..n {
                s.insert(decode_bytes(buf, pos)?);
            }
            Value::Set(s)
        }
        4 => {
            let n = count(buf, pos)?;
            let mut z = ZSet::new();
            for _ in 0..n {
                let m = decode_bytes(buf, pos)?;
                let score = f64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap());
                z.add(m, score);
            }
            Value::ZSet(z)
        }
        other => return Err(KvError::Corrupt(format!("bad value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::Command;
    use crate::rng::XorShift64;
    use std::time::Duration;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn populated_db(clk: clock::SharedClock) -> Db {
        let mut db = Db::new(clk);
        let mut rng = XorShift64::new(1);
        let run = |db: &mut Db, rng: &mut XorShift64, cmd: Command| {
            cmd.execute(db, rng).unwrap();
        };
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("s"),
                value: b("v"),
                expire: None,
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::Set {
                key: b("exp"),
                value: b("v"),
                expire: Some(Duration::from_secs(60)),
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::RPush {
                key: b("l"),
                values: vec![b("1"), b("2")],
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::HSet {
                key: b("h"),
                pairs: vec![(b("f"), b("x")), (b("g"), b("y"))],
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::SAdd {
                key: b("set"),
                members: vec![b("a"), b("b")],
            },
        );
        run(
            &mut db,
            &mut rng,
            Command::ZAdd {
                key: b("z"),
                entries: vec![(2.0, b("two")), (1.0, b("one"))],
            },
        );
        db
    }

    #[test]
    fn roundtrip_all_value_types() {
        let sim = clock::sim();
        let db = populated_db(sim.clone());
        let snap = snapshot(&db, None);
        let mut restored = Db::new(sim.clone());
        assert_eq!(restore(&mut restored, &snap, None).unwrap(), 6);
        assert_eq!(restored.len(), 6);
        let mut rng = XorShift64::new(2);
        let reply = Command::ZRange {
            key: b("z"),
            start: 0,
            stop: -1,
        }
        .execute(&mut restored, &mut rng)
        .unwrap();
        assert_eq!(reply.as_array().unwrap().len(), 2);
        // Expiry carried over as an absolute deadline.
        sim.advance(Duration::from_secs(61));
        assert!(!restored.exists(b"exp"));
        assert!(restored.exists(b"s"));
    }

    #[test]
    fn encrypted_snapshot_roundtrip_and_opacity() {
        let sim = clock::sim();
        let db = populated_db(sim.clone());
        let volume = Volume::new(b"rdb-key");
        let snap = snapshot(&db, Some(&volume));
        assert!(
            !snap.windows(3).any(|w| w == b"two"),
            "member values must not appear in the sealed snapshot"
        );
        let mut restored = Db::new(sim);
        assert_eq!(restore(&mut restored, &snap, Some(&volume)).unwrap(), 6);
        // Wrong key fails.
        let wrong = Volume::new(b"other");
        let mut fresh = Db::new(clock::sim());
        assert!(restore(&mut fresh, &snap, Some(&wrong)).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        let mut db = Db::new(clock::sim());
        assert!(restore(&mut db, b"definitely-not-a-snapshot", None).is_err());
        let sim = clock::sim();
        let good = snapshot(&populated_db(sim), None);
        assert!(restore(&mut db, &good[..good.len() - 2], None).is_err());
    }
}
