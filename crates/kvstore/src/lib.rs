//! An in-memory NoSQL key-value store in the mould of Redis v5.
//!
//! This crate is the "Redis" of the reproduction: the paper retrofits Redis
//! into GDPR compliance (§5.1) and attributes its benchmark behaviour to a
//! handful of design properties, all of which are implemented here faithfully:
//!
//! * **Single-threaded command execution.** Every command funnels through one
//!   lock ([`server::KvStore`]), so writes and reads serialize exactly as in
//!   Redis' event loop. This is what makes the GDPR security features so much
//!   more expensive here than in the relational store.
//! * **No secondary indexes.** The keyspace is a hash table; any query that
//!   is not a key lookup must SCAN, which is how the paper's metadata-based
//!   GDPR queries end up O(n) (Figures 5a, 7b).
//! * **Lazy probabilistic expiration.** The stock expiration cycle samples 20
//!   random keys from the expire-set every 100 ms and only loops immediately
//!   when ≥5 were expired ([`expire`]). The GDPR retrofit switches this to a
//!   strict full sweep ([`expire::ExpirationMode::Strict`]) — Figure 3a.
//! * **Append-only-file persistence.** The AOF logs mutating commands with a
//!   configurable fsync policy; the GDPR retrofit additionally logs reads and
//!   scans to produce an audit trail ([`aof`], Figure 4a's `Log` bar) and can
//!   seal every record with the at-rest cipher (`Encrypt` bar).
//!
//! ```
//! use kvstore::{KvConfig, KvStore};
//!
//! let store = KvStore::open(KvConfig::default()).unwrap();
//! store.set(b"ph-1x4b", b"123-456-7890").unwrap();
//! assert_eq!(store.get(b"ph-1x4b").unwrap().unwrap().as_ref(), b"123-456-7890");
//! ```

pub mod aof;
pub mod commands;
pub mod config;
pub mod db;
pub mod error;
pub mod expire;
pub mod glob;
pub mod rdb;
pub mod resp;
pub mod rng;
pub mod sampleset;
pub mod server;
pub mod skiplist;
pub mod value;

pub use bytes::Bytes;
pub use commands::{Command, Reply};
pub use config::{FsyncPolicy, KvConfig};
pub use error::KvError;
pub use expire::ExpirationMode;
pub use server::KvStore;
pub use value::Value;
