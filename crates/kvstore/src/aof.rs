//! The append-only file: Redis' persistence and, under GDPR, its audit trail.
//!
//! Every logged command is framed as `[u32 little-endian length][payload]`
//! where the payload is the RESP encoding of the command — optionally sealed
//! with the at-rest cipher ([`crypto::Volume`], the LUKS stand-in). The frame
//! length makes sealed payloads parseable; plain RESP would be
//! self-delimiting but uniform framing keeps replay identical in both modes.
//!
//! The paper measures AOF logging as the single most expensive GDPR feature
//! for Redis (~70% throughput loss once reads are logged too), so the write
//! path here is deliberately realistic: buffered appends, an fsync policy,
//! and optional per-record encryption.

use crate::config::{AofStorage, FsyncPolicy};
use crate::error::{KvError, KvResult};
use crate::resp;
use bytes::Bytes;
use clock::{SharedClock, Timestamp};
use crypto::Volume;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// An in-memory AOF buffer shared with tests.
pub type MemBuffer = Arc<Mutex<Vec<u8>>>;

enum Sink {
    File(BufWriter<File>),
    Memory(MemBuffer),
}

/// The append-only file writer.
pub struct Aof {
    sink: Sink,
    policy: FsyncPolicy,
    volume: Option<Volume>,
    clock: SharedClock,
    last_sync: Timestamp,
    next_block: u64,
    /// Total commands appended.
    pub records: u64,
    /// Total payload bytes appended (after framing/encryption).
    pub bytes: u64,
}

impl Aof {
    /// Open an AOF writer. Returns `None` for [`AofStorage::Disabled`].
    pub fn open(
        storage: &AofStorage,
        policy: FsyncPolicy,
        volume: Option<Volume>,
        clock: SharedClock,
    ) -> KvResult<Option<Aof>> {
        let sink = match storage {
            AofStorage::Disabled => return Ok(None),
            AofStorage::File(path) => {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| KvError::Aof(format!("open {path:?}: {e}")))?;
                Sink::File(BufWriter::new(file))
            }
            AofStorage::Memory => Sink::Memory(Arc::new(Mutex::new(Vec::new()))),
        };
        let last_sync = clock.now();
        Ok(Some(Aof {
            sink,
            policy,
            volume,
            clock,
            last_sync,
            next_block: 0,
            records: 0,
            bytes: 0,
        }))
    }

    /// Handle to the in-memory buffer, if this AOF is memory-backed.
    pub fn memory_buffer(&self) -> Option<MemBuffer> {
        match &self.sink {
            Sink::Memory(buf) => Some(Arc::clone(buf)),
            Sink::File(_) => None,
        }
    }

    /// Append one command (name + args).
    pub fn append(&mut self, parts: &[Bytes]) -> KvResult<()> {
        let mut payload = resp::encode_command(parts);
        if let Some(volume) = &self.volume {
            payload = volume.seal(self.next_block, &payload);
            self.next_block += 1;
        }
        let frame_len = payload.len() as u32;
        match &mut self.sink {
            Sink::File(w) => {
                w.write_all(&frame_len.to_le_bytes())?;
                w.write_all(&payload)?;
            }
            Sink::Memory(buf) => {
                let mut buf = buf.lock();
                buf.extend_from_slice(&frame_len.to_le_bytes());
                buf.extend_from_slice(&payload);
            }
        }
        self.records += 1;
        self.bytes += 4 + payload.len() as u64;
        self.maybe_sync()?;
        Ok(())
    }

    fn maybe_sync(&mut self) -> KvResult<()> {
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EverySec => {
                if self.clock.now() - self.last_sync >= Duration::from_secs(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Continue a log that already holds `frames` frames over `bytes`
    /// bytes — the reopen-for-append path ([`crate::KvStore::open_persistent`]).
    /// Seeds the cipher block sequence (encrypted frames are numbered
    /// monotonically across the whole file, so a re-opened writer must
    /// not restart at block 0) and the records/bytes accounting.
    pub fn resume_after(&mut self, frames: u64, bytes: u64) {
        self.next_block = frames;
        self.records = frames;
        self.bytes = bytes;
    }

    /// Flush buffers and (for files) fsync to stable storage.
    pub fn sync(&mut self) -> KvResult<()> {
        if let Sink::File(w) = &mut self.sink {
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        self.last_sync = self.clock.now();
        Ok(())
    }
}

/// Tolerant replay for crash recovery: like [`decode_stream`], but a
/// *truncated final frame* — the signature of a crash mid-append — is
/// dropped rather than treated as corruption, mirroring Redis'
/// `aof-load-truncated yes`. Corruption *before* the tail (bad tag, garbage
/// payload, reordered encrypted frames) still fails: that is tampering or
/// bitrot, not a torn write. Returns the commands plus how many trailing
/// bytes were discarded.
pub fn decode_stream_tolerant(
    data: &[u8],
    volume: Option<&Volume>,
) -> KvResult<(Vec<Vec<Bytes>>, usize)> {
    match decode_stream(data, volume) {
        Ok(commands) => Ok((commands, 0)),
        Err(_) => {
            // Find the longest decodable prefix along frame boundaries.
            let mut offset = 0usize;
            let mut commands = Vec::new();
            let mut expected_block = 0u64;
            while data.len() >= offset + 4 {
                let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
                let Some(payload) = data.get(offset + 4..offset + 4 + len) else {
                    break; // torn tail
                };
                let decoded = decode_frame(payload, volume, &mut expected_block);
                match decoded {
                    Ok(parts) => {
                        commands.push(parts);
                        offset += 4 + len;
                    }
                    // A complete-but-undecodable frame is real corruption.
                    Err(e) => return Err(e),
                }
            }
            Ok((commands, data.len() - offset))
        }
    }
}

fn decode_frame(
    payload: &[u8],
    volume: Option<&Volume>,
    expected_block: &mut u64,
) -> KvResult<Vec<Bytes>> {
    let plain;
    let resp_bytes: &[u8] = match volume {
        Some(v) => {
            let (block_no, pt) = v
                .open(payload)
                .map_err(|e| KvError::Corrupt(format!("frame decrypt: {e}")))?;
            if block_no != *expected_block {
                return Err(KvError::Corrupt(format!(
                    "frame out of order: got block {block_no}, expected {expected_block}"
                )));
            }
            *expected_block += 1;
            plain = pt;
            &plain
        }
        None => payload,
    };
    let (parts, consumed) = resp::parse_command(resp_bytes)?;
    if consumed != resp_bytes.len() {
        return Err(KvError::Corrupt("trailing bytes in frame".into()));
    }
    Ok(parts)
}

/// Replay: decode a raw AOF byte stream into the command sequence.
pub fn decode_stream(mut data: &[u8], volume: Option<&Volume>) -> KvResult<Vec<Vec<Bytes>>> {
    let mut commands = Vec::new();
    let mut expected_block = 0u64;
    while !data.is_empty() {
        if data.len() < 4 {
            return Err(KvError::Corrupt("truncated frame header".into()));
        }
        let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        data = &data[4..];
        if data.len() < len {
            return Err(KvError::Corrupt("truncated frame payload".into()));
        }
        let payload = &data[..len];
        data = &data[len..];
        let plain;
        let resp_bytes: &[u8] = match volume {
            Some(v) => {
                let (block_no, pt) = v
                    .open(payload)
                    .map_err(|e| KvError::Corrupt(format!("frame decrypt: {e}")))?;
                if block_no != expected_block {
                    return Err(KvError::Corrupt(format!(
                        "frame out of order: got block {block_no}, expected {expected_block}"
                    )));
                }
                expected_block += 1;
                plain = pt;
                &plain
            }
            None => payload,
        };
        let (parts, consumed) = resp::parse_command(resp_bytes)?;
        if consumed != resp_bytes.len() {
            return Err(KvError::Corrupt("trailing bytes in frame".into()));
        }
        commands.push(parts);
    }
    Ok(commands)
}

/// Read and decode an AOF file from disk.
pub fn read_file(path: &Path, volume: Option<&Volume>) -> KvResult<Vec<Vec<Bytes>>> {
    let mut data = Vec::new();
    File::open(path)
        .map_err(|e| KvError::Aof(format!("open {path:?}: {e}")))?
        .read_to_end(&mut data)?;
    decode_stream(&data, volume)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn mem_aof(volume: Option<Volume>) -> (Aof, MemBuffer) {
        let aof = Aof::open(
            &AofStorage::Memory,
            FsyncPolicy::Never,
            volume,
            clock::wall(),
        )
        .unwrap()
        .unwrap();
        let buf = aof.memory_buffer().unwrap();
        (aof, buf)
    }

    #[test]
    fn disabled_storage_yields_none() {
        let aof = Aof::open(
            &AofStorage::Disabled,
            FsyncPolicy::Never,
            None,
            clock::wall(),
        )
        .unwrap();
        assert!(aof.is_none());
    }

    #[test]
    fn append_and_replay_plain() {
        let (mut aof, buf) = mem_aof(None);
        aof.append(&[b("SET"), b("k"), b("v")]).unwrap();
        aof.append(&[b("DEL"), b("k")]).unwrap();
        assert_eq!(aof.records, 2);
        let commands = decode_stream(&buf.lock(), None).unwrap();
        assert_eq!(commands.len(), 2);
        assert_eq!(commands[0], vec![b("SET"), b("k"), b("v")]);
        assert_eq!(commands[1], vec![b("DEL"), b("k")]);
    }

    #[test]
    fn append_and_replay_encrypted() {
        let volume = Volume::new(b"aof-key");
        let (mut aof, buf) = mem_aof(Some(Volume::new(b"aof-key")));
        aof.append(&[b("SET"), b("secret"), b("credit-card")])
            .unwrap();
        let raw = buf.lock().clone();
        assert!(
            !raw.windows(11).any(|w| w == b"credit-card"),
            "plaintext must not appear in the encrypted AOF"
        );
        let commands = decode_stream(&raw, Some(&volume)).unwrap();
        assert_eq!(commands[0], vec![b("SET"), b("secret"), b("credit-card")]);
    }

    #[test]
    fn encrypted_replay_with_wrong_key_fails() {
        let (mut aof, buf) = mem_aof(Some(Volume::new(b"right-key")));
        aof.append(&[b("SET"), b("k"), b("v")]).unwrap();
        let raw = buf.lock().clone();
        let wrong = Volume::new(b"wrong-key");
        assert!(matches!(
            decode_stream(&raw, Some(&wrong)),
            Err(KvError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let (mut aof, buf) = mem_aof(None);
        aof.append(&[b("SET"), b("k"), b("v")]).unwrap();
        let raw = buf.lock().clone();
        assert!(matches!(
            decode_stream(&raw[..raw.len() - 2], None),
            Err(KvError::Corrupt(_))
        ));
        assert!(matches!(
            decode_stream(&raw[..2], None),
            Err(KvError::Corrupt(_))
        ));
    }

    #[test]
    fn reordered_encrypted_frames_are_rejected() {
        let (mut aof, buf) = mem_aof(Some(Volume::new(b"k")));
        aof.append(&[b("SET"), b("a"), b("1")]).unwrap();
        let first_end = buf.lock().len();
        aof.append(&[b("SET"), b("b"), b("2")]).unwrap();
        let raw = buf.lock().clone();
        // Swap the two frames.
        let mut swapped = raw[first_end..].to_vec();
        swapped.extend_from_slice(&raw[..first_end]);
        let volume = Volume::new(b"k");
        assert!(matches!(
            decode_stream(&swapped, Some(&volume)),
            Err(KvError::Corrupt(_))
        ));
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kvaof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.aof");
        let _ = std::fs::remove_file(&path);
        {
            let mut aof = Aof::open(
                &AofStorage::File(path.clone()),
                FsyncPolicy::Always,
                None,
                clock::wall(),
            )
            .unwrap()
            .unwrap();
            for i in 0..10 {
                aof.append(&[b("SET"), b(&format!("k{i}")), b("v")])
                    .unwrap();
            }
            aof.sync().unwrap();
        }
        let commands = read_file(&path, None).unwrap();
        assert_eq!(commands.len(), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tolerant_decode_drops_torn_tail_only() {
        let (mut aof, buf) = mem_aof(None);
        aof.append(&[b("SET"), b("a"), b("1")]).unwrap();
        aof.append(&[b("SET"), b("b"), b("2")]).unwrap();
        let intact = buf.lock().clone();
        let second_frame_start = {
            let first_len = u32::from_le_bytes(intact[..4].try_into().unwrap()) as usize;
            4 + first_len
        };
        // Tear the last frame mid-payload: tolerant decode keeps frame 1.
        let torn = &intact[..second_frame_start + 5];
        let (commands, dropped) = decode_stream_tolerant(torn, None).unwrap();
        assert_eq!(commands.len(), 1);
        assert_eq!(commands[0][1], b("a"));
        assert_eq!(dropped, 5);
        // An intact stream drops nothing.
        let (commands, dropped) = decode_stream_tolerant(&intact, None).unwrap();
        assert_eq!((commands.len(), dropped), (2, 0));
        // Mid-stream corruption (not a torn tail) still fails.
        let mut corrupt = intact.clone();
        corrupt[6] ^= 0xFF; // inside frame 1's payload
        assert!(decode_stream_tolerant(&corrupt, None).is_err());
    }

    #[test]
    fn tolerant_decode_with_encryption() {
        let volume = Volume::new(b"k");
        let (mut aof, buf) = mem_aof(Some(Volume::new(b"k")));
        aof.append(&[b("SET"), b("a"), b("1")]).unwrap();
        aof.append(&[b("SET"), b("b"), b("2")]).unwrap();
        let intact = buf.lock().clone();
        let torn = &intact[..intact.len() - 3];
        let (commands, dropped) = decode_stream_tolerant(torn, Some(&volume)).unwrap();
        assert_eq!(commands.len(), 1);
        assert!(dropped > 0);
    }

    #[test]
    fn bytes_accounting_grows() {
        let (mut aof, _buf) = mem_aof(None);
        aof.append(&[b("SET"), b("k"), b("v")]).unwrap();
        let after_one = aof.bytes;
        aof.append(&[b("SET"), b("k"), b("a-much-longer-value-here")])
            .unwrap();
        assert!(
            aof.bytes > after_one * 2 - 8,
            "longer values use more bytes"
        );
    }
}
