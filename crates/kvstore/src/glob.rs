//! Redis-style glob pattern matching for `KEYS` and `SCAN ... MATCH`.
//!
//! Supports `*` (any run of bytes), `?` (any single byte), `[abc]` /
//! `[a-z]` / `[^abc]` character classes, and `\` escapes — the semantics of
//! Redis' `stringmatchlen`.

/// Returns true if `pattern` matches all of `text`.
pub fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    match_inner(pattern, text)
}

fn match_inner(mut pat: &[u8], mut text: &[u8]) -> bool {
    while let Some(&p) = pat.first() {
        match p {
            b'*' => {
                // Collapse consecutive stars.
                while pat.first() == Some(&b'*') {
                    pat = &pat[1..];
                }
                if pat.is_empty() {
                    return true;
                }
                // Try to match the remainder at every suffix of text.
                for i in 0..=text.len() {
                    if match_inner(pat, &text[i..]) {
                        return true;
                    }
                }
                return false;
            }
            b'?' => {
                if text.is_empty() {
                    return false;
                }
                pat = &pat[1..];
                text = &text[1..];
            }
            b'[' => {
                let Some(&c) = text.first() else {
                    return false;
                };
                let (matched, rest) = match_class(&pat[1..], c);
                if !matched {
                    return false;
                }
                pat = rest;
                text = &text[1..];
            }
            b'\\' if pat.len() >= 2 => {
                if text.first() != Some(&pat[1]) {
                    return false;
                }
                pat = &pat[2..];
                text = &text[1..];
            }
            _ => {
                if text.first() != Some(&p) {
                    return false;
                }
                pat = &pat[1..];
                text = &text[1..];
            }
        }
    }
    text.is_empty()
}

/// Match one character against the class starting after `[`. Returns whether
/// it matched and the pattern remainder after the closing `]`.
fn match_class(pat: &[u8], c: u8) -> (bool, &[u8]) {
    let mut i = 0;
    let negate = pat.first() == Some(&b'^');
    if negate {
        i += 1;
    }
    let mut matched = false;
    let mut first = true;
    while i < pat.len() {
        match pat[i] {
            b']' if !first => {
                return (matched != negate, &pat[i + 1..]);
            }
            b'\\' if i + 1 < pat.len() => {
                if pat[i + 1] == c {
                    matched = true;
                }
                i += 2;
            }
            lo if i + 2 < pat.len() && pat[i + 1] == b'-' && pat[i + 2] != b']' => {
                let hi = pat[i + 2];
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                if (lo..=hi).contains(&c) {
                    matched = true;
                }
                i += 3;
            }
            lit => {
                if lit == c {
                    matched = true;
                }
                i += 1;
            }
        }
        first = false;
    }
    // Unterminated class: treat as no match, consume everything (Redis treats
    // a missing ']' as matching to end; we are stricter but consistent).
    (false, &pat[pat.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: &str, t: &str) -> bool {
        glob_match(p.as_bytes(), t.as_bytes())
    }

    #[test]
    fn literal_match() {
        assert!(m("hello", "hello"));
        assert!(!m("hello", "hellO"));
        assert!(!m("hello", "hell"));
        assert!(!m("hell", "hello"));
    }

    #[test]
    fn star_matches_any_run() {
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("user:*", "user:42"));
        assert!(m("*:42", "user:42"));
        assert!(m("u*2", "user:42"));
        assert!(!m("u*3", "user:42"));
        assert!(m("a**b", "ab"));
        assert!(m("*x*", "axb"));
    }

    #[test]
    fn question_matches_single() {
        assert!(m("h?llo", "hello"));
        assert!(m("h?llo", "hallo"));
        assert!(!m("h?llo", "hllo"));
        assert!(!m("?", ""));
    }

    #[test]
    fn classes() {
        assert!(m("h[ae]llo", "hello"));
        assert!(m("h[ae]llo", "hallo"));
        assert!(!m("h[ae]llo", "hillo"));
        assert!(m("h[a-z]llo", "hqllo"));
        assert!(!m("h[a-z]llo", "hQllo"));
        assert!(m("h[^e]llo", "hallo"));
        assert!(!m("h[^e]llo", "hello"));
    }

    #[test]
    fn escapes() {
        assert!(m("h\\*llo", "h*llo"));
        assert!(!m("h\\*llo", "hxllo"));
        assert!(m("h\\?llo", "h?llo"));
        assert!(!m("h\\?llo", "hello"));
    }

    #[test]
    fn key_prefix_patterns_used_by_connectors() {
        assert!(m("rec:*", "rec:ph-1x4b"));
        assert!(!m("rec:*", "idx:usr:neo"));
        assert!(m("idx:usr:*", "idx:usr:neo"));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        assert!(m("", ""));
        assert!(!m("", "x"));
    }
}
