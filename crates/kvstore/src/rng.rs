//! A tiny deterministic RNG (xorshift64*) for the store's internal sampling.
//!
//! The expiration cycle needs cheap random key sampling. Pulling in a full
//! RNG crate for this would couple the store's behaviour to an external
//! dependency's stream; a 3-line xorshift keeps cycle behaviour reproducible
//! in tests (the workload generators in the `workload` crate use `rand`
//! properly — this RNG is internal to the store, as Redis' own `rand()` use
//! is internal to it).

/// xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is remapped (xorshift cannot hold 0).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(r.next_u64(), first);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(99);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut r = XorShift64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }
}
