//! Store configuration: the knobs the paper turns in §5.1 / Figure 4a.

use crate::expire::ExpirationMode;
use std::path::PathBuf;

/// When the append-only file is flushed to stable storage — Redis'
/// `appendfsync` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every logged command (durable, slow).
    Always,
    /// fsync at most once per second (the paper's configuration: "not
    /// synchronously in real-time, but in batches synchronized once every
    /// second").
    #[default]
    EverySec,
    /// Let the OS decide (fast, weakest durability).
    Never,
}

/// Where the append-only file lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AofStorage {
    /// No AOF at all (the Figure 4a baseline).
    Disabled,
    /// A real file on disk.
    File(PathBuf),
    /// An in-memory buffer — for tests and deterministic replay checks.
    Memory,
}

/// Full store configuration.
///
/// The default configuration is "stock Redis with no security" — the
/// baseline of Figure 4a. Each GDPR feature from §5.1 is one toggle:
///
/// | paper feature    | knob |
/// |------------------|------|
/// | Encrypt (LUKS+TLS) | [`encrypt_at_rest`](Self::encrypt_at_rest) + [`encrypt_transit`](Self::encrypt_transit) |
/// | TTL (timely deletion) | [`expiration`](Self::expiration) = [`ExpirationMode::Strict`] |
/// | Log (audit via AOF)   | [`aof`](Self::aof) enabled + [`log_reads`](Self::log_reads) |
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Active-expiration algorithm.
    pub expiration: ExpirationMode,
    /// Append-only-file persistence/auditing.
    pub aof: AofStorage,
    /// AOF flush policy.
    pub fsync: FsyncPolicy,
    /// Log read and scan commands to the AOF as well — the paper's
    /// modification for GDPR monitoring ("we update its internal logic to
    /// log all interactions including reads and scans").
    pub log_reads: bool,
    /// Seal every AOF record with the at-rest cipher (the LUKS stand-in).
    pub encrypt_at_rest: bool,
    /// Round-trip every command and reply through an encrypted session (the
    /// stunnel stand-in).
    pub encrypt_transit: bool,
    /// Key material for the ciphers.
    pub cipher_seed: Vec<u8>,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            expiration: ExpirationMode::Lazy,
            aof: AofStorage::Disabled,
            fsync: FsyncPolicy::EverySec,
            log_reads: false,
            encrypt_at_rest: false,
            encrypt_transit: false,
            cipher_seed: b"gdprbench-default-key".to_vec(),
        }
    }
}

impl KvConfig {
    /// The paper's fully GDPR-compliant Redis: strict TTL, full audit
    /// logging (reads included), encryption at rest and in transit.
    pub fn gdpr_compliant(aof_path: impl Into<PathBuf>) -> Self {
        KvConfig {
            expiration: ExpirationMode::Strict,
            aof: AofStorage::File(aof_path.into()),
            fsync: FsyncPolicy::EverySec,
            log_reads: true,
            encrypt_at_rest: true,
            encrypt_transit: true,
            ..Default::default()
        }
    }

    /// In-memory variant of [`Self::gdpr_compliant`] for tests.
    pub fn gdpr_compliant_in_memory() -> Self {
        KvConfig {
            expiration: ExpirationMode::Strict,
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::EverySec,
            log_reads: true,
            encrypt_at_rest: true,
            encrypt_transit: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_stock_redis() {
        let c = KvConfig::default();
        assert_eq!(c.expiration, ExpirationMode::Lazy);
        assert_eq!(c.aof, AofStorage::Disabled);
        assert!(!c.log_reads && !c.encrypt_at_rest && !c.encrypt_transit);
    }

    #[test]
    fn compliant_config_enables_all_features() {
        let c = KvConfig::gdpr_compliant("/tmp/x.aof");
        assert_eq!(c.expiration, ExpirationMode::Strict);
        assert!(matches!(c.aof, AofStorage::File(_)));
        assert!(c.log_reads && c.encrypt_at_rest && c.encrypt_transit);
    }
}
