//! Active key expiration — the subsystem behind Figure 3a of the paper.
//!
//! Stock Redis expires keys with a **lazy probabilistic** cycle
//! (`activeExpireCycle` in `expire.c`); the paper (§5.1) describes it as:
//!
//! > once every 100ms, it samples 20 random keys from the set of keys with
//! > expire flag set; if any of these twenty have expired, they are actively
//! > deleted; if less than 5 keys got deleted, then wait till the next
//! > iteration, else repeat the loop immediately.
//!
//! As the fraction of keys carrying expiries grows, the expected delay before
//! a given expired key is sampled grows with the database size — which is how
//! the paper measures a ~3 hour erasure lag at 128 K keys. Their compliant
//! Redis replaces this with a **strict** full walk of the expire-set, which
//! erases everything past due within one cycle.
//!
//! Both algorithms are implemented here over the same [`Db`] and driven by an
//! explicit [`ExpirationCycle::run_cycle`] so that the Figure 3a harness can
//! execute them against a simulated clock.

use crate::db::Db;
use crate::rng::XorShift64;
use std::time::Duration;

/// How often the expiration cycle runs (Redis: server.hz = 10 → every 100ms).
pub const CYCLE_PERIOD: Duration = Duration::from_millis(100);
/// Keys sampled per lazy iteration (`ACTIVE_EXPIRE_CYCLE_LOOKUPS_PER_LOOP`).
pub const SAMPLES_PER_ITERATION: usize = 20;
/// If at least this many of a sample expired, loop again immediately.
pub const REPEAT_THRESHOLD: usize = 5;
/// Upper bound on immediate repeats within one cycle, standing in for Redis'
/// 25%-of-CPU time limit so a cycle cannot spin unboundedly.
pub const MAX_ITERATIONS_PER_CYCLE: usize = 1000;

/// Which expiration algorithm the store runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpirationMode {
    /// Stock Redis: probabilistic sampling. Expired keys may linger for a
    /// long time (Figure 3a's rising curve).
    #[default]
    Lazy,
    /// The paper's GDPR retrofit: every cycle walks the full expire-set, so
    /// all past-due keys are erased within one cycle (sub-second).
    Strict,
}

/// Statistics from one expiration cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Keys actively deleted this cycle.
    pub reaped: usize,
    /// Sampling iterations executed (lazy mode only; 1 for strict).
    pub iterations: usize,
    /// Keys inspected.
    pub inspected: usize,
}

/// The active-expiration driver. In production it is pumped by a background
/// thread ([`crate::server::KvStore`] owns it); in simulation the harness
/// calls [`run_cycle`](Self::run_cycle) and advances the clock by
/// [`CYCLE_PERIOD`] itself.
pub struct ExpirationCycle {
    mode: ExpirationMode,
    rng: XorShift64,
    /// Lifetime totals, for INFO/stats.
    pub total_reaped: u64,
}

impl ExpirationCycle {
    pub fn new(mode: ExpirationMode) -> Self {
        ExpirationCycle {
            mode,
            rng: XorShift64::new(0xE4B1_D00D),
            total_reaped: 0,
        }
    }

    pub fn mode(&self) -> ExpirationMode {
        self.mode
    }

    /// Execute one expiration cycle against `db`.
    pub fn run_cycle(&mut self, db: &mut Db) -> CycleStats {
        let stats = match self.mode {
            ExpirationMode::Lazy => self.lazy_cycle(db),
            ExpirationMode::Strict => strict_cycle(db),
        };
        self.total_reaped += stats.reaped as u64;
        stats
    }

    fn lazy_cycle(&mut self, db: &mut Db) -> CycleStats {
        let mut stats = CycleStats::default();
        loop {
            stats.iterations += 1;
            if db.expire_set_len() == 0 {
                break;
            }
            let sample = db.sample_expire_keys(SAMPLES_PER_ITERATION, &mut self.rng);
            stats.inspected += sample.len();
            let mut reaped_this_round = 0;
            for key in sample {
                if db.evict_if_due(&key) {
                    reaped_this_round += 1;
                }
            }
            stats.reaped += reaped_this_round;
            if reaped_this_round < REPEAT_THRESHOLD || stats.iterations >= MAX_ITERATIONS_PER_CYCLE
            {
                break;
            }
        }
        stats
    }
}

/// One strict cycle: walk the entire expire-set and delete everything past
/// due. O(size of expire-set), which is the cost the paper's compliant Redis
/// accepts in exchange for timely deletion.
fn strict_cycle(db: &mut Db) -> CycleStats {
    let keys = db.all_expire_keys();
    let mut stats = CycleStats {
        iterations: 1,
        inspected: keys.len(),
        reaped: 0,
    };
    for key in keys {
        if db.evict_if_due(&key) {
            stats.reaped += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use bytes::Bytes;
    use clock::Timestamp;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    /// Populate `n` keys, `frac_expired` of which are already past due.
    fn populate(db: &mut Db, n: usize, frac_due: f64) -> usize {
        let due = (n as f64 * frac_due) as usize;
        for i in 0..n {
            let key = b(&format!("k{i:06}"));
            db.set(key.clone(), Value::Str(b("v")));
            let at = if i < due {
                Timestamp::from_secs(1) // will be past due after advancing
            } else {
                Timestamp::from_secs(1_000_000)
            };
            db.set_expiry(&key, at);
        }
        due
    }

    #[test]
    fn strict_mode_reaps_everything_in_one_cycle() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        let due = populate(&mut db, 10_000, 0.2);
        sim.advance(std::time::Duration::from_secs(2));
        let mut cycle = ExpirationCycle::new(ExpirationMode::Strict);
        let stats = cycle.run_cycle(&mut db);
        assert_eq!(stats.reaped, due);
        assert_eq!(db.len(), 10_000 - due);
        assert_eq!(db.expire_set_len(), 10_000 - due);
    }

    #[test]
    fn lazy_mode_leaves_stragglers() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        // 2% due out of 50k: a single lazy cycle samples 20 keys and will
        // almost surely stop after one iteration, leaving most stragglers.
        let due = populate(&mut db, 50_000, 0.02);
        sim.advance(std::time::Duration::from_secs(2));
        let mut cycle = ExpirationCycle::new(ExpirationMode::Lazy);
        let stats = cycle.run_cycle(&mut db);
        assert!(
            stats.reaped < due,
            "one lazy cycle should not reap all {due} due keys (reaped {})",
            stats.reaped
        );
    }

    #[test]
    fn lazy_mode_eventually_converges() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        let due = populate(&mut db, 2_000, 0.5);
        sim.advance(std::time::Duration::from_secs(2));
        let mut cycle = ExpirationCycle::new(ExpirationMode::Lazy);
        let mut cycles = 0;
        let mut reaped = 0;
        while reaped < due && cycles < 100_000 {
            reaped += cycle.run_cycle(&mut db).reaped;
            sim.advance(CYCLE_PERIOD);
            cycles += 1;
        }
        assert_eq!(reaped, due, "lazy expiration never converged");
        assert_eq!(db.len(), 1_000);
    }

    #[test]
    fn lazy_repeats_when_many_expired() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        // All keys due: first iteration reaps ~20, which is ≥ threshold, so
        // the cycle must loop and reap far more than one sample's worth.
        populate(&mut db, 5_000, 1.0);
        sim.advance(std::time::Duration::from_secs(2));
        let mut cycle = ExpirationCycle::new(ExpirationMode::Lazy);
        let stats = cycle.run_cycle(&mut db);
        assert!(
            stats.iterations > 1,
            "cycle should repeat under heavy expiry"
        );
        assert!(stats.reaped > SAMPLES_PER_ITERATION);
    }

    #[test]
    fn cycle_on_empty_db_is_quiet() {
        let sim = clock::sim();
        let mut db = Db::new(sim);
        for mode in [ExpirationMode::Lazy, ExpirationMode::Strict] {
            let mut cycle = ExpirationCycle::new(mode);
            let stats = cycle.run_cycle(&mut db);
            assert_eq!(stats.reaped, 0);
        }
    }

    #[test]
    fn nothing_reaped_before_due_time() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        populate(&mut db, 1_000, 1.0); // due at t=1s, clock still at 0
        let mut cycle = ExpirationCycle::new(ExpirationMode::Strict);
        assert_eq!(cycle.run_cycle(&mut db).reaped, 0);
        assert_eq!(db.len(), 1_000);
    }

    #[test]
    fn total_reaped_accumulates() {
        let sim = clock::sim();
        let mut db = Db::new(sim.clone());
        populate(&mut db, 100, 1.0);
        sim.advance(std::time::Duration::from_secs(2));
        let mut cycle = ExpirationCycle::new(ExpirationMode::Strict);
        cycle.run_cycle(&mut db);
        assert_eq!(cycle.total_reaped, 100);
    }
}
