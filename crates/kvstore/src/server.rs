//! The store front-end: single-threaded command execution, AOF logging,
//! transit encryption, and the active-expiration driver.
//!
//! Like Redis, all commands — reads and writes alike — serialize through one
//! execution context (here, one mutex). Under GDPR retrofits this is the
//! property that makes Redis' slowdown so much steeper than PostgreSQL's:
//! every added per-operation cost (cipher, audit append, strict expiry
//! bookkeeping) is paid inside the serial section.

use crate::aof::{self, Aof};
use crate::commands::{Command, Reply};
use crate::config::{AofStorage, KvConfig};
use crate::db::Db;
use crate::error::{KvError, KvResult};
use crate::expire::{CycleStats, ExpirationCycle, CYCLE_PERIOD};
use crate::rng::XorShift64;
use bytes::Bytes;
use clock::SharedClock;
use crypto::channel::SecureChannel;
use crypto::Volume;
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Inner {
    db: Db,
    cycle: ExpirationCycle,
    aof: Option<Aof>,
    transit: Option<Transit>,
    rng: XorShift64,
}

/// Both endpoints of the simulated client↔server encrypted session. Holding
/// both in-process means every command pays seal+open twice (request and
/// reply), which is the cost stunnel adds.
struct Transit {
    client: crypto::channel::DuplexChannel,
    server: crypto::channel::DuplexChannel,
}

/// Operation counters, exposed for INFO-style reporting.
#[derive(Debug, Default)]
pub struct KvStats {
    pub commands: AtomicU64,
    pub writes: AtomicU64,
    pub reads: AtomicU64,
    pub aof_records: AtomicU64,
    pub expired_actively: AtomicU64,
    /// The store's **persistence generation**: write frames in AOF form
    /// (a `SET … EX` counts its rewritten `SET` + `EXPIREAT` pair), counted
    /// whether or not an AOF is attached. Replaying an AOF reproduces the
    /// exact value the live store had when the log was written — see
    /// [`KvStore::mutation_generation`].
    pub mutations: AtomicU64,
}

/// The key-value store.
pub struct KvStore {
    inner: Mutex<Inner>,
    config: KvConfig,
    clock: SharedClock,
    stats: KvStats,
    shutdown: Arc<AtomicBool>,
    expirer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl KvStore {
    /// Open a store with the given configuration against the wall clock.
    pub fn open(config: KvConfig) -> KvResult<Arc<Self>> {
        Self::open_with_clock(config, clock::wall())
    }

    /// Open a store against an explicit clock (simulated in experiments).
    pub fn open_with_clock(config: KvConfig, clk: SharedClock) -> KvResult<Arc<Self>> {
        let volume = config
            .encrypt_at_rest
            .then(|| Volume::new(&config.cipher_seed));
        let aof = Aof::open(&config.aof, config.fsync, volume, clk.clone())?;
        let transit = config.encrypt_transit.then(|| {
            let (client, server) = SecureChannel::pair(&config.cipher_seed);
            Transit { client, server }
        });
        Ok(Arc::new(KvStore {
            inner: Mutex::new(Inner {
                db: Db::new(clk.clone()),
                cycle: ExpirationCycle::new(config.expiration),
                aof,
                transit,
                rng: XorShift64::new(0xD15C_0B44),
            }),
            config,
            clock: clk,
            stats: KvStats::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            expirer: Mutex::new(None),
        }))
    }

    /// The store's configuration.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// The store's clock.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Operation counters.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Execute one command through the full pipeline: transit decryption,
    /// serial execution, AOF logging, transit encryption of the reply.
    pub fn execute(&self, cmd: Command) -> KvResult<Reply> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        // In-transit boundary: the "client" seals the request, the "server"
        // opens it — then the reverse for the reply. The store executes the
        // typed command; the wire trip exists to pay the honest cipher cost
        // and to catch any tampering in tests.
        if let Some(transit) = &mut inner.transit {
            let wire = crate::resp::encode_command(&cmd.to_wire());
            let sealed = transit.client.seal(&wire);
            let opened = transit
                .server
                .open(&sealed)
                .map_err(|e| KvError::Corrupt(format!("transit: {e}")))?;
            debug_assert_eq!(opened, wire);
        }

        let is_write = cmd.is_write();
        let reply = cmd.execute(&mut inner.db, &mut inner.rng)?;
        if is_write {
            // Counted in AOF-frame units (after execution — the frame count
            // of EXPIRE depends on whether a deadline now exists) so that
            // replaying the log lands on the identical generation.
            self.stats
                .mutations
                .fetch_add(Self::aof_frame_count(&cmd, &inner.db), Ordering::Relaxed);
        }

        if let Some(aof) = &mut inner.aof {
            if is_write || self.config.log_reads {
                for logged in Self::aof_form(&cmd, &inner.db) {
                    aof.append(&logged.to_wire())?;
                }
                self.stats.aof_records.store(aof.records, Ordering::Relaxed);
            }
        }

        if let Some(transit) = &mut inner.transit {
            let wire = reply.encode();
            let sealed = transit.server.seal(&wire);
            let opened = transit
                .client
                .open(&sealed)
                .map_err(|e| KvError::Corrupt(format!("transit: {e}")))?;
            debug_assert_eq!(opened, wire);
        }

        self.stats.commands.fetch_add(1, Ordering::Relaxed);
        if is_write {
            self.stats.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.reads.fetch_add(1, Ordering::Relaxed);
        }
        Ok(reply)
    }

    /// Rewrite a command into its replay-safe AOF form. Relative expiries
    /// become absolute deadlines (as Redis rewrites EXPIRE to PEXPIREAT), so
    /// replay at a later time does not resurrect TTLs.
    fn aof_form(cmd: &Command, db: &Db) -> Vec<Command> {
        match cmd {
            Command::Set {
                key,
                value,
                expire: Some(_),
            } => {
                let at = db.expiry_of(key).expect("expiry was just set");
                vec![
                    Command::Set {
                        key: key.clone(),
                        value: value.clone(),
                        expire: None,
                    },
                    Command::ExpireAt {
                        key: key.clone(),
                        at_ms: at.as_millis(),
                    },
                ]
            }
            Command::Expire { key, .. } => match db.expiry_of(key) {
                Some(at) => vec![Command::ExpireAt {
                    key: key.clone(),
                    at_ms: at.as_millis(),
                }],
                // EXPIRE on a missing key mutates nothing; log nothing.
                None => vec![],
            },
            other => vec![other.clone()],
        }
    }

    /// How many AOF frames [`Self::aof_form`] would log for `cmd` —
    /// without building them. Must be evaluated *after* the command
    /// executed (EXPIRE's count depends on the deadline it left behind).
    fn aof_frame_count(cmd: &Command, db: &Db) -> u64 {
        match cmd {
            Command::Set {
                expire: Some(_), ..
            } => 2, // rewritten as SET + EXPIREAT
            Command::Expire { key, .. } => u64::from(db.expiry_of(key).is_some()),
            _ => 1,
        }
    }

    /// The persistence generation: total write commands applied, in
    /// AOF-frame units. Two properties make this the stamp that ties an
    /// engine-side index snapshot to this store's state:
    ///
    /// * every committed write advances it — through the engine or behind
    ///   its back, with or without an AOF attached;
    /// * [`Self::replay`] / [`Self::open_persistent`] of an AOF leave the
    ///   rebuilt store at exactly the generation the live store had when
    ///   the log was written (a torn tail replays to a *smaller* value —
    ///   visibly stale, never silently equal).
    pub fn mutation_generation(&self) -> u64 {
        self.stats.mutations.load(Ordering::Relaxed)
    }

    /// Run one active-expiration cycle now. Experiment harnesses call this
    /// against a simulated clock; production uses the background driver.
    pub fn run_expiration_cycle(&self) -> CycleStats {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let stats = inner.cycle.run_cycle(&mut inner.db);
        self.stats
            .expired_actively
            .fetch_add(stats.reaped as u64, Ordering::Relaxed);
        stats
    }

    /// Start the background expiration driver (one cycle per
    /// [`CYCLE_PERIOD`]), as `serverCron` does in Redis. Idempotent.
    pub fn start_expiration_driver(self: &Arc<Self>) {
        let mut guard = self.expirer.lock();
        if guard.is_some() {
            return;
        }
        // Hold the store weakly: a driver with a strong Arc would keep the
        // store alive forever and the thread spinning after the last user
        // handle is gone.
        let store = Arc::downgrade(self);
        let shutdown = Arc::clone(&self.shutdown);
        *guard = Some(std::thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                let Some(store) = store.upgrade() else {
                    break;
                };
                store.run_expiration_cycle();
                let clock = store.clock.clone();
                drop(store); // do not pin the store across the sleep
                clock.sleep(CYCLE_PERIOD);
            }
        }));
    }

    /// Stop the background expiration driver, if running.
    pub fn stop_expiration_driver(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.expirer.lock().take() {
            // The driver can be the caller when it holds the last Arc (its
            // upgrade raced the owner's drop); a thread must not join
            // itself — shutdown is set, so it exits on its next check.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
        self.shutdown.store(false, Ordering::Relaxed);
    }

    /// Force an AOF flush/fsync.
    pub fn sync_aof(&self) -> KvResult<()> {
        if let Some(aof) = &mut self.inner.lock().aof {
            aof.sync()?;
        }
        Ok(())
    }

    /// Bytes appended to the AOF so far.
    pub fn aof_bytes(&self) -> u64 {
        self.inner.lock().aof.as_ref().map_or(0, |a| a.bytes)
    }

    /// Handle to the in-memory AOF buffer (memory-backed stores only).
    pub fn aof_memory_buffer(&self) -> Option<aof::MemBuffer> {
        self.inner
            .lock()
            .aof
            .as_ref()
            .and_then(|a| a.memory_buffer())
    }

    /// Serialize the keyspace to a point-in-time snapshot (the RDB file),
    /// sealed when encryption at rest is configured.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let volume = self
            .config
            .encrypt_at_rest
            .then(|| Volume::new(&self.config.cipher_seed));
        crate::rdb::snapshot(&self.inner.lock().db, volume.as_ref())
    }

    /// Restore a snapshot produced by [`Self::snapshot_bytes`] into this
    /// store (overwriting clashing keys). Returns keys restored.
    pub fn restore_snapshot(&self, data: &[u8]) -> KvResult<usize> {
        let volume = self
            .config
            .encrypt_at_rest
            .then(|| Volume::new(&self.config.cipher_seed));
        crate::rdb::restore(&mut self.inner.lock().db, data, volume.as_ref())
    }

    /// Replay an AOF byte stream into a fresh store with this configuration.
    pub fn replay(config: KvConfig, data: &[u8], clk: SharedClock) -> KvResult<Arc<Self>> {
        let volume = config
            .encrypt_at_rest
            .then(|| Volume::new(&config.cipher_seed));
        let commands = aof::decode_stream(data, volume.as_ref())?;
        // Replay with logging and transit disabled, then re-enable.
        let store = Self::open_with_clock(
            KvConfig {
                aof: AofStorage::Disabled,
                encrypt_transit: false,
                ..config
            },
            clk,
        )?;
        store.apply_replayed(commands)?;
        Ok(store)
    }

    /// Apply decoded AOF commands to this (fresh) store, advancing the
    /// persistence generation exactly as the original execution did.
    fn apply_replayed(&self, commands: Vec<Vec<Bytes>>) -> KvResult<()> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        for parts in commands {
            let cmd = Command::from_wire(&parts)?;
            // Read commands may appear in GDPR audit logs; applying them
            // is harmless but pointless, so skip.
            if cmd.is_write() {
                cmd.execute(&mut inner.db, &mut inner.rng)?;
                self.stats
                    .mutations
                    .fetch_add(Self::aof_frame_count(&cmd, &inner.db), Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Open a **file-persistent** store: replay the AOF at the configured
    /// [`AofStorage::File`] path if one exists (tolerating — and
    /// truncating away — a torn tail, as Redis' `aof-load-truncated`
    /// does), then keep appending to the same file, so state survives
    /// process restarts. The replayed commands advance
    /// [`Self::mutation_generation`] exactly as their original execution
    /// did. With any other [`AofStorage`] this is just
    /// [`Self::open_with_clock`].
    ///
    /// Absolute deadlines replay as written: the clock must have the same
    /// epoch semantics across runs (wall-clock epochs are anchored at
    /// construction, so restart gaps are not counted against TTLs —
    /// retention is measured in *served* time, matching how the
    /// simulated-clock harnesses reason).
    pub fn open_persistent(config: KvConfig, clk: SharedClock) -> KvResult<Arc<Self>> {
        let AofStorage::File(path) = &config.aof else {
            return Self::open_with_clock(config, clk);
        };
        let path = path.clone();
        let existing = match std::fs::read(&path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(KvError::Aof(format!("read {path:?}: {e}"))),
        };
        let volume = config
            .encrypt_at_rest
            .then(|| Volume::new(&config.cipher_seed));
        let (commands, dropped) = aof::decode_stream_tolerant(&existing, volume.as_ref())?;
        let retained = existing.len() - dropped;
        if dropped > 0 {
            // Cut the torn tail *before* reopening for append, or new
            // frames would land after unparseable garbage.
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| KvError::Aof(format!("truncate {path:?}: {e}")))?;
            file.set_len(retained as u64)
                .map_err(|e| KvError::Aof(format!("truncate {path:?}: {e}")))?;
            file.sync_all()
                .map_err(|e| KvError::Aof(format!("truncate {path:?}: {e}")))?;
        }
        let frames = commands.len() as u64;
        let store = Self::open_with_clock(config, clk)?;
        if let Some(aof) = &mut store.inner.lock().aof {
            // New appends continue the frame/cipher-block sequence (and the
            // byte accounting) where the retained prefix left off.
            aof.resume_after(frames, retained as u64);
        }
        store.apply_replayed(commands)?;
        Ok(store)
    }

    // ----- convenience wrappers used by connectors and tests -----

    pub fn set(&self, key: &[u8], value: &[u8]) -> KvResult<()> {
        self.execute(Command::Set {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            expire: None,
        })
        .map(|_| ())
    }

    pub fn set_ex(&self, key: &[u8], value: &[u8], ttl: Duration) -> KvResult<()> {
        self.execute(Command::Set {
            key: Bytes::copy_from_slice(key),
            value: Bytes::copy_from_slice(value),
            expire: Some(ttl),
        })
        .map(|_| ())
    }

    pub fn get(&self, key: &[u8]) -> KvResult<Option<Bytes>> {
        Ok(self
            .execute(Command::Get {
                key: Bytes::copy_from_slice(key),
            })?
            .as_bulk()
            .cloned())
    }

    pub fn del(&self, key: &[u8]) -> KvResult<bool> {
        Ok(self
            .execute(Command::Del {
                keys: vec![Bytes::copy_from_slice(key)],
            })?
            .as_int()
            .unwrap_or(0)
            > 0)
    }

    pub fn exists(&self, key: &[u8]) -> KvResult<bool> {
        Ok(self
            .execute(Command::Exists {
                keys: vec![Bytes::copy_from_slice(key)],
            })?
            .as_int()
            .unwrap_or(0)
            > 0)
    }

    pub fn expire(&self, key: &[u8], ttl: Duration) -> KvResult<bool> {
        Ok(self
            .execute(Command::Expire {
                key: Bytes::copy_from_slice(key),
                ttl,
            })?
            .as_int()
            .unwrap_or(0)
            > 0)
    }

    pub fn dbsize(&self) -> usize {
        self.inner.lock().db.len()
    }

    /// Number of keys carrying an expiry.
    pub fn expire_set_len(&self) -> usize {
        self.inner.lock().db.expire_set_len()
    }

    /// Approximate memory footprint of the keyspace (Table 3 metric).
    pub fn memory_usage(&self) -> usize {
        self.inner.lock().db.memory_usage()
    }

    /// The absolute expiry deadline of `key`, if any — millisecond
    /// precision, unlike the seconds-truncating `TTL` command. Connectors
    /// use this to preserve a record's exact deadline across rewrites.
    pub fn expiry_at(&self, key: &[u8]) -> Option<clock::Timestamp> {
        self.inner.lock().db.expiry_of(key)
    }

    /// Register the TTL-eviction callback (see [`crate::db::ExpiryListener`]):
    /// invoked for every key the store expires itself, whether lazily on
    /// access or in an active expiration cycle. Called with the command
    /// lock held — the listener must not call back into this store.
    pub fn set_expiry_listener(&self, listener: crate::db::ExpiryListener) {
        self.inner.lock().db.set_expiry_listener(listener);
    }
}

impl Drop for KvStore {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.expirer.lock().take() {
            // Drop may run on the driver thread itself (the driver's Arc
            // upgrade can be the last handle); joining oneself deadlocks.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
        if let Some(aof) = &mut self.inner.lock().aof {
            let _ = aof.sync();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsyncPolicy;
    use crate::expire::ExpirationMode;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_set_get_through_server() {
        let store = KvStore::open(KvConfig::default()).unwrap();
        store.set(b"k", b"v").unwrap();
        assert_eq!(store.get(b"k").unwrap().unwrap().as_ref(), b"v");
        assert!(store.del(b"k").unwrap());
        assert_eq!(store.get(b"k").unwrap(), None);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let store = KvStore::open(KvConfig::default()).unwrap();
        store.set(b"k", b"v").unwrap();
        store.get(b"k").unwrap();
        store.get(b"k").unwrap();
        assert_eq!(store.stats().writes.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().reads.load(Ordering::Relaxed), 2);
        assert_eq!(store.stats().commands.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn transit_encryption_preserves_semantics() {
        let config = KvConfig {
            encrypt_transit: true,
            ..Default::default()
        };
        let store = KvStore::open(config).unwrap();
        store.set(b"k", b"v").unwrap();
        assert_eq!(store.get(b"k").unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn aof_logs_only_writes_by_default() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let store = KvStore::open(config).unwrap();
        store.set(b"k", b"v").unwrap();
        store.get(b"k").unwrap();
        store.get(b"k").unwrap();
        let buf = store.aof_memory_buffer().unwrap();
        let commands = aof::decode_stream(&buf.lock(), None).unwrap();
        assert_eq!(commands.len(), 1, "reads must not be logged by default");
    }

    #[test]
    fn gdpr_mode_logs_reads_too() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            log_reads: true,
            ..Default::default()
        };
        let store = KvStore::open(config).unwrap();
        store.set(b"k", b"v").unwrap();
        store.get(b"k").unwrap();
        store.get(b"missing").unwrap();
        let buf = store.aof_memory_buffer().unwrap();
        let commands = aof::decode_stream(&buf.lock(), None).unwrap();
        assert_eq!(commands.len(), 3, "GDPR audit must log reads and misses");
    }

    #[test]
    fn replay_reconstructs_state() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let store = KvStore::open(config.clone()).unwrap();
        store.set(b"a", b"1").unwrap();
        store.set(b"b", b"2").unwrap();
        store.del(b"a").unwrap();
        store
            .execute(Command::HSet {
                key: b("h"),
                pairs: vec![(b("f"), b("v"))],
            })
            .unwrap();
        let raw = store.aof_memory_buffer().unwrap().lock().clone();

        let replayed = KvStore::replay(config, &raw, clock::wall()).unwrap();
        assert_eq!(replayed.get(b"a").unwrap(), None);
        assert_eq!(replayed.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(
            replayed
                .execute(Command::HGet {
                    key: b("h"),
                    field: b("f")
                })
                .unwrap(),
            Reply::Bulk(b("v"))
        );
    }

    #[test]
    fn replay_of_encrypted_aof() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            encrypt_at_rest: true,
            ..Default::default()
        };
        let store = KvStore::open(config.clone()).unwrap();
        store.set(b"secret", b"payload").unwrap();
        let raw = store.aof_memory_buffer().unwrap().lock().clone();
        assert!(!raw.windows(7).any(|w| w == b"payload"));
        let replayed = KvStore::replay(config, &raw, clock::wall()).unwrap();
        assert_eq!(
            replayed.get(b"secret").unwrap().unwrap().as_ref(),
            b"payload"
        );
    }

    #[test]
    fn expiry_survives_replay_as_absolute_deadline() {
        let sim = clock::sim();
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let store = KvStore::open_with_clock(config.clone(), sim.clone()).unwrap();
        store.set_ex(b"k", b"v", Duration::from_secs(10)).unwrap();
        let raw = store.aof_memory_buffer().unwrap().lock().clone();

        // Replay at t=5s: key still has ~5s to live.
        sim.advance(Duration::from_secs(5));
        let replayed = KvStore::replay(config.clone(), &raw, sim.clone()).unwrap();
        assert!(replayed.exists(b"k").unwrap());

        // Replay at t=11s: the absolute deadline has passed.
        sim.advance(Duration::from_secs(6));
        let replayed = KvStore::replay(config, &raw, sim.clone()).unwrap();
        assert!(!replayed.exists(b"k").unwrap());
    }

    #[test]
    fn strict_expiration_cycle_via_server() {
        let sim = clock::sim();
        let config = KvConfig {
            expiration: ExpirationMode::Strict,
            ..Default::default()
        };
        let store = KvStore::open_with_clock(config, sim.clone()).unwrap();
        for i in 0..100 {
            store
                .set_ex(format!("k{i}").as_bytes(), b"v", Duration::from_secs(1))
                .unwrap();
        }
        sim.advance(Duration::from_secs(2));
        let stats = store.run_expiration_cycle();
        assert_eq!(stats.reaped, 100);
        assert_eq!(store.dbsize(), 0);
    }

    #[test]
    fn background_driver_reaps_with_wall_clock() {
        let config = KvConfig {
            expiration: ExpirationMode::Strict,
            ..Default::default()
        };
        let store = KvStore::open(config).unwrap();
        for i in 0..50 {
            store
                .set_ex(format!("k{i}").as_bytes(), b"v", Duration::from_millis(50))
                .unwrap();
        }
        store.start_expiration_driver();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while store.dbsize() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        store.stop_expiration_driver();
        assert_eq!(store.dbsize(), 0, "driver should have reaped all keys");
    }

    #[test]
    fn concurrent_clients_serialize_correctly() {
        let store = KvStore::open(KvConfig::default()).unwrap();
        let mut handles = vec![];
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = format!("t{t}:k{i}");
                    store.set(key.as_bytes(), b"v").unwrap();
                    assert!(store.exists(key.as_bytes()).unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.dbsize(), 8 * 200);
    }

    /// The persistence generation is replay-stable: rebuilding from the
    /// AOF lands on the exact value the live store had — including the
    /// SET-EX → SET+EXPIREAT rewrite (2 frames) and the EXPIRE-on-missing
    /// no-op (0 frames) — and a torn tail replays to a *smaller* value.
    #[test]
    fn mutation_generation_matches_across_replay() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let store = KvStore::open(config.clone()).unwrap();
        store.set(b"a", b"1").unwrap(); // 1 frame
        store.set_ex(b"b", b"2", Duration::from_secs(60)).unwrap(); // 2 frames
        store.expire(b"ghost", Duration::from_secs(5)).unwrap(); // 0 frames
        store.get(b"a").unwrap(); // reads never count
        store.del(b"a").unwrap(); // 1 frame
        assert_eq!(store.mutation_generation(), 4);

        let raw = store.aof_memory_buffer().unwrap().lock().clone();
        let replayed = KvStore::replay(config.clone(), &raw, clock::wall()).unwrap();
        assert_eq!(
            replayed.mutation_generation(),
            4,
            "replay lands on the live value"
        );

        // A write behind any engine still advances the generation, even
        // on a store with no AOF at all.
        let plain = KvStore::open(KvConfig::default()).unwrap();
        plain.set(b"x", b"y").unwrap();
        assert_eq!(plain.mutation_generation(), 1);

        // Torn tail → tolerant replay → strictly smaller generation.
        let (commands, dropped) = aof::decode_stream_tolerant(&raw[..raw.len() - 2], None).unwrap();
        assert!(dropped > 0);
        let torn = KvStore::open(KvConfig {
            aof: AofStorage::Disabled,
            ..config
        })
        .unwrap();
        torn.apply_replayed(commands).unwrap();
        assert!(torn.mutation_generation() < 4);
    }

    #[test]
    fn open_persistent_survives_restarts_and_truncates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("kvpersist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.aof");
        let _ = std::fs::remove_file(&path);
        let config = KvConfig {
            aof: AofStorage::File(path.clone()),
            fsync: FsyncPolicy::Always,
            encrypt_at_rest: true,
            ..Default::default()
        };

        {
            let store = KvStore::open_persistent(config.clone(), clock::wall()).unwrap();
            assert_eq!(store.mutation_generation(), 0, "fresh file, fresh store");
            store.set(b"a", b"1").unwrap();
            store.set(b"b", b"2").unwrap();
            store.del(b"a").unwrap();
            store.sync_aof().unwrap();
        }
        // Restart: state and generation come back; appends keep working
        // (the encrypted frame sequence must continue, not restart at 0).
        {
            let store = KvStore::open_persistent(config.clone(), clock::wall()).unwrap();
            assert_eq!(store.get(b"a").unwrap(), None);
            assert_eq!(store.get(b"b").unwrap().unwrap().as_ref(), b"2");
            assert_eq!(store.mutation_generation(), 3);
            store.set(b"c", b"3").unwrap();
            store.sync_aof().unwrap();
        }
        {
            let store = KvStore::open_persistent(config.clone(), clock::wall()).unwrap();
            assert_eq!(store.get(b"c").unwrap().unwrap().as_ref(), b"3");
            assert_eq!(store.mutation_generation(), 4);
        }

        // Crash mid-append: tear the file; reopen drops the tail, truncates
        // it away, and appends cleanly after the retained prefix.
        let intact = std::fs::read(&path).unwrap();
        std::fs::write(&path, &intact[..intact.len() - 3]).unwrap();
        {
            let store = KvStore::open_persistent(config.clone(), clock::wall()).unwrap();
            assert_eq!(store.mutation_generation(), 3, "torn SET c dropped");
            store.set(b"d", b"4").unwrap();
            store.sync_aof().unwrap();
        }
        let store = KvStore::open_persistent(config, clock::wall()).unwrap();
        assert_eq!(store.get(b"d").unwrap().unwrap().as_ref(), b"4");
        assert_eq!(store.get(b"b").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(store.mutation_generation(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn expire_on_missing_key_logs_nothing() {
        let config = KvConfig {
            aof: AofStorage::Memory,
            fsync: FsyncPolicy::Never,
            ..Default::default()
        };
        let store = KvStore::open(config).unwrap();
        store.expire(b"ghost", Duration::from_secs(5)).unwrap();
        let buf = store.aof_memory_buffer().unwrap();
        assert!(aof::decode_stream(&buf.lock(), None).unwrap().is_empty());
    }
}
