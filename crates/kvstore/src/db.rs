//! The keyspace: one dictionary of values plus the expires dictionary,
//! mirroring Redis' `redisDb` (`dict` + `expires`).
//!
//! Expiry is enforced in two complementary ways, as in Redis:
//! lazily-on-access here (a lookup of a past-due key deletes it and reports
//! a miss), and actively by the expiration cycle in [`crate::expire`].

use crate::error::{KvError, KvResult};
use crate::glob::glob_match;
use crate::rng::XorShift64;
use crate::sampleset::SampleSet;
use crate::value::Value;
use bytes::Bytes;
use clock::{SharedClock, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// Callback invoked with the key of every record the store expires itself
/// (lazily on access or in an active expiration cycle). GDPR layers hang
/// index invalidation off this: a reaped key must vanish from any metadata
/// index at the same instant it vanishes from the keyspace, or the index
/// would keep advertising erased personal data.
pub type ExpiryListener = Arc<dyn Fn(&[u8]) + Send + Sync>;

/// The keyspace.
pub struct Db {
    dict: HashMap<Bytes, Value>,
    expires: HashMap<Bytes, Timestamp>,
    /// Keys with an expiry, sampleable in O(1) — Redis' `expires` dict.
    expire_set: SampleSet<Bytes>,
    /// All keys, dense-indexed for SCAN cursors and RANDOMKEY.
    key_index: SampleSet<Bytes>,
    clock: SharedClock,
    /// Count of keys reaped lazily on access, for INFO/stats.
    lazy_expired: u64,
    /// Notified on every TTL-driven eviction (never on plain DEL).
    expiry_listener: Option<ExpiryListener>,
}

impl Db {
    pub fn new(clock: SharedClock) -> Self {
        Db {
            dict: HashMap::new(),
            expires: HashMap::new(),
            expire_set: SampleSet::new(),
            key_index: SampleSet::new(),
            clock,
            lazy_expired: 0,
            expiry_listener: None,
        }
    }

    /// Register the TTL-eviction callback. One listener at a time; the
    /// store invokes it after the key is gone from the keyspace, while the
    /// command lock is held — listeners must not call back into the store.
    pub fn set_expiry_listener(&mut self, listener: ExpiryListener) {
        self.expiry_listener = Some(listener);
    }

    fn notify_expired(&self, key: &[u8]) {
        if let Some(listener) = &self.expiry_listener {
            listener(key);
        }
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Number of live keys (may include keys past due that no cycle has
    /// reaped yet — exactly as `DBSIZE` does in Redis).
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// True if `key` has an expiry and it is past due. The boundary is
    /// **inclusive** (`now >= at`): a key whose deadline equals the current
    /// instant is already expired. The engine-side metadata index
    /// (`MetadataIndex::expired_keys`) and the relational sweep daemon use
    /// the same inclusive boundary, so every purge path agrees on what is
    /// due at the boundary instant — do not change one without the others
    /// (the conformance suite pins this).
    fn is_past_due(&self, key: &[u8]) -> bool {
        match self.expires.get(key) {
            Some(&at) => self.clock.now() >= at,
            None => false,
        }
    }

    /// Expire-on-access: if `key` is past due, delete it and report whether
    /// it was reaped.
    fn reap_if_due(&mut self, key: &[u8]) -> bool {
        if self.is_past_due(key) {
            let owned = Bytes::copy_from_slice(key);
            self.remove(&owned);
            self.lazy_expired += 1;
            self.notify_expired(&owned);
            true
        } else {
            false
        }
    }

    /// Non-mutating read: like [`Self::get`] but without the
    /// reap-on-access side effect — past-due keys read as absent and stay
    /// for the expiration machinery. Snapshots use this so `&Db` suffices.
    pub fn peek(&self, key: &[u8]) -> Option<&Value> {
        if self.is_past_due(key) {
            None
        } else {
            self.dict.get(key)
        }
    }

    /// Read access to a live (non-expired) value.
    pub fn get(&mut self, key: &[u8]) -> Option<&Value> {
        if self.reap_if_due(key) {
            return None;
        }
        self.dict.get(key)
    }

    /// Write access to a live (non-expired) value.
    pub fn get_mut(&mut self, key: &[u8]) -> Option<&mut Value> {
        if self.reap_if_due(key) {
            return None;
        }
        self.dict.get_mut(key)
    }

    /// Write access to a live value, creating it with `make` when absent.
    /// Fails with `WrongType` if present but of a different type, as checked
    /// by `check`.
    pub fn get_or_create(
        &mut self,
        key: &[u8],
        make: impl FnOnce() -> Value,
        check: impl Fn(&Value) -> bool,
    ) -> KvResult<&mut Value> {
        self.reap_if_due(key);
        if !self.dict.contains_key(key) {
            let owned = Bytes::copy_from_slice(key);
            self.key_index.insert(owned.clone());
            self.dict.insert(owned, make());
        }
        let v = self.dict.get_mut(key).expect("just inserted");
        if check(v) {
            Ok(v)
        } else {
            Err(KvError::WrongType)
        }
    }

    /// Insert or replace the value at `key`. Clears any existing expiry, as
    /// `SET` does in Redis.
    pub fn set(&mut self, key: Bytes, value: Value) {
        self.clear_expiry(&key);
        self.key_index.insert(key.clone());
        self.dict.insert(key, value);
    }

    /// Remove a key entirely. Returns `true` if it existed.
    pub fn remove(&mut self, key: &Bytes) -> bool {
        self.clear_expiry(key);
        self.key_index.remove(key);
        self.dict.remove(key).is_some()
    }

    /// Remove the key if its container value became empty.
    pub fn drop_if_empty(&mut self, key: &[u8]) {
        if self.dict.get(key).is_some_and(Value::is_empty_container) {
            let owned = Bytes::copy_from_slice(key);
            self.remove(&owned);
        }
    }

    /// True if `key` exists and is not past due.
    pub fn exists(&mut self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Set an absolute expiry. Returns `false` if the key does not exist.
    pub fn set_expiry(&mut self, key: &[u8], at: Timestamp) -> bool {
        if self.reap_if_due(key) || !self.dict.contains_key(key) {
            return false;
        }
        let owned = Bytes::copy_from_slice(key);
        self.expires.insert(owned.clone(), at);
        self.expire_set.insert(owned);
        true
    }

    /// Remove any expiry from `key` (Redis `PERSIST`). Returns `true` if an
    /// expiry was removed.
    pub fn clear_expiry(&mut self, key: &Bytes) -> bool {
        self.expire_set.remove(key);
        self.expires.remove(key).is_some()
    }

    /// Remaining time to live: `None` if the key does not exist, `Some(None)`
    /// if it has no expiry, `Some(Some(d))` otherwise.
    pub fn ttl(&mut self, key: &[u8]) -> Option<Option<std::time::Duration>> {
        if self.reap_if_due(key) || !self.dict.contains_key(key) {
            return None;
        }
        Some(
            self.expires
                .get(key)
                .map(|&at| at.saturating_since(self.clock.now())),
        )
    }

    /// The absolute expiry time of `key`, if any.
    pub fn expiry_of(&self, key: &[u8]) -> Option<Timestamp> {
        self.expires.get(key).copied()
    }

    /// Number of keys carrying an expiry.
    pub fn expire_set_len(&self) -> usize {
        self.expire_set.len()
    }

    /// Sample up to `n` random keys from the expire-set (with replacement),
    /// exactly as the lazy expiration cycle does.
    pub fn sample_expire_keys(&self, n: usize, rng: &mut XorShift64) -> Vec<Bytes> {
        (0..n)
            .filter_map(|_| self.expire_set.sample(rng).cloned())
            .collect()
    }

    /// All keys in the expire-set (for the strict sweep).
    pub fn all_expire_keys(&self) -> Vec<Bytes> {
        self.expire_set.iter().cloned().collect()
    }

    /// Delete `key` if past due. Returns `true` if deleted.
    pub fn evict_if_due(&mut self, key: &Bytes) -> bool {
        if self.is_past_due(key) {
            self.remove(key);
            self.notify_expired(key);
            true
        } else {
            false
        }
    }

    /// Keys matching a glob pattern (the `KEYS` command) — O(n).
    pub fn keys_matching(&self, pattern: &[u8]) -> Vec<Bytes> {
        self.key_index
            .iter()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect()
    }

    /// Cursor-based iteration (the `SCAN` command). Returns matching keys in
    /// the window plus the next cursor (0 when done). The guarantee matches
    /// Redis': every key present for the whole scan is returned at least
    /// once; no stability under concurrent mutation.
    pub fn scan(&self, cursor: usize, count: usize, pattern: Option<&[u8]>) -> (Vec<Bytes>, usize) {
        let mut out = Vec::new();
        let mut idx = cursor;
        let end = (cursor + count).min(self.key_index.len());
        while idx < end {
            if let Some(key) = self.key_index.get_at(idx) {
                if pattern.is_none_or(|p| glob_match(p, key)) {
                    out.push(key.clone());
                }
            }
            idx += 1;
        }
        let next = if idx >= self.key_index.len() { 0 } else { idx };
        (out, next)
    }

    /// Uniformly random live key (`RANDOMKEY`).
    pub fn random_key(&self, rng: &mut XorShift64) -> Option<Bytes> {
        self.key_index.sample(rng).cloned()
    }

    /// Remove everything (`FLUSHALL`).
    pub fn flush(&mut self) {
        self.dict.clear();
        self.expires.clear();
        self.expire_set = SampleSet::new();
        self.key_index = SampleSet::new();
    }

    /// Keys reaped lazily on access since startup.
    pub fn lazy_expired_count(&self) -> u64 {
        self.lazy_expired
    }

    /// Approximate memory footprint of all keys and values, for the
    /// space-overhead metric (Table 3).
    pub fn memory_usage(&self) -> usize {
        self.dict
            .iter()
            .map(|(k, v)| k.len() + 48 + v.memory_usage())
            .sum::<usize>()
            + self.expires.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn sim_db() -> (std::sync::Arc<clock::SimClock>, Db) {
        let sim = clock::sim();
        let db = Db::new(sim.clone());
        (sim, db)
    }

    #[test]
    fn set_get_remove() {
        let (_c, mut db) = sim_db();
        db.set(b("k"), Value::Str(b("v")));
        assert!(db.exists(b"k"));
        assert_eq!(db.get(b"k").unwrap().as_str().unwrap(), &b("v"));
        assert!(db.remove(&b("k")));
        assert!(!db.exists(b"k"));
        assert!(!db.remove(&b("k")));
    }

    #[test]
    fn lazy_expiry_on_access() {
        let (sim, mut db) = sim_db();
        db.set(b("k"), Value::Str(b("v")));
        db.set_expiry(b"k", Timestamp::from_secs(10));
        assert!(db.exists(b"k"));
        sim.advance(Duration::from_secs(11));
        assert!(
            db.get(b"k").is_none(),
            "past-due key must be reaped on access"
        );
        assert_eq!(db.len(), 0);
        assert_eq!(db.lazy_expired_count(), 1);
    }

    #[test]
    fn expiry_listener_fires_on_lazy_reap() {
        let (sim, mut db) = sim_db();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        db.set_expiry_listener(Arc::new(move |key| {
            sink.lock().unwrap().push(key.to_vec());
        }));
        db.set(b("k"), Value::Str(b("v")));
        db.set_expiry(b"k", Timestamp::from_secs(10));
        sim.advance(Duration::from_secs(11));
        assert!(db.get(b"k").is_none());
        assert_eq!(*seen.lock().unwrap(), vec![b"k".to_vec()]);
    }

    #[test]
    fn expiry_listener_fires_on_active_eviction_not_plain_delete() {
        let (sim, mut db) = sim_db();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        db.set_expiry_listener(Arc::new(move |key| {
            sink.lock().unwrap().push(key.to_vec());
        }));
        db.set(b("gone"), Value::Str(b("v")));
        db.set(b("expires"), Value::Str(b("v")));
        db.set_expiry(b"expires", Timestamp::from_secs(1));
        db.remove(&b("gone"));
        assert!(
            seen.lock().unwrap().is_empty(),
            "plain DEL is not an expiry"
        );
        sim.advance(Duration::from_secs(2));
        assert!(db.evict_if_due(&b("expires")));
        assert_eq!(*seen.lock().unwrap(), vec![b"expires".to_vec()]);
    }

    #[test]
    fn set_clears_previous_expiry() {
        let (sim, mut db) = sim_db();
        db.set(b("k"), Value::Str(b("v1")));
        db.set_expiry(b"k", Timestamp::from_secs(10));
        db.set(b("k"), Value::Str(b("v2"))); // plain SET removes the TTL
        sim.advance(Duration::from_secs(11));
        assert!(db.exists(b"k"));
        assert_eq!(db.ttl(b"k"), Some(None));
    }

    #[test]
    fn ttl_reporting() {
        let (sim, mut db) = sim_db();
        assert_eq!(db.ttl(b"nope"), None);
        db.set(b("k"), Value::Str(b("v")));
        assert_eq!(db.ttl(b"k"), Some(None));
        db.set_expiry(b"k", Timestamp::from_secs(10));
        sim.advance(Duration::from_secs(4));
        assert_eq!(db.ttl(b"k"), Some(Some(Duration::from_secs(6))));
    }

    #[test]
    fn expire_on_missing_key_fails() {
        let (_c, mut db) = sim_db();
        assert!(!db.set_expiry(b"ghost", Timestamp::from_secs(5)));
    }

    #[test]
    fn persist_removes_expiry() {
        let (sim, mut db) = sim_db();
        db.set(b("k"), Value::Str(b("v")));
        db.set_expiry(b"k", Timestamp::from_secs(1));
        assert!(db.clear_expiry(&b("k")));
        assert!(!db.clear_expiry(&b("k")));
        sim.advance(Duration::from_secs(5));
        assert!(db.exists(b"k"));
    }

    #[test]
    fn expire_set_tracks_membership() {
        let (_c, mut db) = sim_db();
        for i in 0..10 {
            let k = b(&format!("k{i}"));
            db.set(k.clone(), Value::Str(b("v")));
            if i % 2 == 0 {
                db.set_expiry(&k, Timestamp::from_secs(100));
            }
        }
        assert_eq!(db.expire_set_len(), 5);
        let mut rng = XorShift64::new(1);
        let sampled = db.sample_expire_keys(20, &mut rng);
        assert_eq!(sampled.len(), 20, "sampling is with replacement");
        assert!(sampled.iter().all(|k| db.expiry_of(k).is_some()));
    }

    #[test]
    fn scan_visits_all_keys() {
        let (_c, mut db) = sim_db();
        for i in 0..100 {
            db.set(b(&format!("k{i:03}")), Value::Str(b("v")));
        }
        let mut cursor = 0;
        let mut seen = std::collections::HashSet::new();
        loop {
            let (keys, next) = db.scan(cursor, 7, None);
            seen.extend(keys);
            if next == 0 {
                break;
            }
            cursor = next;
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn scan_with_pattern_filters() {
        let (_c, mut db) = sim_db();
        db.set(b("rec:1"), Value::Str(b("v")));
        db.set(b("idx:1"), Value::Str(b("v")));
        db.set(b("rec:2"), Value::Str(b("v")));
        let (keys, next) = db.scan(0, 100, Some(b"rec:*"));
        assert_eq!(next, 0);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn keys_matching_glob() {
        let (_c, mut db) = sim_db();
        db.set(b("user:1"), Value::Str(b("a")));
        db.set(b("user:2"), Value::Str(b("b")));
        db.set(b("order:1"), Value::Str(b("c")));
        assert_eq!(db.keys_matching(b"user:*").len(), 2);
        assert_eq!(db.keys_matching(b"*").len(), 3);
    }

    #[test]
    fn flush_empties_everything() {
        let (_c, mut db) = sim_db();
        db.set(b("k"), Value::Str(b("v")));
        db.set_expiry(b"k", Timestamp::from_secs(1));
        db.flush();
        assert!(db.is_empty());
        assert_eq!(db.expire_set_len(), 0);
        assert_eq!(db.memory_usage(), 0);
    }

    #[test]
    fn memory_usage_grows_with_data() {
        let (_c, mut db) = sim_db();
        let before = db.memory_usage();
        db.set(b("k"), Value::Str(Bytes::from(vec![0u8; 4096])));
        assert!(db.memory_usage() >= before + 4096);
    }

    #[test]
    fn get_or_create_enforces_type() {
        let (_c, mut db) = sim_db();
        db.set(b("s"), Value::Str(b("v")));
        let err = db
            .get_or_create(
                b"s",
                || Value::Hash(Default::default()),
                |v| matches!(v, Value::Hash(_)),
            )
            .unwrap_err();
        assert_eq!(err, KvError::WrongType);
        assert!(db
            .get_or_create(
                b"h",
                || Value::Hash(Default::default()),
                |v| { matches!(v, Value::Hash(_)) }
            )
            .is_ok());
    }
}
