//! A minimal, API-compatible stand-in for the parts of the `bytes` crate
//! this workspace uses. The build environment has no network access to
//! crates.io, so the workspace vendors the one type it needs: [`Bytes`], an
//! immutable, cheaply-cloneable byte buffer.
//!
//! Only the surface exercised by the workspace is provided (constructors,
//! slice access via `Deref`/`AsRef`/`Borrow`, ordering and hashing). Clones
//! share the underlying allocation via `Arc`, preserving the real crate's
//! O(1)-clone behaviour that the kvstore keyspace relies on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// A buffer borrowing from static data (copied here; the real crate
    /// points at the static allocation, which only changes cost, not
    /// semantics).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// The contents as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match the slice Hash so Borrow<[u8]>-based map lookups work.
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn borrow_enables_slice_lookup() {
        let mut map: HashMap<Bytes, i32> = HashMap::new();
        map.insert(Bytes::copy_from_slice(b"key"), 7);
        assert_eq!(map.get(b"key".as_slice()), Some(&7));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn conversions() {
        assert_eq!(Bytes::from("hi".to_string()).as_ref(), b"hi");
        assert_eq!(Bytes::from_static(b"st").to_vec(), b"st".to_vec());
        assert!(Bytes::new().is_empty());
    }
}
