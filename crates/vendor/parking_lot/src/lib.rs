//! A minimal, API-compatible stand-in for the parts of `parking_lot` this
//! workspace uses: [`Mutex`] and [`RwLock`] whose guards are returned
//! directly (no `Result`). Implemented over `std::sync`, recovering from
//! poisoning — parking_lot has no poisoning, and the stores' invariants are
//! re-established at the start of every critical section, so propagating a
//! panic from another thread would only turn one test failure into many.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A readers-writer lock whose `read()`/`write()` never return `Err`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
