//! A minimal, API-compatible stand-in for the parts of `criterion` the
//! bench targets use. The build environment has no network access to
//! crates.io, so the workspace vendors a small wall-clock harness exposing
//! the same surface: [`Criterion`], [`BenchmarkId`], [`Throughput`],
//! benchmark groups, and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Methodology: each benchmark warms up for `warm_up_time`, then runs
//! batches of adaptively-sized iteration blocks until `measurement_time`
//! elapses, and reports the mean time per iteration plus min/max over the
//! batches. No statistical analysis, plots, or baselines — numbers print to
//! stdout, which is all the experiment harness needs.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing configuration plus the entry point for registering benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.render(), None, f);
        self
    }
}

/// A named collection of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.prefix, id.render());
        run_benchmark(self.criterion, &name, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.prefix, id.render());
        run_benchmark(self.criterion, &name, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` performs the timed runs.
pub struct Bencher {
    config: Criterion,
    result: Option<Measurement>,
}

struct Measurement {
    iterations: u64,
    mean: Duration,
    fastest: Duration,
    slowest: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size batches so `sample_size` of them fill the measurement budget.
        let budget = self.config.measurement_time;
        let samples = self.config.sample_size as u32;
        let per_batch = budget / samples;
        let batch_iters = if per_iter.is_zero() {
            1024
        } else {
            (per_batch.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128) as u64
        };

        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        let mut fastest = Duration::MAX;
        let mut slowest = Duration::ZERO;
        let run_start = Instant::now();
        while run_start.elapsed() < budget {
            let batch_start = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            let elapsed = batch_start.elapsed();
            let per = elapsed / batch_iters.max(1) as u32;
            fastest = fastest.min(per);
            slowest = slowest.max(per);
            total += elapsed;
            iterations += batch_iters;
        }
        self.result = Some(Measurement {
            iterations,
            mean: if iterations == 0 {
                Duration::ZERO
            } else {
                total / iterations as u32
            },
            fastest,
            slowest,
        });
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        config: criterion.clone(),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(m) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 / m.mean.as_secs_f64().max(f64::MIN_POSITIVE);
                    format!("  thrpt: {per_sec:.0} elem/s")
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 / m.mean.as_secs_f64().max(f64::MIN_POSITIVE);
                    format!("  thrpt: {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!(
                "{name:<60} time: [{} {} {}]{} ({} iters)",
                fmt_time(m.fastest),
                fmt_time(m.mean),
                fmt_time(m.slowest),
                rate,
                m.iterations,
            );
        }
        None => println!("{name:<60} (no measurement: bencher.iter never called)"),
    }
}

/// Re-export so `criterion::black_box` callers work; defers to `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 42), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
