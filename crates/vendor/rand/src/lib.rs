//! A minimal, API-compatible stand-in for the parts of the `rand` crate the
//! workload generators use: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits
//! and [`rngs::SmallRng`]. The build environment has no network access to
//! crates.io, so the workspace vendors exactly this surface.
//!
//! `SmallRng` is an xoshiro256++ generator seeded via splitmix64 — the same
//! family the real crate uses for its small RNG — so it is fast,
//! deterministic per seed, and statistically adequate for benchmark
//! workload generation (it is *not* cryptographic; nothing here is used for
//! security).

/// The core of every generator: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from an RNG (the `Standard` distribution of
/// the real crate, folded into one trait).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`] over a `Range`.
pub trait RangeSample: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift reduction (Lemire); bias is < 2^-64 per
                // draw, immaterial for workload generation.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_range_sample!(usize, u64, u32, i64, i32);

/// Convenience sampling methods, blanket-implemented for every generator.
///
/// Unlike the real crate these methods carry no `Self: Sized` bound, so
/// they are callable directly through `&mut dyn RngCore` (the workload
/// generators take that type). The trade-off is that `dyn Rng` itself
/// cannot be formed — nothing in the workspace does.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.gen_range(0u64..100);
        assert!(v < 100);
        let f: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
