//! Figure 4: performance overhead of each GDPR security feature on the
//! traditional YCSB workloads.
//!
//! For each store and each feature setting (encrypt / TTL / log / combined)
//! every YCSB workload A–F runs against a freshly loaded store; throughput
//! is reported normalized to the no-security baseline. The paper measures
//! Redis sinking to ~20% (5×) and PostgreSQL to ~50% (2×) with everything
//! enabled.

use super::configs::{feature_runs_ttl, kv_config, rel_config, Feature, ScratchDir};
use crate::report::{fmt_ops, fmt_pct, ExperimentTable};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use workload::ycsb::{ycsb_key, KvInterface, KvStoreYcsb, RelStoreYcsb, YcsbConfig};
use workload::{datagen, run_ycsb_workload};

/// Measured throughputs: `[workload][feature] -> ops/sec`.
pub type Matrix = HashMap<&'static str, HashMap<&'static str, f64>>;

fn load(adapter: &dyn KvInterface, records: u64, value_len: usize) {
    for i in 0..records {
        adapter
            .insert(&ycsb_key(i), &datagen::ycsb_value(i, value_len))
            .expect("load");
    }
}

/// Run one (store, feature, workload) cell and return throughput.
fn run_cell(
    db: &str,
    feature: Feature,
    config: YcsbConfig,
    records: u64,
    ops: u64,
    threads: usize,
) -> f64 {
    let scratch = ScratchDir::new("fig4");
    match db {
        "redis" => {
            let store = kvstore::KvStore::open(kv_config(feature, &scratch)).expect("open kv");
            let adapter = KvStoreYcsb::new(Arc::clone(&store));
            load(&adapter, records, config.value_len);
            if feature_runs_ttl(feature) {
                // Give every record an expiry so the strict sweep has a full
                // expire-set to walk, then run the background driver — the
                // configuration whose cost the paper measures. Loading goes
                // through the adapter first so the store layout (including
                // the scan index) is identical to every other cell.
                for i in 0..records {
                    store
                        .expire(ycsb_key(i).as_bytes(), Duration::from_secs(24 * 3600))
                        .expect("expire");
                }
                store.start_expiration_driver();
            }
            let report = run_ycsb_workload(Arc::new(adapter), config, records, ops, threads);
            store.stop_expiration_driver();
            report.throughput_ops_per_sec()
        }
        "postgres" => {
            let db = relstore::Database::open(rel_config(feature, &scratch)).expect("open rel");
            let run_ttl = feature_runs_ttl(feature);
            let adapter = if run_ttl {
                // Rows carry the paper's expiry column (set far in the
                // future so the 1-second sweep daemon scans but reaps
                // nothing mid-run).
                let far = db.clock().now().as_millis() + 24 * 3600 * 1000;
                RelStoreYcsb::with_expiry_column(Arc::clone(&db), far).expect("usertable")
            } else {
                RelStoreYcsb::new(Arc::clone(&db)).expect("usertable")
            };
            load(&adapter, records, config.value_len);
            let mut daemon = run_ttl.then(|| {
                let mut d = relstore::ttl::TtlDaemon::new(
                    Arc::clone(&db),
                    vec![relstore::ttl::SweepTarget {
                        table: "usertable".into(),
                        expiry_column: "expiry".into(),
                    }],
                );
                d.start();
                d
            });
            let report = run_ycsb_workload(Arc::new(adapter), config, records, ops, threads);
            if let Some(d) = daemon.as_mut() {
                d.stop();
            }
            report.throughput_ops_per_sec()
        }
        other => panic!("unknown db {other}"),
    }
}

/// Run the full matrix for one store.
pub fn run(db: &str, records: u64, ops: u64, threads: usize) -> (ExperimentTable, Matrix) {
    let mut matrix: Matrix = HashMap::new();
    for config in YcsbConfig::all() {
        let row = matrix.entry(config.name).or_default();
        for feature in Feature::ALL {
            let tput = run_cell(db, feature, config.clone(), records, ops, threads);
            row.insert(feature.name(), tput);
        }
    }

    let mut table = ExperimentTable::new(
        format!(
            "Figure 4{} — GDPR feature overhead on YCSB ({db})",
            if db == "redis" { "a" } else { "b" }
        ),
        &[
            "workload",
            "baseline ops/s",
            "encrypt",
            "ttl",
            "log",
            "combined",
        ],
    );
    for config in YcsbConfig::all() {
        let row = &matrix[config.name];
        let baseline = row["baseline"];
        table.push_row(vec![
            config.name.to_string(),
            fmt_ops(baseline),
            fmt_pct(row["encrypt"], baseline),
            fmt_pct(row["ttl"], baseline),
            fmt_pct(row["log"], baseline),
            fmt_pct(row["combined"], baseline),
        ]);
    }
    (table, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-scale smoke: every cell runs and the combined configuration is
    /// slower than baseline for the write-heavy workload A on Redis.
    #[test]
    fn combined_features_cost_throughput_on_redis() {
        let baseline = run_cell(
            "redis",
            Feature::Baseline,
            YcsbConfig::workload('A'),
            500,
            3000,
            2,
        );
        let combined = run_cell(
            "redis",
            Feature::Combined,
            YcsbConfig::workload('A'),
            500,
            3000,
            2,
        );
        assert!(baseline > 0.0 && combined > 0.0);
        assert!(
            combined < baseline,
            "combined ({combined:.0}) should be slower than baseline ({baseline:.0})"
        );
    }

    #[test]
    fn postgres_cells_run_with_all_features() {
        for feature in Feature::ALL {
            let tput = run_cell("postgres", feature, YcsbConfig::workload('B'), 300, 600, 2);
            assert!(tput > 0.0, "{} produced no throughput", feature.name());
        }
    }
}
