//! Shard scaling: the Figure 7 Redis-scale story extended to the sharded
//! engine. The paper's Figure 7 shows the single Redis degrading as
//! personal-data volume grows; here we hold the corpus fixed and grow the
//! *shard count* instead, measuring a multi-threaded point-op workload
//! (90% READ-DATA-BY-KEY / 10% UPDATE-DATA-BY-KEY — the key-scoped
//! operations that route to exactly one shard).
//!
//! With one shard, every client thread serializes on the single store's
//! lock — the reproduction of the real Redis's single-threaded ceiling.
//! With N shards, point ops on disjoint keys proceed in parallel, so
//! throughput should climb with N until the machine's cores (or the
//! unified audit trail's append lock) become the next ceiling. The
//! `shard_scaling` binary prints the ladder; the `sharding` criterion
//! bench measures the same batch at N = 1 vs 8.

use crate::report::{fmt_duration, fmt_ops, ExperimentTable};
use connectors::ShardedRedisConnector;
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::{GdprConnector, GdprQuery, Session};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The default shard ladder.
pub const DEFAULT_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Fraction of point ops that are reads (the rest rectify the payload).
const READ_FRACTION: f64 = 0.9;

fn point_record(i: usize) -> PersonalRecord {
    PersonalRecord::new(
        format!("k{i:07}"),
        format!("payload-{i:07}"),
        Metadata::new(
            format!("user-{:04}", i % 1024),
            vec!["ads".to_string()],
            Duration::from_secs(3600),
        ),
    )
}

/// Build an indexed sharded connector preloaded with `records` point-op
/// targets.
pub fn build_sharded(shards: usize, records: usize) -> Arc<ShardedRedisConnector> {
    let conn = Arc::new(ShardedRedisConnector::open(shards).expect("open sharded"));
    let controller = Session::controller();
    for i in 0..records {
        conn.execute(&controller, &GdprQuery::CreateRecord(point_record(i)))
            .expect("load");
    }
    conn
}

/// Run `ops` point operations split across `threads` client threads
/// against one connector; returns the wall-clock completion time.
pub fn run_point_ops(
    conn: &Arc<ShardedRedisConnector>,
    records: usize,
    ops: u64,
    threads: usize,
) -> Duration {
    let threads = threads.max(1);
    // Distribute the remainder so exactly `ops` operations execute —
    // reported throughput must match work actually done.
    let base = ops / threads as u64;
    let extra = ops % threads as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let conn = Arc::clone(conn);
            let quota = base + u64::from((t as u64) < extra);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5AAD ^ t as u64);
                let reader = Session::processor("ads");
                let controller = Session::controller();
                for _ in 0..quota {
                    let i = rng.gen_range(0usize..records.max(1));
                    let key = format!("k{i:07}");
                    if rng.gen_bool(READ_FRACTION) {
                        conn.execute(&reader, &GdprQuery::ReadDataByKey(key))
                            .expect("read");
                    } else {
                        conn.execute(
                            &controller,
                            &GdprQuery::UpdateDataByKey {
                                key,
                                data: format!("rewrite-{i:07}"),
                            },
                        )
                        .expect("update");
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// Measured `(shard_count, ops/s)` series.
pub type ShardSeries = Vec<(usize, f64)>;

/// The shard-scaling ladder: completion and throughput of the point-op
/// workload at each shard count, with speedup normalized to the first.
pub fn run_point_op_scaling(
    shard_counts: &[usize],
    records: usize,
    ops: u64,
    threads: usize,
) -> (ExperimentTable, ShardSeries) {
    let mut table = ExperimentTable::new(
        format!(
            "Shard scaling — point-op workload ({records} records, {ops} ops, {threads} threads)"
        ),
        &["shards", "completion", "ops/s", "speedup"],
    );
    let mut series = ShardSeries::new();
    let mut baseline: Option<f64> = None;
    for &shards in shard_counts {
        let conn = build_sharded(shards, records);
        // One warm-up slice keeps first-touch allocation out of the timing.
        run_point_ops(&conn, records, (ops / 10).max(1), threads);
        let completion = run_point_ops(&conn, records, ops, threads);
        let throughput = ops as f64 / completion.as_secs_f64().max(1e-9);
        let base = *baseline.get_or_insert(throughput);
        table.push_row(vec![
            shards.to_string(),
            fmt_duration(completion),
            fmt_ops(throughput),
            format!("{:.2}x", throughput / base.max(1e-9)),
        ]);
        series.push((shards, throughput));
    }
    (table, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim at toy scale: with more client threads than
    /// shards-1 can serve in parallel, eight shards must not be slower
    /// than one (the generous bound absorbs CI noise; release runs show
    /// a clear win — see the README's shard-count note). On a contended
    /// few-core test box one measurement is mostly scheduler noise, so
    /// the first of three attempts clearing the bound passes.
    #[test]
    fn point_ops_scale_with_shard_count() {
        let _gate = crate::timing_gate();
        let mut observed = Vec::new();
        for _ in 0..3 {
            let (table, series) = run_point_op_scaling(&[1, 8], 2_000, 12_000, 4);
            assert_eq!(table.rows.len(), 2);
            let (_, one) = series[0];
            let (_, eight) = series[1];
            if eight > one * 0.9 {
                return;
            }
            observed.push(series);
        }
        panic!("8 shards consistently slower than 1: {observed:?}");
    }

    /// Routing correctness under the bench workload: every preloaded key
    /// answers, and updates land (spot check).
    #[test]
    fn bench_workload_routes_correctly() {
        let conn = build_sharded(4, 64);
        run_point_ops(&conn, 64, 500, 2);
        assert_eq!(conn.record_count(), 64);
        let reader = Session::processor("ads");
        for i in 0..64 {
            conn.execute(&reader, &GdprQuery::ReadDataByKey(format!("k{i:07}")))
                .unwrap();
        }
        conn.verify_placement().unwrap();
    }
}
