//! Shared store/connector configurations for the experiments: the paper's
//! GDPR feature matrix (§5, Figure 4) as buildable configs.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The feature axes of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// No security — the normalization baseline.
    Baseline,
    /// Encryption at rest + in transit (LUKS + stunnel/SSL stand-ins).
    Encrypt,
    /// Timely deletion (strict expiration / sweep daemon).
    Ttl,
    /// Audit logging of all operations, reads included.
    Log,
    /// Everything at once — the GDPR-compliant configuration.
    Combined,
}

impl Feature {
    pub const ALL: [Feature; 5] = [
        Feature::Baseline,
        Feature::Encrypt,
        Feature::Ttl,
        Feature::Log,
        Feature::Combined,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Feature::Baseline => "baseline",
            Feature::Encrypt => "encrypt",
            Feature::Ttl => "ttl",
            Feature::Log => "log",
            Feature::Combined => "combined",
        }
    }
}

/// A scratch directory for AOF/WAL files, removed on drop.
pub struct ScratchDir {
    pub path: PathBuf,
}

impl ScratchDir {
    pub fn new(tag: &str) -> ScratchDir {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("gdprbench-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// kvstore configuration for a feature setting (§5.1).
pub fn kv_config(feature: Feature, scratch: &ScratchDir) -> kvstore::KvConfig {
    use kvstore::config::AofStorage;
    use kvstore::{ExpirationMode, FsyncPolicy, KvConfig};
    let aof_path = scratch.file("redis.aof");
    match feature {
        Feature::Baseline => KvConfig::default(),
        Feature::Encrypt => KvConfig {
            encrypt_at_rest: true,
            encrypt_transit: true,
            ..Default::default()
        },
        Feature::Ttl => KvConfig {
            expiration: ExpirationMode::Strict,
            ..Default::default()
        },
        Feature::Log => KvConfig {
            aof: AofStorage::File(aof_path),
            fsync: FsyncPolicy::EverySec,
            log_reads: true,
            ..Default::default()
        },
        Feature::Combined => KvConfig {
            expiration: ExpirationMode::Strict,
            aof: AofStorage::File(aof_path),
            fsync: FsyncPolicy::EverySec,
            log_reads: true,
            encrypt_at_rest: true,
            encrypt_transit: true,
            ..Default::default()
        },
    }
}

/// relstore configuration for a feature setting (§5.2).
pub fn rel_config(feature: Feature, scratch: &ScratchDir) -> relstore::RelConfig {
    use relstore::config::FsyncPolicy;
    use relstore::{RelConfig, WalStorage};
    let wal_path = scratch.file("postgres.wal");
    match feature {
        Feature::Baseline => RelConfig::default(),
        Feature::Encrypt => RelConfig {
            // At-rest encryption needs something persisted to encrypt: the
            // WAL, as LUKS under $PGDATA would.
            wal: WalStorage::File(wal_path),
            fsync: FsyncPolicy::EverySec,
            encrypt_at_rest: true,
            encrypt_transit: true,
            ..Default::default()
        },
        Feature::Ttl => RelConfig {
            ttl_sweep_interval: Duration::from_secs(1),
            ..Default::default()
        },
        Feature::Log => RelConfig {
            log_statements: true,
            log_reads: true,
            ..Default::default()
        },
        Feature::Combined => RelConfig {
            wal: WalStorage::File(wal_path),
            fsync: FsyncPolicy::EverySec,
            encrypt_at_rest: true,
            encrypt_transit: true,
            log_statements: true,
            log_reads: true,
            ttl_sweep_interval: Duration::from_secs(1),
            ..Default::default()
        },
    }
}

/// Does this feature setting run the store-side timely-deletion machinery?
pub fn feature_runs_ttl(feature: Feature) -> bool {
    matches!(feature, Feature::Ttl | Feature::Combined)
}

/// Build the compliant Redis connector used by Figures 5–8 (the §5.1
/// retrofit: strict TTL, full audit logging, encryption).
pub fn compliant_redis(scratch: &ScratchDir) -> Arc<connectors::RedisConnector> {
    let store =
        kvstore::KvStore::open(kv_config(Feature::Combined, scratch)).expect("open kvstore");
    store.start_expiration_driver();
    Arc::new(connectors::RedisConnector::new(store))
}

/// Build the compliant Redis connector with the engine's metadata index
/// attached — the index-on configuration the fig5/metaindex comparisons
/// run against [`compliant_redis`]'s full-scan baseline.
pub fn compliant_redis_mi(scratch: &ScratchDir) -> Arc<connectors::RedisConnector> {
    let store =
        kvstore::KvStore::open(kv_config(Feature::Combined, scratch)).expect("open kvstore");
    store.start_expiration_driver();
    Arc::new(connectors::RedisConnector::with_metadata_index(store).expect("attach index"))
}

/// Build the compliant PostgreSQL connector (baseline indexing) — §5.2.
pub fn compliant_postgres(scratch: &ScratchDir) -> Arc<connectors::PostgresConnector> {
    let db =
        relstore::Database::open(rel_config(Feature::Combined, scratch)).expect("open relstore");
    Arc::new(connectors::PostgresConnector::new(db).expect("create table"))
}

/// Build the compliant PostgreSQL connector with metadata indices.
pub fn compliant_postgres_mi(scratch: &ScratchDir) -> Arc<connectors::PostgresConnector> {
    let db =
        relstore::Database::open(rel_config(Feature::Combined, scratch)).expect("open relstore");
    Arc::new(connectors::PostgresConnector::with_metadata_indices(db).expect("create table"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_cleaned() {
        let a = ScratchDir::new("t");
        let b = ScratchDir::new("t");
        assert_ne!(a.path, b.path);
        let path = a.path.clone();
        assert!(path.exists());
        drop(a);
        assert!(!path.exists());
        drop(b);
    }

    #[test]
    fn feature_configs_toggle_the_right_knobs() {
        let scratch = ScratchDir::new("cfg");
        let base = kv_config(Feature::Baseline, &scratch);
        assert!(!base.log_reads && !base.encrypt_transit);
        let combined = kv_config(Feature::Combined, &scratch);
        assert!(combined.log_reads && combined.encrypt_transit && combined.encrypt_at_rest);
        assert_eq!(combined.expiration, kvstore::ExpirationMode::Strict);

        let rel = rel_config(Feature::Log, &scratch);
        assert!(rel.log_statements && rel.log_reads && !rel.encrypt_transit);
        assert!(feature_runs_ttl(Feature::Combined));
        assert!(!feature_runs_ttl(Feature::Encrypt));
    }

    #[test]
    fn compliant_connectors_report_full_compliance() {
        use gdpr_core::GdprConnector;
        let scratch = ScratchDir::new("full");
        let redis = compliant_redis(&scratch);
        redis.store().stop_expiration_driver();
        assert!(
            redis.features().is_fully_compliant(),
            "{:?}",
            redis.features()
        );
        let pg = compliant_postgres_mi(&scratch);
        assert!(pg.features().is_fully_compliant(), "{:?}", pg.features());
    }
}
