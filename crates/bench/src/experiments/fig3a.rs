//! Figure 3a: Redis' delay in erasing expired keys beyond their TTL.
//!
//! The paper populates Redis with keys of which 20% expire in 5 minutes and
//! 80% in 5 days, waits out the 5 minutes, and measures how long the stock
//! lazy expiration algorithm takes to erase every short-term key — nearly
//! 3 hours at 128 K keys. Their retrofit (a strict full sweep) erases all of
//! them within sub-second latency up to a million keys.
//!
//! This reproduction drives the same two algorithms over the same key
//! population against a **simulated clock**: each expiration cycle advances
//! the clock by the cycle period (100 ms), so the reported erasure time is
//! the algorithm's own delay, measured exactly, without waiting hours.

use crate::report::{fmt_duration, ExperimentTable};
use clock::Clock;
use kvstore::expire::CYCLE_PERIOD;
use kvstore::{ExpirationMode, KvConfig, KvStore};
use std::time::Duration;

/// Upper bound on simulated cycles, so a bug cannot hang the harness
/// (128 K keys complete in well under this).
const MAX_CYCLES: u64 = 20_000_000;

/// One row of the experiment.
#[derive(Debug, Clone)]
pub struct TtlDelayPoint {
    pub total_records: usize,
    pub short_term: usize,
    pub lazy_delay: Duration,
    pub strict_delay: Duration,
}

/// Measure the erasure delay for one population size under one mode.
/// Returns simulated time from TTL deadline until every short-term key is
/// gone.
pub fn erasure_delay(total: usize, mode: ExpirationMode) -> (usize, Duration) {
    let sim = clock::sim();
    let store = KvStore::open_with_clock(
        KvConfig {
            expiration: mode,
            ..Default::default()
        },
        sim.clone(),
    )
    .expect("open store");

    let short_ttl = Duration::from_secs(5 * 60);
    let long_ttl = Duration::from_secs(5 * 24 * 3600);
    let mut short_count = 0usize;
    for i in 0..total {
        // Deterministic 20/80 split.
        let ttl = if i % 5 == 0 {
            short_count += 1;
            short_ttl
        } else {
            long_ttl
        };
        store
            .set_ex(format!("k{i:08}").as_bytes(), b"v", ttl)
            .expect("populate");
    }

    // Let the short-term TTLs lapse.
    sim.advance(short_ttl + Duration::from_millis(1));

    // Pump expiration cycles until all short-term keys are erased, counting
    // simulated time (one CYCLE_PERIOD per cycle, as serverCron ticks).
    let start = sim.now();
    let mut reaped = 0usize;
    let mut cycles = 0u64;
    while reaped < short_count && cycles < MAX_CYCLES {
        reaped += store.run_expiration_cycle().reaped;
        sim.advance(CYCLE_PERIOD);
        cycles += 1;
    }
    assert!(
        reaped >= short_count,
        "expiration never converged: {reaped}/{short_count} at {cycles} cycles"
    );
    (short_count, sim.now() - start)
}

/// Run the full experiment over doubling population sizes up to `max_records`.
pub fn run(max_records: usize) -> (ExperimentTable, Vec<TtlDelayPoint>) {
    let mut sizes = Vec::new();
    let mut n = 1000usize;
    while n <= max_records {
        sizes.push(n);
        n *= 2;
    }
    if sizes.is_empty() {
        sizes.push(max_records.max(100));
    }

    let mut table = ExperimentTable::new(
        "Figure 3a — Redis TTL erasure delay (simulated time past deadline)",
        &["records", "expired", "lazy", "strict"],
    );
    let mut points = Vec::new();
    for &total in &sizes {
        let (short, lazy_delay) = erasure_delay(total, ExpirationMode::Lazy);
        let (_, strict_delay) = erasure_delay(total, ExpirationMode::Strict);
        table.push_row(vec![
            total.to_string(),
            short.to_string(),
            fmt_duration(lazy_delay),
            fmt_duration(strict_delay),
        ]);
        points.push(TtlDelayPoint {
            total_records: total,
            short_term: short,
            lazy_delay,
            strict_delay,
        });
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_subsecond_and_lazy_grows_with_population() {
        let (_, points) = run(4000);
        assert!(points.len() >= 3);
        for p in &points {
            assert!(
                p.strict_delay <= Duration::from_secs(1),
                "strict must erase within a cycle: {:?}",
                p.strict_delay
            );
            assert!(p.lazy_delay > p.strict_delay, "lazy must lag strict");
        }
        // The paper's headline shape: lazy delay grows with DB size.
        let first = points.first().unwrap().lazy_delay;
        let last = points.last().unwrap().lazy_delay;
        assert!(
            last > first * 2,
            "lazy delay should grow with population: {first:?} -> {last:?}"
        );
    }

    #[test]
    fn lazy_delay_is_minutes_even_at_small_scale() {
        let (short, delay) = erasure_delay(2000, ExpirationMode::Lazy);
        assert_eq!(short, 400);
        // 2000 keys → expire-set 2000, ~20 samples per 100ms cycle: clearing
        // 400 due keys takes many cycles (minutes of simulated time).
        assert!(
            delay > Duration::from_secs(5),
            "unexpectedly fast: {delay:?}"
        );
    }
}
