//! Restore-vs-rebuild: what the persistent metadata-index snapshot buys
//! at restart time.
//!
//! Reopening an indexed engine without a snapshot pays the O(n) backfill:
//! a full scan of the store, decrypting and parsing every record just to
//! recover index terms. The snapshot replaces that with an O(index) load
//! of a compact checksummed image — no record payloads, no decryption, no
//! wire parsing. This experiment measures both open paths over the same
//! live store (encryption at rest on, as in the paper's compliant
//! configuration), plus the two honest rows: a *stale* image (one write
//! landed after the stamp) must fall back to the full rebuild, and the
//! snapshot write itself costs one index export.
//!
//! The acceptance bar from the roadmap: at 100 K records, restore ≥ 10×
//! faster than rebuild.

use crate::report::{fmt_duration, ExperimentTable};
use connectors::RedisConnector;
use gdpr_core::wire;
use kvstore::{KvConfig, KvStore};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::datagen;
use workload::gdpr::stable_corpus;

/// One measured recovery comparison.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    pub records: usize,
    pub index_entries: usize,
    pub snapshot_bytes: u64,
    /// O(n) open: scan-decrypt-parse backfill.
    pub rebuild: Duration,
    /// O(index) open: snapshot restore.
    pub restore: Duration,
    /// Open against a stale image (falls back to the rebuild).
    pub stale_fallback: Duration,
    /// Writing the snapshot image.
    pub snapshot_write: Duration,
}

impl RecoveryPoint {
    /// How many times faster the snapshot restore is than the rebuild.
    pub fn speedup(&self) -> f64 {
        self.rebuild.as_secs_f64() / self.restore.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Populate a store with `records` corpus records (sealed at rest) and
/// measure the two open paths against it.
pub fn run_micro(records: usize) -> RecoveryPoint {
    let dir = std::env::temp_dir().join(format!(
        "gdpr-recovery-bench-{}-{records}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("metaindex.snap");
    let _ = std::fs::remove_file(&path);

    // The paper's fully compliant store: encryption at rest AND in
    // transit, plus audit logging of reads — the deployment the indexed
    // variants exist in. A restart rebuild pays all of it 100 K times
    // over (every scanned record is a logged, transit-sealed, at-rest
    // decrypted GET); the snapshot restore touches none of it.
    let store = KvStore::open(KvConfig::gdpr_compliant_in_memory()).expect("open kvstore");
    // GDPRbench-shaped records (1 KB payloads): the rebuild decrypts and
    // parses every byte of them; the snapshot holds keys and metadata
    // terms only, so its size — and the restore time — is independent of
    // the payloads.
    let config = workload::datagen::CorpusConfig {
        data_len: 1024,
        ..stable_corpus(records)
    };
    for i in 0..records {
        let record = datagen::record_of(i, &config);
        store
            .set(
                format!("rec:{}", record.key).as_bytes(),
                wire::serialize(&record).as_bytes(),
            )
            .expect("load record");
    }

    // The compliant store audit-logs every read into its (memory-backed)
    // AOF, so each scan round would otherwise grow the process by the
    // whole logged keyspace; the log's content is irrelevant here (the
    // generation counter is tracked independently), so drop it between
    // rounds to keep the measurements about the open paths, not about
    // allocator pressure.
    let clear_aof = |store: &Arc<KvStore>| {
        if let Some(buf) = store.aof_memory_buffer() {
            let mut buf = buf.lock();
            buf.clear();
            buf.shrink_to_fit();
        }
    };
    clear_aof(&store);

    // Each open path is timed as the minimum of a few rounds: a restart
    // measurement is exactly the kind of one-shot a noisy machine
    // distorts (first-touch page faults, allocator growth), and the
    // minimum is the standard de-noised estimator for deterministic work.
    const ROUNDS: usize = 3;
    let min_of = |body: &mut dyn FnMut() -> Duration| {
        (0..ROUNDS)
            .map(|_| {
                clear_aof(&store);
                body()
            })
            .min()
            .expect("rounds > 0")
    };

    // O(n): the backfill open path every restart pays without a snapshot.
    let mut index_entries = 0;
    let rebuild = min_of(&mut || {
        let start = Instant::now();
        let rebuilt =
            RedisConnector::with_metadata_index(Arc::clone(&store)).expect("backfill open");
        let elapsed = start.elapsed();
        index_entries = rebuilt.metadata_index().expect("index").len();
        elapsed
    });

    // Write the image (first snapshot-aware open rebuilds again — not
    // timed — then persists).
    let writer =
        RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
    let snapshot_write = min_of(&mut || {
        let start = Instant::now();
        writer.write_index_snapshot().expect("write snapshot");
        start.elapsed()
    });
    drop(writer);
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();

    // O(index): the restore open path.
    let restore = min_of(&mut || {
        let start = Instant::now();
        let restored =
            RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
        let elapsed = start.elapsed();
        assert!(
            restored
                .index_recovery()
                .is_some_and(gdpr_core::IndexRecovery::is_restored),
            "a matching snapshot must take the restore path"
        );
        assert_eq!(
            restored.metadata_index().expect("index").len(),
            index_entries
        );
        elapsed
    });

    // Honest row: one write behind the stamp makes the image stale — the
    // open must detect it and pay the rebuild, never serve the old index.
    let smuggled = datagen::record_of(records, &config);
    store
        .set(
            format!("rec:{}", smuggled.key).as_bytes(),
            wire::serialize(&smuggled).as_bytes(),
        )
        .expect("smuggle record");
    clear_aof(&store);
    let start = Instant::now();
    let stale =
        RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
    let stale_fallback = start.elapsed();
    assert!(
        stale.index_recovery().is_some_and(|r| !r.is_restored()),
        "a stale snapshot must force the rebuild"
    );
    assert_eq!(
        stale.metadata_index().expect("index").len(),
        index_entries + 1,
        "the rebuild must pick up the smuggled record"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    RecoveryPoint {
        records,
        index_entries,
        snapshot_bytes,
        rebuild,
        restore,
        stale_fallback,
        snapshot_write,
    }
}

/// The experiment: restore-vs-rebuild at `records` scale.
pub fn run(records: usize) -> (ExperimentTable, RecoveryPoint) {
    let point = run_micro(records);
    let mut table = ExperimentTable::new(
        format!(
            "Index recovery at {} records ({} index entries, snapshot {} KiB)",
            point.records,
            point.index_entries,
            point.snapshot_bytes / 1024
        ),
        &["open path", "time", "vs rebuild"],
    );
    table.push_row(vec![
        "rebuild (O(n) scan-decrypt-parse)".into(),
        fmt_duration(point.rebuild),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        "restore (O(index) snapshot load)".into(),
        fmt_duration(point.restore),
        format!("{:.2}x faster", point.speedup()),
    ]);
    table.push_row(vec![
        "stale snapshot (falls back to rebuild)".into(),
        fmt_duration(point.stale_fallback),
        format!(
            "{:.2}x",
            point.rebuild.as_secs_f64() / point.stale_fallback.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    ]);
    table.push_row(vec![
        "snapshot write (export + fsync + rename)".into(),
        fmt_duration(point.snapshot_write),
        String::new(),
    ]);
    (table, point)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy-scale smoke: the restore path is taken, agrees with the
    /// rebuild, and the stale fallback catches the smuggled write. (The
    /// ≥10× speedup claim is asserted at 100 K in the release bin, not
    /// here — debug-build timings are noise.)
    #[test]
    fn restore_and_stale_fallback_behave() {
        let point = run_micro(1500);
        assert_eq!(point.records, 1500);
        assert!(point.index_entries > 0);
        assert!(point.snapshot_bytes > 0);
        assert!(point.restore > Duration::ZERO);
        assert!(point.rebuild > Duration::ZERO);
    }
}
