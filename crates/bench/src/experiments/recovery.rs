//! Restore-vs-rebuild: what the persistent metadata-index snapshot buys
//! at restart time.
//!
//! Reopening an indexed engine without a snapshot pays the O(n) backfill:
//! a full scan of the store, decrypting and parsing every record just to
//! recover index terms. The snapshot replaces that with an O(index) load
//! of a compact checksummed image — no record payloads, no decryption, no
//! wire parsing. This experiment measures both open paths over the same
//! live store (encryption at rest on, as in the paper's compliant
//! configuration), plus the two honest rows: a *stale* image (one write
//! landed after the stamp) must fall back to the full rebuild, and the
//! snapshot write itself costs one index export.
//!
//! The acceptance bar from the roadmap: at 100 K records, restore ≥ 10×
//! faster than rebuild.

use crate::report::{fmt_duration, ExperimentTable};
use connectors::RedisConnector;
use gdpr_core::wire;
use kvstore::{KvConfig, KvStore};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::datagen;
use workload::gdpr::stable_corpus;

/// One measured recovery comparison.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    pub records: usize,
    pub index_entries: usize,
    pub snapshot_bytes: u64,
    /// O(n) open: scan-decrypt-parse backfill.
    pub rebuild: Duration,
    /// O(index) open: snapshot restore.
    pub restore: Duration,
    /// Open against a stale image (falls back to the rebuild).
    pub stale_fallback: Duration,
    /// Writing the snapshot image.
    pub snapshot_write: Duration,
}

impl RecoveryPoint {
    /// How many times faster the snapshot restore is than the rebuild.
    pub fn speedup(&self) -> f64 {
        self.rebuild.as_secs_f64() / self.restore.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Populate a store with `records` corpus records (sealed at rest) and
/// measure the two open paths against it.
pub fn run_micro(records: usize) -> RecoveryPoint {
    let dir = std::env::temp_dir().join(format!(
        "gdpr-recovery-bench-{}-{records}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("metaindex.snap");
    let _ = std::fs::remove_file(&path);

    // The paper's fully compliant store: encryption at rest AND in
    // transit, plus audit logging of reads — the deployment the indexed
    // variants exist in. A restart rebuild pays all of it 100 K times
    // over (every scanned record is a logged, transit-sealed, at-rest
    // decrypted GET); the snapshot restore touches none of it.
    let store = KvStore::open(KvConfig::gdpr_compliant_in_memory()).expect("open kvstore");
    // GDPRbench-shaped records (1 KB payloads): the rebuild decrypts and
    // parses every byte of them; the snapshot holds keys and metadata
    // terms only, so its size — and the restore time — is independent of
    // the payloads.
    let config = workload::datagen::CorpusConfig {
        data_len: 1024,
        ..stable_corpus(records)
    };
    for i in 0..records {
        let record = datagen::record_of(i, &config);
        store
            .set(
                format!("rec:{}", record.key).as_bytes(),
                wire::serialize(&record).as_bytes(),
            )
            .expect("load record");
    }

    // The compliant store audit-logs every read into its (memory-backed)
    // AOF, so each scan round would otherwise grow the process by the
    // whole logged keyspace; the log's content is irrelevant here (the
    // generation counter is tracked independently), so drop it between
    // rounds to keep the measurements about the open paths, not about
    // allocator pressure.
    let clear_aof = |store: &Arc<KvStore>| {
        if let Some(buf) = store.aof_memory_buffer() {
            let mut buf = buf.lock();
            buf.clear();
            buf.shrink_to_fit();
        }
    };
    clear_aof(&store);

    // Each open path is timed as the minimum of a few rounds: a restart
    // measurement is exactly the kind of one-shot a noisy machine
    // distorts (first-touch page faults, allocator growth), and the
    // minimum is the standard de-noised estimator for deterministic work.
    const ROUNDS: usize = 3;
    let min_of = |body: &mut dyn FnMut() -> Duration| {
        (0..ROUNDS)
            .map(|_| {
                clear_aof(&store);
                body()
            })
            .min()
            .expect("rounds > 0")
    };

    // O(n): the backfill open path every restart pays without a snapshot.
    let mut index_entries = 0;
    let rebuild = min_of(&mut || {
        let start = Instant::now();
        let rebuilt =
            RedisConnector::with_metadata_index(Arc::clone(&store)).expect("backfill open");
        let elapsed = start.elapsed();
        index_entries = rebuilt.metadata_index().expect("index").len();
        elapsed
    });

    // Write the image (first snapshot-aware open rebuilds again — not
    // timed — then persists).
    let writer =
        RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
    let snapshot_write = min_of(&mut || {
        let start = Instant::now();
        writer.write_index_snapshot().expect("write snapshot");
        start.elapsed()
    });
    drop(writer);
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();

    // O(index): the restore open path.
    let restore = min_of(&mut || {
        let start = Instant::now();
        let restored =
            RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
        let elapsed = start.elapsed();
        assert!(
            restored
                .index_recovery()
                .is_some_and(gdpr_core::IndexRecovery::is_restored),
            "a matching snapshot must take the restore path"
        );
        assert_eq!(
            restored.metadata_index().expect("index").len(),
            index_entries
        );
        elapsed
    });

    // Honest row: one write behind the stamp makes the image stale — the
    // open must detect it and pay the rebuild, never serve the old index.
    let smuggled = datagen::record_of(records, &config);
    store
        .set(
            format!("rec:{}", smuggled.key).as_bytes(),
            wire::serialize(&smuggled).as_bytes(),
        )
        .expect("smuggle record");
    clear_aof(&store);
    let start = Instant::now();
    let stale =
        RedisConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
    let stale_fallback = start.elapsed();
    assert!(
        stale.index_recovery().is_some_and(|r| !r.is_restored()),
        "a stale snapshot must force the rebuild"
    );
    assert_eq!(
        stale.metadata_index().expect("index").len(),
        index_entries + 1,
        "the rebuild must pick up the smuggled record"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    RecoveryPoint {
        records,
        index_entries,
        snapshot_bytes,
        rebuild,
        restore,
        stale_fallback,
        snapshot_write,
    }
}

/// The experiment: restore-vs-rebuild at `records` scale.
pub fn run(records: usize) -> (ExperimentTable, RecoveryPoint) {
    let point = run_micro(records);
    let mut table = ExperimentTable::new(
        format!(
            "Index recovery at {} records ({} index entries, snapshot {} KiB)",
            point.records,
            point.index_entries,
            point.snapshot_bytes / 1024
        ),
        &["open path", "time", "vs rebuild"],
    );
    table.push_row(vec![
        "rebuild (O(n) scan-decrypt-parse)".into(),
        fmt_duration(point.rebuild),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        "restore (O(index) snapshot load)".into(),
        fmt_duration(point.restore),
        format!("{:.2}x faster", point.speedup()),
    ]);
    table.push_row(vec![
        "stale snapshot (falls back to rebuild)".into(),
        fmt_duration(point.stale_fallback),
        format!(
            "{:.2}x",
            point.rebuild.as_secs_f64() / point.stale_fallback.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    ]);
    table.push_row(vec![
        "snapshot write (export + fsync + rename)".into(),
        fmt_duration(point.snapshot_write),
        String::new(),
    ]);
    (table, point)
}

// ---------------------------------------------------------------------------
// The same comparison over the disk-native pagestore backend
// ---------------------------------------------------------------------------

/// One measured pagestore restart comparison. The store-recovery rows
/// (WAL replay vs checkpointed reopen) have no kvstore analogue — the
/// paged store's restart cost is the committed-but-unflushed WAL tail,
/// not an AOF replay of the whole history.
#[derive(Debug, Clone)]
pub struct DiskRecoveryPoint {
    pub records: usize,
    pub index_entries: usize,
    pub snapshot_bytes: u64,
    /// Reopen with a ~10% write burst still in the WAL (frame replay).
    pub wal_reopen: Duration,
    /// Committed frames that reopen replayed.
    pub wal_frames: usize,
    /// Reopen right after a checkpoint (empty WAL; meta page only).
    pub checkpointed_reopen: Duration,
    /// O(n) index backfill at open: scan, unseal, parse every record.
    pub rebuild: Duration,
    /// O(index) index restore from the snapshot image.
    pub restore: Duration,
    /// Writing the snapshot image.
    pub snapshot_write: Duration,
}

impl DiskRecoveryPoint {
    /// How many times faster the snapshot restore is than the rebuild.
    pub fn speedup(&self) -> f64 {
        self.rebuild.as_secs_f64() / self.restore.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Populate a paged store with `records` corpus records (sealed at rest)
/// and measure both restart axes against it: store recovery (WAL replay
/// vs checkpointed) and index recovery (snapshot restore vs scan
/// rebuild).
pub fn run_disk_micro(records: usize) -> DiskRecoveryPoint {
    use connectors::DiskConnector;
    use pagestore::{PageStore, PageStoreConfig};

    let dir = std::env::temp_dir().join(format!(
        "gdpr-recovery-disk-{}-{records}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join("metaindex.snap");

    let config = PageStoreConfig::default();
    let open = || PageStore::open(&dir, config.clone(), clock::wall()).expect("open pagestore");
    let corpus = workload::datagen::CorpusConfig {
        data_len: 1024,
        ..stable_corpus(records)
    };

    // Load through the engine (scan variant — no index yet), then
    // checkpoint so the load burst is in the data file, not the WAL.
    // The store handle lives in a slot so the reopen rounds can drop the
    // only handle before opening the files again.
    let mut slot = Some(open());
    {
        let loader = DiskConnector::new(Arc::clone(slot.as_ref().unwrap()));
        workload::gdpr::load_corpus(&loader, &corpus).expect("load corpus");
    }
    slot.as_ref()
        .unwrap()
        .checkpoint()
        .expect("checkpoint after load");

    // A ~10% rewrite burst lands in the WAL: the committed-but-unflushed
    // tail every crash-restart replays.
    let burst = (records / 10).max(1);
    for i in 0..burst {
        let record = datagen::record_of(i, &corpus);
        slot.as_ref()
            .unwrap()
            .upsert(&record.key, wire::serialize(&record).as_bytes(), None)
            .expect("burst rewrite");
    }

    const ROUNDS: usize = 3;
    let reopen_rounds = |slot: &mut Option<Arc<PageStore>>| {
        (0..ROUNDS)
            .map(|_| {
                drop(slot.take());
                let start = Instant::now();
                *slot = Some(open());
                start.elapsed()
            })
            .min()
            .expect("rounds > 0")
    };

    // Store recovery, axis 1: reopen replaying the burst's WAL frames.
    // Replay applies frames to the pool without checkpointing, so every
    // round replays the same tail.
    let wal_reopen = reopen_rounds(&mut slot);
    let wal_frames = slot.as_ref().unwrap().recovery().wal_frames;
    assert!(wal_frames > 0, "the write burst must be replayed");
    let store = slot.take().expect("store handle");

    // Index recovery, axis 2: O(n) backfill vs O(index) snapshot load.
    let mut index_entries = 0;
    let rebuild = (0..ROUNDS)
        .map(|_| {
            let start = Instant::now();
            let rebuilt =
                DiskConnector::with_metadata_index(Arc::clone(&store)).expect("backfill open");
            let elapsed = start.elapsed();
            index_entries = rebuilt.metadata_index().expect("index").len();
            elapsed
        })
        .min()
        .expect("rounds > 0");

    let writer =
        DiskConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).expect("open");
    let snapshot_write = (0..ROUNDS)
        .map(|_| {
            let start = Instant::now();
            writer.write_index_snapshot().expect("write snapshot");
            start.elapsed()
        })
        .min()
        .expect("rounds > 0");
    drop(writer);
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();

    let restore = (0..ROUNDS)
        .map(|_| {
            let start = Instant::now();
            let restored = DiskConnector::with_metadata_index_snapshot(Arc::clone(&store), &path)
                .expect("open");
            let elapsed = start.elapsed();
            assert!(
                restored
                    .index_recovery()
                    .is_some_and(gdpr_core::IndexRecovery::is_restored),
                "a generation-matched snapshot must take the restore path"
            );
            assert_eq!(
                restored.metadata_index().expect("index").len(),
                index_entries
            );
            elapsed
        })
        .min()
        .expect("rounds > 0");

    // Store recovery, axis 1 again, after a checkpoint: the WAL is empty
    // and reopen reads only the meta page.
    store.checkpoint().expect("checkpoint");
    slot = Some(store);
    let checkpointed_reopen = reopen_rounds(&mut slot);
    let store = slot.take().expect("store handle");
    assert_eq!(store.recovery().wal_frames, 0, "checkpointed WAL is empty");
    assert_eq!(store.record_count(), records);

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    DiskRecoveryPoint {
        records,
        index_entries,
        snapshot_bytes,
        wal_reopen,
        wal_frames,
        checkpointed_reopen,
        rebuild,
        restore,
        snapshot_write,
    }
}

/// The pagestore experiment: both restart axes at `records` scale.
pub fn run_disk(records: usize) -> (ExperimentTable, DiskRecoveryPoint) {
    let point = run_disk_micro(records);
    let mut table = ExperimentTable::new(
        format!(
            "Pagestore restart at {} records ({} index entries, snapshot {} KiB, \
             {} WAL frames in the burst tail)",
            point.records,
            point.index_entries,
            point.snapshot_bytes / 1024,
            point.wal_frames
        ),
        &["restart path", "time", "vs index rebuild"],
    );
    table.push_row(vec![
        "store reopen, WAL tail replay".into(),
        fmt_duration(point.wal_reopen),
        String::new(),
    ]);
    table.push_row(vec![
        "store reopen, checkpointed (empty WAL)".into(),
        fmt_duration(point.checkpointed_reopen),
        String::new(),
    ]);
    table.push_row(vec![
        "index rebuild (O(n) scan-unseal-parse)".into(),
        fmt_duration(point.rebuild),
        "1.00x".into(),
    ]);
    table.push_row(vec![
        "index restore (O(index) snapshot load)".into(),
        fmt_duration(point.restore),
        format!("{:.2}x faster", point.speedup()),
    ]);
    table.push_row(vec![
        "snapshot write (export + fsync + rename)".into(),
        fmt_duration(point.snapshot_write),
        String::new(),
    ]);
    (table, point)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy-scale smoke: the restore path is taken, agrees with the
    /// rebuild, and the stale fallback catches the smuggled write. (The
    /// ≥10× speedup claim is asserted at 100 K in the release bin, not
    /// here — debug-build timings are noise.)
    #[test]
    fn restore_and_stale_fallback_behave() {
        let point = run_micro(1500);
        assert_eq!(point.records, 1500);
        assert!(point.index_entries > 0);
        assert!(point.snapshot_bytes > 0);
        assert!(point.restore > Duration::ZERO);
        assert!(point.rebuild > Duration::ZERO);
    }

    /// Pagestore flavour of the same smoke, plus the store-recovery axis:
    /// the burst tail replays, the checkpointed reopen sees an empty WAL,
    /// and the snapshot restore path is taken against the WAL-derived
    /// generation stamp.
    #[test]
    fn disk_restart_axes_behave() {
        let point = run_disk_micro(1200);
        assert_eq!(point.records, 1200);
        assert!(point.index_entries > 0);
        assert!(point.snapshot_bytes > 0);
        assert!(point.wal_frames > 0);
        assert!(point.restore > Duration::ZERO);
        assert!(point.rebuild > Duration::ZERO);
    }

    /// A write that lands after the snapshot stamp (here: directly on the
    /// pagestore, bumping its WAL generation) must force the reopen down
    /// the rebuild path — the image is stale the moment the commit
    /// sequence moves.
    #[test]
    fn disk_snapshot_goes_stale_on_any_commit() {
        use connectors::DiskConnector;
        use pagestore::{PageStore, PageStoreConfig};
        let dir = std::env::temp_dir().join(format!("gdpr-recovery-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = PageStore::open(&dir, PageStoreConfig::default(), clock::wall()).unwrap();
        let corpus = stable_corpus(300);
        let path = dir.join("metaindex.snap");
        let writer = DiskConnector::with_metadata_index_snapshot(Arc::clone(&store), &path)
            .expect("first open");
        workload::gdpr::load_corpus(&writer, &corpus).expect("load corpus");
        writer.write_index_snapshot().expect("write snapshot");
        drop(writer);

        let restored =
            DiskConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
        assert!(
            restored
                .index_recovery()
                .is_some_and(gdpr_core::IndexRecovery::is_restored),
            "matching generation must restore"
        );
        drop(restored);

        let smuggled = datagen::record_of(corpus.records, &corpus);
        store
            .insert(&smuggled.key, wire::serialize(&smuggled).as_bytes(), None)
            .expect("smuggle commit");
        let stale = DiskConnector::with_metadata_index_snapshot(Arc::clone(&store), &path).unwrap();
        assert!(
            stale.index_recovery().is_some_and(|r| !r.is_restored()),
            "a moved commit sequence must force the rebuild"
        );
        assert!(stale
            .metadata_index()
            .expect("index")
            .keys_by_user(&smuggled.metadata.user)
            .contains(&smuggled.key));
        drop(stale);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
