//! Figures 7 and 8: the effect of database scale.
//!
//! Part (a): YCSB workload C — 10 K read operations against growing record
//! counts. Both stores stay essentially flat (hash/B-tree lookups are
//! O(1)/O(log n)).
//!
//! Part (b): the GDPRbench customer workload with a fixed operation count
//! against a growing volume of personal records. Redis (Figure 7b) degrades
//! linearly — its metadata queries scan the keyspace — while PostgreSQL
//! with metadata indices (Figure 8b) degrades only moderately.

use super::configs::ScratchDir;
use super::fig5::build_connector;
use crate::report::{fmt_duration, ExperimentTable};
use std::sync::Arc;
use std::time::Duration;
use workload::gdpr::{load_corpus, stable_corpus, GdprWorkloadKind};
use workload::ycsb::{ycsb_key, KvInterface, KvStoreYcsb, RelStoreYcsb, YcsbConfig};
use workload::{datagen, run_gdpr_workload, run_ycsb_workload};

/// Measured (record_count, completion) series.
pub type ScaleSeries = Vec<(usize, Duration)>;

/// Part (a): YCSB-C completion time at each scale.
pub fn run_part_a(
    db: &str,
    scales: &[usize],
    ops: u64,
    threads: usize,
) -> (ExperimentTable, ScaleSeries) {
    let fig = if db == "redis" { "7a" } else { "8a" };
    let mut table = ExperimentTable::new(
        format!("Figure {fig} — YCSB-C completion vs DB size ({db}, {ops} ops)"),
        &["records", "completion", "ops/s"],
    );
    let mut series = ScaleSeries::new();
    for &records in scales {
        let completion = match db {
            "redis" => {
                let store = kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open");
                let adapter = KvStoreYcsb::new(store);
                for i in 0..records as u64 {
                    adapter
                        .insert(&ycsb_key(i), &datagen::ycsb_value(i, 100))
                        .expect("load");
                }
                run_ycsb_workload(
                    Arc::new(adapter),
                    YcsbConfig::workload('C'),
                    records as u64,
                    ops,
                    threads,
                )
                .completion
            }
            _ => {
                let rel = relstore::Database::open(relstore::RelConfig::default()).expect("open");
                let adapter = RelStoreYcsb::new(rel).expect("usertable");
                for i in 0..records as u64 {
                    adapter
                        .insert(&ycsb_key(i), &datagen::ycsb_value(i, 100))
                        .expect("load");
                }
                run_ycsb_workload(
                    Arc::new(adapter),
                    YcsbConfig::workload('C'),
                    records as u64,
                    ops,
                    threads,
                )
                .completion
            }
        };
        table.push_row(vec![
            records.to_string(),
            fmt_duration(completion),
            crate::report::fmt_ops(ops as f64 / completion.as_secs_f64().max(1e-9)),
        ]);
        series.push((records, completion));
    }
    (table, series)
}

/// Part (b): GDPRbench customer workload completion at each personal-data
/// scale. `db` is `redis` (Fig 7b) or `postgres-mi` (Fig 8b).
pub fn run_part_b(
    db: &str,
    scales: &[usize],
    ops: u64,
    threads: usize,
) -> (ExperimentTable, ScaleSeries) {
    let fig = if db == "redis" { "7b" } else { "8b" };
    let mut table = ExperimentTable::new(
        format!(
            "Figure {fig} — GDPRbench customer workload vs personal-data volume ({db}, {ops} ops)"
        ),
        &["records", "completion", "ops/s"],
    );
    let mut series = ScaleSeries::new();
    for &records in scales {
        let scratch = ScratchDir::new("fig7b");
        let handle = build_connector(db, &scratch);
        let corpus = stable_corpus(records);
        load_corpus(handle.connector.as_ref(), &corpus).expect("load");
        let report = run_gdpr_workload(
            Arc::clone(&handle.connector),
            GdprWorkloadKind::Customer,
            corpus,
            ops,
            threads,
            false,
        );
        table.push_row(vec![
            records.to_string(),
            fmt_duration(report.completion),
            crate::report::fmt_ops(report.throughput_ops_per_sec()),
        ]);
        series.push((records, report.completion));
    }
    (table, series)
}

/// Default scale ladders: geometric for part (a) (paper: 10 K → 10 M),
/// arithmetic for part (b) (paper: 100 K → 500 K), both capped by
/// `max_records`.
pub fn default_scales(max_records: usize, part: &str) -> Vec<usize> {
    if part == "a" {
        let mut out = Vec::new();
        let mut n = (max_records / 64).max(1000);
        while n <= max_records {
            out.push(n);
            n *= 4;
        }
        out
    } else {
        (1..=5).map(|i| (max_records / 5).max(200) * i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_a_is_flat_for_redis() {
        let _gate = crate::timing_gate();
        let (_, series) = run_part_a("redis", &[1000, 4000, 16_000], 3000, 2);
        let first = series.first().unwrap().1.as_secs_f64();
        let last = series.last().unwrap().1.as_secs_f64();
        // 16× the data should not change YCSB-C completion by more than ~3×
        // (generous bound for CI noise; the paper's curve is flat).
        assert!(
            last < first * 3.0 + 0.05,
            "YCSB-C should be ~flat with scale: {series:?}"
        );
    }

    #[test]
    fn part_b_grows_linearly_for_redis() {
        let _gate = crate::timing_gate();
        let (_, series) = run_part_b("redis", &[400, 800, 1600], 60, 2);
        let first = series.first().unwrap().1.as_secs_f64();
        let last = series.last().unwrap().1.as_secs_f64();
        assert!(
            last > first * 2.0,
            "customer workload should grow with personal-data volume: {series:?}"
        );
    }

    #[test]
    fn part_b_grows_slower_on_postgres_mi_than_redis() {
        let _gate = crate::timing_gate();
        let scales = [400, 1600];
        let (_, redis) = run_part_b("redis", &scales, 60, 2);
        let (_, pg) = run_part_b("postgres-mi", &scales, 60, 2);
        let redis_growth = redis[1].1.as_secs_f64() / redis[0].1.as_secs_f64().max(1e-9);
        let pg_growth = pg[1].1.as_secs_f64() / pg[0].1.as_secs_f64().max(1e-9);
        assert!(
            pg_growth < redis_growth,
            "metadata indices should mute the scale response: redis {redis_growth:.1}x vs pg {pg_growth:.1}x"
        );
    }

    #[test]
    fn scale_ladders() {
        assert_eq!(
            default_scales(64_000, "a"),
            vec![1000, 4000, 16_000, 64_000]
        );
        assert_eq!(default_scales(1000, "b"), vec![200, 400, 600, 800, 1000]);
    }
}
