//! Batched vs per-record metadata-index maintenance — the write-side cost
//! the roadmap's "batched index maintenance" item targets.
//!
//! Every engine write keeps the `MetadataIndex` consistent. Before the
//! batch API, each record of a multi-record operation (group update,
//! group delete, TTL purge, backfill, shard rebalance) paid its own
//! write-lock round-trip on the index; `IndexBatch` +
//! `MetadataIndex::apply` coalesce the whole group under one acquisition,
//! with batch construction happening entirely outside the lock.
//!
//! Uncontended, a parking-lot lock round-trip costs nanoseconds against
//! microseconds of indexing work per record, so batching has nothing to
//! save there and its op buffering makes the idle row a net cost at
//! large stream sizes — the honest baseline. The win appears exactly
//! where the paper's workloads live: **concurrent readers**. A
//! per-record writer re-enters the lock queue after every record,
//! waiting out a reader critical section each time (and GDPR predicate
//! reads hold the read lock while they clone their candidate key sets);
//! the batched writer waits once. The contended rows measure maintenance
//! streams racing the same predicate-reader mix the engine serves.

use crate::report::ExperimentTable;
use gdpr_core::{
    GdprConnector, GdprQuery, IndexBatch, MetadataField, MetadataIndex, MetadataUpdate,
    RecordPredicate, Session,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::datagen;
use workload::gdpr::stable_corpus;

/// One comparison row: the same logical write stream, per record vs
/// batched.
#[derive(Debug, Clone)]
pub struct WriteBatchPoint {
    pub workload: &'static str,
    /// Concurrent predicate-reader threads during the stream.
    pub readers: usize,
    pub per_record: Duration,
    pub batched: Duration,
}

impl WriteBatchPoint {
    /// How many times cheaper the batched path is.
    pub fn speedup(&self) -> f64 {
        self.per_record.as_secs_f64() / self.batched.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Time `body` over `rounds` runs, returning the mean.
fn timed(rounds: usize, mut body: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..rounds {
        body();
    }
    start.elapsed() / rounds.max(1) as u32
}

/// Index-maintenance stream (`records` upserts, re-indexing the same
/// keys each round against one live index) applied one lock round-trip
/// per record vs one batch apply, while `readers` threads run the
/// engine's predicate reads against the same index.
pub fn run_micro(records: usize, rounds: usize, readers: usize) -> WriteBatchPoint {
    let config = stable_corpus(records);
    let corpus: Vec<_> = (0..records)
        .map(|i| datagen::record_of(i, &config))
        .collect();
    let index = Arc::new(MetadataIndex::new());
    for record in &corpus {
        index.upsert(record, 0, false);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let user = corpus[0].metadata.user.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // The reads the engine actually serves: a point-ish
                    // inverted lookup and a negative predicate whose
                    // candidate set is cloned under the read lock.
                    let _ = index.keys_for(&RecordPredicate::User(user.clone()));
                    let _ = index.keys_for(&RecordPredicate::DecisionEligible);
                }
            })
        })
        .collect();

    // Both paths consume *owned* record streams built outside the timed
    // region, exactly as the engine hands them over (records are moved,
    // never copied, and dropped as they are indexed). The batched timed
    // body includes batch *construction* — the engine's batched routes
    // build the batch as part of the same operation, so excluding it
    // would overstate the gain an engine caller sees.
    let mut streams: Vec<Vec<_>> = (0..rounds.max(1)).map(|_| corpus.clone()).collect();
    let per_record = timed(rounds, || {
        for record in streams.pop().expect("one stream per round") {
            index.upsert(&record, 0, false);
        }
    });
    let mut streams: Vec<Vec<_>> = (0..rounds.max(1)).map(|_| corpus.clone()).collect();
    let batched = timed(rounds, || {
        let mut batch = IndexBatch::new();
        for record in streams.pop().expect("one stream per round") {
            batch.upsert(record, 0, false);
        }
        index.apply(batch);
    });

    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        let _ = handle.join();
    }

    WriteBatchPoint {
        workload: if readers == 0 {
            "maintenance stream, idle index"
        } else {
            "maintenance stream vs predicate readers"
        },
        readers,
        per_record,
        batched,
    }
}

/// End-to-end group writes on the indexed engine (these routes now
/// coalesce their index maintenance): mean latency of a group metadata
/// update and a group delete over one user's whole record set.
pub fn run_engine(records: usize, samples: usize) -> Vec<(&'static str, Duration, usize)> {
    let config = stable_corpus(records);
    let conn = connectors::RedisConnector::with_metadata_index(
        kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open kvstore"),
    )
    .expect("attach index");
    let controller = Session::controller();
    for i in 0..records {
        conn.execute(
            &controller,
            &GdprQuery::CreateRecord(datagen::record_of(i, &config)),
        )
        .expect("load corpus");
    }
    let user = datagen::record_of(records / 2, &config).metadata.user;
    let group = conn
        .execute(&controller, &GdprQuery::ReadMetadataByUser(user.clone()))
        .expect("probe")
        .cardinality();

    let update = GdprQuery::UpdateMetadataByUser {
        user: user.clone(),
        update: MetadataUpdate::Add(MetadataField::Sharing, "batch-corp".into()),
    };
    let group_update = timed(samples, || {
        conn.execute(&controller, &update).expect("group update");
    });

    // Group delete + reload per sample so every round deletes the same set.
    let reload: Vec<_> = conn
        .execute(&controller, &GdprQuery::ReadMetadataByUser(user.clone()))
        .expect("snapshot")
        .as_metadata()
        .unwrap()
        .to_vec();
    let group_delete = timed(samples, || {
        conn.execute(&controller, &GdprQuery::DeleteByUser(user.clone()))
            .expect("group delete");
        for (key, metadata) in &reload {
            let record =
                gdpr_core::PersonalRecord::new(key.clone(), "reload".to_string(), metadata.clone());
            conn.execute(&controller, &GdprQuery::CreateRecord(record))
                .expect("reload");
        }
    });

    vec![
        ("update-metadata-by-usr", group_update, group),
        ("delete-record-by-usr (incl. reload)", group_delete, group),
    ]
}

/// The experiment table: the maintenance stream uncontended and racing
/// predicate readers, plus end-to-end group write latencies.
pub fn run(records: usize, rounds: usize) -> (ExperimentTable, Vec<WriteBatchPoint>) {
    let points = vec![run_micro(records, rounds, 0), run_micro(records, rounds, 2)];
    let mut table = ExperimentTable::new(
        format!("Batched vs per-record index maintenance ({records} records)"),
        &["workload", "readers", "per-record", "batched", "speedup"],
    );
    for point in &points {
        table.push_row(vec![
            point.workload.to_string(),
            point.readers.to_string(),
            format!("{:.2?}", point.per_record),
            format!("{:.2?}", point.batched),
            format!("{:.2}x", point.speedup()),
        ]);
    }
    for (name, latency, group) in run_engine(records, rounds) {
        table.push_row(vec![
            format!("{name} [group of {group}]"),
            "0".to_string(),
            "-".to_string(),
            format!("{latency:.2?}"),
            "-".to_string(),
        ]);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Under the read contention the engine actually serves, one batched
    /// apply must beat per-record maintenance outright: the per-record
    /// writer re-queues behind a reader critical section for every record,
    /// the batched writer once. (Uncontended, the two paths tie modulo
    /// noise — the bench reports that row; only the contended row gates.)
    #[test]
    fn batched_maintenance_beats_per_record_under_read_contention() {
        let _gate = crate::timing_gate();
        let mut last = run_micro(8_000, 3, 2);
        for _ in 0..2 {
            if last.speedup() >= 1.3 {
                break;
            }
            last = run_micro(8_000, 3, 2);
        }
        assert!(
            last.speedup() >= 1.3,
            "contended batch apply should be measurably cheaper: per-record {:?} vs batched {:?} ({:.2}x)",
            last.per_record,
            last.batched,
            last.speedup()
        );
    }

    /// The batched engine paths leave the index and store in the same
    /// state as before the batch API: a group update reindexes every
    /// member, a group delete scrubs them all.
    #[test]
    fn engine_group_writes_keep_index_consistent() {
        let records = 600;
        let config = stable_corpus(records);
        let conn = connectors::RedisConnector::with_metadata_index(
            kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
        )
        .unwrap();
        let controller = Session::controller();
        for i in 0..records {
            conn.execute(
                &controller,
                &GdprQuery::CreateRecord(datagen::record_of(i, &config)),
            )
            .unwrap();
        }
        let user = datagen::record_of(records / 2, &config).metadata.user;
        let index = conn.metadata_index().unwrap();
        let group = index.keys_by_user(&user);
        assert!(!group.is_empty());

        conn.execute(
            &controller,
            &GdprQuery::UpdateMetadataByUser {
                user: user.clone(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "batch-corp".into()),
            },
        )
        .unwrap();
        let shared = index.keys_shared_with("batch-corp");
        assert_eq!(shared, group, "every group member must be reindexed");

        conn.execute(&controller, &GdprQuery::DeleteByUser(user.clone()))
            .unwrap();
        for key in &group {
            assert!(
                index.fully_absent(key),
                "{key} must leave every index structure after the group delete"
            );
        }
    }
}
