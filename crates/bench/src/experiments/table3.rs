//! Table 3: storage space overhead — the measurable face of metadata
//! explosion.
//!
//! The paper loads 10 MB of raw personal data (10-byte payloads with ~25
//! bytes of metadata attributes each) and reports total-store-size ÷
//! personal-data-size: 3.5× for both stores in default configuration,
//! rising to 5.95× once PostgreSQL indexes every metadata column.

use super::configs::ScratchDir;
use super::fig5::build_connector;
use crate::report::ExperimentTable;
use workload::gdpr::{load_corpus, stable_corpus};

/// One measured row.
#[derive(Debug, Clone)]
pub struct SpaceRow {
    pub connector: String,
    pub personal_mb: f64,
    pub total_mb: f64,
    pub factor: f64,
}

/// Load `records` personal records into each connector variant and report
/// space factors.
pub fn run(records: usize) -> (ExperimentTable, Vec<SpaceRow>) {
    let mut table = ExperimentTable::new(
        format!("Table 3 — storage space overhead ({records} records, 10 B personal data each)"),
        &["connector", "personal data", "total DB", "space factor"],
    );
    let mut rows = Vec::new();
    for db in ["redis", "postgres", "postgres-mi"] {
        let scratch = ScratchDir::new("table3");
        let handle = build_connector(db, &scratch);
        let corpus = stable_corpus(records);
        load_corpus(handle.connector.as_ref(), &corpus).expect("load");
        let space = handle.connector.space_report();
        let personal_mb = space.personal_data_bytes as f64 / 1e6;
        let total_mb = space.total_bytes as f64 / 1e6;
        let factor = space.overhead_factor();
        table.push_row(vec![
            db.to_string(),
            format!("{personal_mb:.2} MB"),
            format!("{total_mb:.2} MB"),
            format!("{factor:.2}x"),
        ]);
        rows.push(SpaceRow {
            connector: db.to_string(),
            personal_mb,
            total_mb,
            factor,
        });
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_explosion_and_index_cost() {
        let (_, rows) = run(2000);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.factor > 1.5,
                "{}: space factor must reflect metadata explosion, got {:.2}",
                row.connector,
                row.factor
            );
        }
        let pg = rows.iter().find(|r| r.connector == "postgres").unwrap();
        let pg_mi = rows.iter().find(|r| r.connector == "postgres-mi").unwrap();
        assert!(
            pg_mi.factor > pg.factor * 1.2,
            "metadata indices must add space: {:.2} -> {:.2}",
            pg.factor,
            pg_mi.factor
        );
        assert!(
            (pg.personal_mb - pg_mi.personal_mb).abs() < 1e-6,
            "personal data is identical across variants"
        );
    }
}
