//! Negative predicates, index vs scan: the coverage gap PR 1 left open.
//!
//! `READ-DATA-BY-OBJ` (records *not* objecting to a usage, G21.3) and
//! `READ-DATA-BY-DEC` (records eligible for automated decision-making,
//! G22) match "everything except …", which a plain inverted index cannot
//! enumerate — so until the all-keys set landed, both fell through to a
//! full scan-decrypt-parse of the keyspace. With the full-coverage index
//! they resolve as set differences (`all_keys − objecting`, and the
//! directly maintained decision-eligibility set) and fetch only the
//! matches.
//!
//! The speedup is governed by selectivity, so the experiment measures two
//! regimes on identical corpora:
//!
//! * **selective** — most records opted out (high objection / opt-out
//!   rate), so the complement is small: the index fetches a handful of
//!   records where the scan still parses everything. This is the headline
//!   O(n) → O(matches) win, mirroring the controller workflows the paper
//!   describes (auditing the few records still usable after a mass
//!   objection campaign).
//! * **broad** — few records opted out, so the complement is nearly the
//!   whole corpus. Matches ≈ n bounds the possible gain; the honest lower
//!   bound is reported alongside the headline, exactly as the PR-1
//!   metaindex experiment does for broad purposes.

use crate::report::ExperimentTable;
use gdpr_core::record::Metadata;
use gdpr_core::{GdprConnector, GdprQuery, PersonalRecord, Session};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::datagen;
use workload::gdpr::stable_corpus;

/// The usage probed by READ-DATA-BY-OBJ in this experiment.
pub const PROBE_USAGE: &str = "profiling";

/// Mean per-query latency of both paths for one query/selectivity pair.
#[derive(Debug, Clone)]
pub struct NegpredPoint {
    pub query: &'static str,
    /// Percentage of records objecting / opted out.
    pub optout_pct: usize,
    pub scan: Duration,
    pub indexed: Duration,
}

impl NegpredPoint {
    /// How many times faster the indexed path is.
    pub fn speedup(&self) -> f64 {
        self.scan.as_secs_f64() / self.indexed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Build scan and indexed connectors over an identical corpus in which
/// `optout_pct`% of records object to [`PROBE_USAGE`] *and* carry the G22
/// decision opt-out marker (deterministic per record index).
pub fn build_pair(
    records: usize,
    optout_pct: usize,
) -> (
    Arc<connectors::RedisConnector>,
    Arc<connectors::RedisConnector>,
) {
    let config = stable_corpus(records);
    let corpus: Vec<PersonalRecord> = (0..records)
        .map(|i| {
            let mut record = datagen::record_of(i, &config);
            if i % 100 < optout_pct {
                record.metadata.objections.push(PROBE_USAGE.to_string());
                record
                    .metadata
                    .decisions
                    .push(Metadata::DEC_OPT_OUT.to_string());
            }
            record
        })
        .collect();
    let scan = Arc::new(connectors::RedisConnector::new(
        kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open kvstore"),
    ));
    let indexed = Arc::new(
        connectors::RedisConnector::with_metadata_index(
            kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open kvstore"),
        )
        .expect("attach index"),
    );
    let controller = Session::controller();
    for record in &corpus {
        for conn in [scan.as_ref(), indexed.as_ref()] {
            conn.execute(&controller, &GdprQuery::CreateRecord(record.clone()))
                .expect("load corpus");
        }
    }
    (scan, indexed)
}

fn mean_latency(
    conn: &dyn GdprConnector,
    session: &Session,
    query: &GdprQuery,
    samples: usize,
) -> Duration {
    conn.execute(session, query).expect("warmup");
    let start = Instant::now();
    for _ in 0..samples {
        conn.execute(session, query).expect("query");
    }
    start.elapsed() / samples.max(1) as u32
}

/// Measure both negative predicates on both connector variants at the
/// selective and broad opt-out regimes.
pub fn run(records: usize, samples: usize) -> (ExperimentTable, Vec<NegpredPoint>) {
    let mut table = ExperimentTable::new(
        format!("Negative predicates: index vs full scan ({records} records)"),
        &[
            "query",
            "opted out",
            "matches",
            "scan",
            "indexed",
            "speedup",
        ],
    );
    let mut points = Vec::new();
    // 95%: the selective regime (complement = 5% of the corpus);
    // 5%: the broad regime (complement = 95%), the honest lower bound.
    for optout_pct in [95usize, 5] {
        let (scan_conn, index_conn) = build_pair(records, optout_pct);
        let session = Session::processor("audit");
        for (name, query) in [
            (
                "read-data-by-obj",
                GdprQuery::ReadDataNotObjecting(PROBE_USAGE.to_string()),
            ),
            ("read-data-by-dec", GdprQuery::ReadDataDecisionEligible),
        ] {
            let matches = index_conn
                .execute(&session, &query)
                .expect("probe")
                .cardinality();
            let scan = mean_latency(scan_conn.as_ref(), &session, &query, samples);
            let indexed = mean_latency(index_conn.as_ref(), &session, &query, samples);
            let point = NegpredPoint {
                query: name,
                optout_pct,
                scan,
                indexed,
            };
            table.push_row(vec![
                name.to_string(),
                format!("{optout_pct}%"),
                matches.to_string(),
                format!("{scan:.2?}"),
                format!("{indexed:.2?}"),
                format!("{:.1}x", point.speedup()),
            ]);
            points.push(point);
        }
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar at test scale: on the selective regime the
    /// index-resolved negative predicates must beat the full scan by ≥10×
    /// (the scan parses every record per query; the index fetches the 5%
    /// complement). On the broad regime matches ≈ n bounds the gain — the
    /// index must merely not lose badly (it does the same per-match
    /// fetches the scan does, minus the cursor walk).
    #[test]
    fn selective_negative_predicates_beat_scans_by_an_order_of_magnitude() {
        let _gate = crate::timing_gate();
        let (_, points) = run(20_000, 5);
        for point in points {
            let required = if point.optout_pct >= 50 { 10.0 } else { 0.5 };
            assert!(
                point.speedup() >= required,
                "{} at {}% opted out: expected ≥{required}x, got {:.1}x (scan {:?}, indexed {:?})",
                point.query,
                point.optout_pct,
                point.speedup(),
                point.scan,
                point.indexed
            );
        }
    }

    /// Both paths return identical result sets for both negative
    /// predicates, at both selectivity regimes.
    #[test]
    fn both_paths_agree_on_negative_predicates() {
        for optout_pct in [95usize, 5] {
            let (scan_conn, index_conn) = build_pair(1_500, optout_pct);
            let session = Session::processor("audit");
            for query in [
                GdprQuery::ReadDataNotObjecting(PROBE_USAGE.to_string()),
                GdprQuery::ReadDataDecisionEligible,
            ] {
                let mut scan = scan_conn
                    .execute(&session, &query)
                    .unwrap()
                    .as_data()
                    .unwrap()
                    .to_vec();
                let mut indexed = index_conn
                    .execute(&session, &query)
                    .unwrap()
                    .as_data()
                    .unwrap()
                    .to_vec();
                scan.sort();
                indexed.sort();
                assert_eq!(scan, indexed, "divergence on {query:?} at {optout_pct}%");
                assert!(!scan.is_empty(), "complement must be non-empty");
                // The indexed engine really takes the index path.
                assert!(index_conn
                    .metadata_index()
                    .unwrap()
                    .keys_for(&gdpr_core::RecordPredicate::NotObjecting(
                        PROBE_USAGE.to_string()
                    ))
                    .is_some());
            }
        }
    }
}
