//! Experiment implementations, one module per paper table/figure.

pub mod configs;
pub mod fig3a;
pub mod fig3b;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod metaindex;
pub mod negpred;
pub mod recovery;
pub mod remote;
pub mod sharding;
pub mod table1;
pub mod table3;
pub mod writebatch;
