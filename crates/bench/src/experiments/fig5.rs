//! Figure 5: GDPRbench workload completion times on the compliant stores.
//!
//! The paper loads 100 K personal records and runs 10 K operations for each
//! of the four workloads against compliant Redis (5a), compliant PostgreSQL
//! (5b), and PostgreSQL with metadata indices (5c). Expected shape: the
//! processor workload is fastest (key-heavy), the controller slowest;
//! PostgreSQL beats Redis by about an order of magnitude; metadata indices
//! improve every workload further.

use super::configs::{
    compliant_postgres, compliant_postgres_mi, compliant_redis, compliant_redis_mi, ScratchDir,
};
use crate::report::{fmt_duration, ExperimentTable};
use gdpr_core::GdprConnector;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use workload::gdpr::{load_corpus, stable_corpus, GdprWorkloadKind};
use workload::run_gdpr_workload;

/// Completion times per workload for one connector.
pub type Series = HashMap<&'static str, Duration>;

/// A connector plus the background machinery keeping it compliant (the
/// PostgreSQL TTL daemon must live as long as the connector).
pub struct ConnectorHandle {
    pub connector: Arc<dyn GdprConnector>,
    daemon: Option<relstore::ttl::TtlDaemon>,
}

impl Drop for ConnectorHandle {
    fn drop(&mut self) {
        if let Some(daemon) = &mut self.daemon {
            daemon.stop();
        }
    }
}

/// Build the named compliant connector. The returned scratch dir must stay
/// alive for the connector's lifetime (it holds the AOF/WAL files).
pub fn build_connector(db: &str, scratch: &ScratchDir) -> ConnectorHandle {
    match db {
        "redis" => ConnectorHandle {
            connector: compliant_redis(scratch) as Arc<dyn GdprConnector>,
            daemon: None,
        },
        "redis-mi" => ConnectorHandle {
            connector: compliant_redis_mi(scratch) as Arc<dyn GdprConnector>,
            daemon: None,
        },
        "postgres" => {
            let pg = compliant_postgres(scratch);
            let mut daemon = pg.ttl_daemon();
            daemon.start();
            ConnectorHandle {
                connector: pg as Arc<dyn GdprConnector>,
                daemon: Some(daemon),
            }
        }
        "postgres-mi" => {
            let pg = compliant_postgres_mi(scratch);
            let mut daemon = pg.ttl_daemon();
            daemon.start();
            ConnectorHandle {
                connector: pg as Arc<dyn GdprConnector>,
                daemon: Some(daemon),
            }
        }
        other => panic!("unknown db {other}"),
    }
}

/// Run the four workloads against one connector variant.
pub fn run_one(db: &str, records: usize, ops: u64, threads: usize) -> (ExperimentTable, Series) {
    let mut series = Series::new();
    let mut table = ExperimentTable::new(
        format!(
            "Figure 5 — GDPRbench completion time ({db}, {records} records, {ops} ops/workload)"
        ),
        &["workload", "completion", "ops/s", "errors"],
    );
    for kind in GdprWorkloadKind::ALL {
        // Fresh store per workload, as the paper does per run.
        let scratch = ScratchDir::new("fig5");
        let handle = build_connector(db, &scratch);
        let corpus = stable_corpus(records);
        load_corpus(handle.connector.as_ref(), &corpus).expect("load corpus");
        let report = run_gdpr_workload(
            Arc::clone(&handle.connector),
            kind,
            corpus,
            ops,
            threads,
            false,
        );
        table.push_row(vec![
            kind.name().to_string(),
            fmt_duration(report.completion),
            crate::report::fmt_ops(report.throughput_ops_per_sec()),
            report.errors.to_string(),
        ]);
        series.insert(kind.name(), report.completion);
    }
    (table, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline Figure 5 shape at toy scale: per-op, the processor
    /// workload (80% key lookups) is far cheaper than the controller
    /// workload (all metadata-conditioned scans) on Redis, and the
    /// metadata-indexed PostgreSQL beats compliant Redis on the
    /// controller-style workloads.
    #[test]
    fn processor_fastest_controller_slowest_on_redis() {
        let (_, series) = run_one("redis", 800, 160, 2);
        let controller = series["controller"];
        let processor = series["processor"];
        assert!(
            controller > processor,
            "controller {controller:?} should exceed processor {processor:?}"
        );
    }

    /// The metadata-index retrofit on the key-value store: the
    /// controller workload is almost entirely metadata-conditioned
    /// queries, so the indexed variant must beat the full-scan baseline.
    #[test]
    fn redis_mi_beats_scan_redis_on_controller_workload() {
        let (_, scan) = run_one("redis", 800, 160, 2);
        let (_, indexed) = run_one("redis-mi", 800, 160, 2);
        assert!(
            indexed["controller"] < scan["controller"],
            "redis-mi {:?} should beat redis {:?}",
            indexed["controller"],
            scan["controller"]
        );
    }

    #[test]
    fn postgres_mi_beats_redis_on_customer_workload() {
        let (_, redis) = run_one("redis", 800, 160, 2);
        let (_, pg_mi) = run_one("postgres-mi", 800, 160, 2);
        assert!(
            pg_mi["customer"] < redis["customer"],
            "postgres-mi {:?} should beat redis {:?}",
            pg_mi["customer"],
            redis["customer"]
        );
    }
}
