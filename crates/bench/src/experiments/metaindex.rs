//! Index-on vs index-off on the key-value backend: the paper's Figure 5
//! trade-off, isolated to single queries.
//!
//! The scan-based Redis connector answers READ-DATA-BY-USR and
//! READ-DATA-BY-PUR by walking the whole `rec:*` keyspace and parsing every
//! record — O(n) per query. With the engine's metadata index attached the
//! same queries resolve by inverted lookup plus per-match fetches —
//! O(matches). This module measures both paths on identical corpora so the
//! speedup is a number, not a claim; the `metaindex` criterion bench runs
//! the same comparison at 100 K records.

use crate::report::ExperimentTable;
use gdpr_core::{GdprConnector, GdprQuery, Session};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::datagen;
use workload::gdpr::{load_corpus, stable_corpus};

/// Mean per-query latency of both paths for one query class.
#[derive(Debug, Clone)]
pub struct IndexedVsScan {
    pub query: &'static str,
    pub scan: Duration,
    pub indexed: Duration,
}

impl IndexedVsScan {
    /// How many times faster the indexed path is.
    pub fn speedup(&self) -> f64 {
        self.scan.as_secs_f64() / self.indexed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Build the two connectors over identical corpora. Plain store config
/// (no encryption/logging) so the measurement isolates scan-vs-index.
pub fn build_pair(
    records: usize,
) -> (
    Arc<connectors::RedisConnector>,
    Arc<connectors::RedisConnector>,
) {
    let corpus = stable_corpus(records);
    let scan = Arc::new(connectors::RedisConnector::new(
        kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open kvstore"),
    ));
    load_corpus(scan.as_ref(), &corpus).expect("load scan corpus");
    let indexed = Arc::new(
        connectors::RedisConnector::with_metadata_index(
            kvstore::KvStore::open(kvstore::KvConfig::default()).expect("open kvstore"),
        )
        .expect("attach index"),
    );
    load_corpus(indexed.as_ref(), &corpus).expect("load indexed corpus");
    (scan, indexed)
}

/// The same pair over the disk-native pagestore backend: the scan path
/// walks B-tree leaves, unseals and parses every record per query
/// (through a buffer pool it may well overflow); the indexed path is the
/// same inverted lookup as on the kvstore. Both over one scratch
/// directory each, default pool (256 pages).
pub fn build_disk_pair(
    records: usize,
) -> (
    Arc<connectors::DiskConnector>,
    Arc<connectors::DiskConnector>,
) {
    use pagestore::{PageStore, PageStoreConfig};
    let open = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "gdpr-metaindex-{tag}-{}-{records}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        PageStore::open(&dir, PageStoreConfig::default(), clock::wall()).expect("open pagestore")
    };
    let corpus = stable_corpus(records);
    let scan = Arc::new(connectors::DiskConnector::new(open("scan")));
    load_corpus(scan.as_ref(), &corpus).expect("load scan corpus");
    let indexed = Arc::new(
        connectors::DiskConnector::with_metadata_index(open("indexed")).expect("attach index"),
    );
    load_corpus(indexed.as_ref(), &corpus).expect("load indexed corpus");
    (scan, indexed)
}

fn mean_latency(
    conn: &dyn GdprConnector,
    session: &Session,
    query: &GdprQuery,
    samples: usize,
) -> Duration {
    // One warm-up execution keeps first-touch costs out of the mean.
    conn.execute(session, query).expect("warmup");
    let start = Instant::now();
    for _ in 0..samples {
        conn.execute(session, query).expect("query");
    }
    start.elapsed() / samples.max(1) as u32
}

/// Measure the two metadata query classes of the acceptance comparison on
/// both connector variants.
pub fn run(records: usize, samples: usize) -> (ExperimentTable, Vec<IndexedVsScan>) {
    let (scan_conn, index_conn) = build_pair(records);
    measure(
        scan_conn.as_ref(),
        index_conn.as_ref(),
        records,
        samples,
        "Redis",
    )
}

/// The same comparison on the disk-native pagestore backend.
pub fn run_disk(records: usize, samples: usize) -> (ExperimentTable, Vec<IndexedVsScan>) {
    let (scan_conn, index_conn) = build_disk_pair(records);
    measure(
        scan_conn.as_ref(),
        index_conn.as_ref(),
        records,
        samples,
        "disk",
    )
}

fn measure(
    scan_conn: &dyn GdprConnector,
    index_conn: &dyn GdprConnector,
    records: usize,
    samples: usize,
    backend: &str,
) -> (ExperimentTable, Vec<IndexedVsScan>) {
    let corpus = stable_corpus(records);
    let probe = datagen::record_of(records / 2, &corpus);
    let user = probe.metadata.user.clone();
    // Two purpose probes with opposite selectivity: a *cohort* purpose
    // matches COHORT_SIZE records (the bounded-purpose shape the corpus
    // models for G5.1b group operations), while a *vocabulary* purpose like
    // "ads" matches a large constant fraction of the corpus. The index
    // turns O(n) into O(matches), so the first is the headline speedup and
    // the second its honest lower bound (matches ≈ n/4 caps the gain).
    let cohort_purpose = datagen::cohort_purpose_of(records / 2);
    let broad_purpose = probe
        .metadata
        .purposes
        .iter()
        .find(|p| !p.starts_with("cohort-"))
        .expect("records declare at least one vocabulary purpose")
        .clone();

    let cases: Vec<(&'static str, Session, GdprQuery)> = vec![
        (
            "read-data-by-usr",
            Session::customer(user.clone()),
            GdprQuery::ReadDataByUser(user),
        ),
        (
            "read-data-by-pur (cohort)",
            Session::processor(cohort_purpose.clone()),
            GdprQuery::ReadDataByPurpose(cohort_purpose),
        ),
        (
            "read-data-by-pur (broad)",
            Session::processor(broad_purpose.clone()),
            GdprQuery::ReadDataByPurpose(broad_purpose),
        ),
    ];

    let mut table = ExperimentTable::new(
        format!("Metadata index vs full scan on the {backend} backend ({records} records)"),
        &["query", "scan", "indexed", "speedup"],
    );
    let mut points = Vec::new();
    for (name, session, query) in cases {
        let scan = mean_latency(scan_conn, &session, &query, samples);
        let indexed = mean_latency(index_conn, &session, &query, samples);
        let point = IndexedVsScan {
            query: name,
            scan,
            indexed,
        };
        table.push_row(vec![
            name.to_string(),
            format!("{scan:.2?}"),
            format!("{indexed:.2?}"),
            format!("{:.1}x", point.speedup()),
        ]);
        points.push(point);
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar, at a scale small enough for the test suite: on
    /// selective predicates (a user's records, a bounded purpose) the
    /// indexed path must beat the full-scan path by ≥10×; on the broad
    /// vocabulary purpose — where matches ≈ n/4 bound the possible gain —
    /// it must still win outright. (At the criterion bench's 100 K records
    /// the selective gaps are far larger; 20 K already clears 10× with a
    /// wide margin because the scan parses every record per query.)
    #[test]
    fn indexed_reads_beat_scans_by_an_order_of_magnitude() {
        let _gate = crate::timing_gate();
        let (_, points) = run(20_000, 5);
        for point in points {
            let required = if point.query.contains("broad") {
                1.0
            } else {
                10.0
            };
            assert!(
                point.speedup() >= required,
                "{}: expected ≥{required}x, got {:.1}x (scan {:?}, indexed {:?})",
                point.query,
                point.speedup(),
                point.scan,
                point.indexed
            );
        }
    }

    /// The disk backend clears the same bar on its selective predicates:
    /// the scan path pays a full leaf walk with per-record unseal+parse
    /// per query, the indexed path only the inverted lookup plus
    /// O(matches) point fetches. The broad vocabulary purpose is the
    /// honest selectivity crossover: matches ≈ n/4 random descents
    /// through the buffer pool run neck-and-neck with one sequential
    /// leaf walk (~0.7–1.0×; a planner would pick the scan here), so the
    /// bound only pins that the indexed path isn't pathological, not
    /// that it wins. Smaller corpus than the kvstore test — the scan
    /// rounds are real page I/O.
    #[test]
    fn disk_indexed_reads_beat_scans() {
        let _gate = crate::timing_gate();
        let (_, points) = run_disk(8_000, 3);
        for point in points {
            let required = if point.query.contains("broad") {
                0.25
            } else {
                10.0
            };
            assert!(
                point.speedup() >= required,
                "{}: expected ≥{required}x, got {:.1}x (scan {:?}, indexed {:?})",
                point.query,
                point.speedup(),
                point.scan,
                point.indexed
            );
        }
    }

    /// Scan and indexed paths agree record-for-record on the disk
    /// backend too.
    #[test]
    fn disk_paths_agree_on_the_corpus() {
        let records = 2_000;
        let (scan_conn, index_conn) = build_disk_pair(records);
        let corpus = stable_corpus(records);
        let probe = datagen::record_of(17, &corpus);
        let user = probe.metadata.user.clone();
        let purpose = probe.metadata.purposes[0].clone();
        for (session, query) in [
            (
                Session::customer(user.clone()),
                GdprQuery::ReadDataByUser(user),
            ),
            (
                Session::processor(purpose.clone()),
                GdprQuery::ReadDataByPurpose(purpose),
            ),
        ] {
            let mut scan = scan_conn
                .execute(&session, &query)
                .unwrap()
                .as_data()
                .unwrap()
                .to_vec();
            let mut indexed = index_conn
                .execute(&session, &query)
                .unwrap()
                .as_data()
                .unwrap()
                .to_vec();
            scan.sort();
            indexed.sort();
            assert_eq!(scan, indexed, "divergence on {query:?}");
            assert!(!scan.is_empty(), "probe query should match something");
        }
    }

    /// Both paths return identical result sets on the benchmark corpus.
    #[test]
    fn both_paths_agree_on_the_corpus() {
        let records = 2_000;
        let (scan_conn, index_conn) = build_pair(records);
        let corpus = stable_corpus(records);
        let probe = datagen::record_of(17, &corpus);
        let user = probe.metadata.user.clone();
        let purpose = probe.metadata.purposes[0].clone();
        for (session, query) in [
            (
                Session::customer(user.clone()),
                GdprQuery::ReadDataByUser(user),
            ),
            (
                Session::processor(purpose.clone()),
                GdprQuery::ReadDataByPurpose(purpose),
            ),
        ] {
            let mut scan = scan_conn
                .execute(&session, &query)
                .unwrap()
                .as_data()
                .unwrap()
                .to_vec();
            let mut indexed = index_conn
                .execute(&session, &query)
                .unwrap()
                .as_data()
                .unwrap()
                .to_vec();
            scan.sort();
            indexed.sort();
            assert_eq!(scan, indexed, "divergence on {query:?}");
            assert!(!scan.is_empty(), "probe query should match something");
        }
    }
}
