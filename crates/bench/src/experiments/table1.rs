//! Table 1: the GDPR article → database attribute/action map, plus a live
//! compliance assessment of both connectors against it.

use super::configs::{compliant_postgres_mi, compliant_redis, ScratchDir};
use crate::report::ExperimentTable;
use gdpr_core::articles::{articles_satisfied_by, ARTICLE_MAP};
use gdpr_core::GdprConnector;

/// Render the article map (the paper's Table 1).
pub fn article_map_table() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Table 1 — GDPR articles mapped to database attributes and actions",
        &["article", "clause", "attributes", "actions"],
    );
    for req in ARTICLE_MAP {
        let mut attrs: Vec<&str> = req.attributes.iter().map(|a| a.name()).collect();
        if req.involves_ttl {
            attrs.push("TTL");
        }
        let actions: Vec<String> = req
            .actions
            .iter()
            .map(|a| a.feature().name().to_string())
            .collect();
        table.push_row(vec![
            format!("G{}", req.article),
            req.clause.to_string(),
            if attrs.is_empty() {
                "—".into()
            } else {
                attrs.join(", ")
            },
            actions.join(", "),
        ]);
    }
    table
}

/// Assess the compliant connectors against the article map.
pub fn compliance_table() -> ExperimentTable {
    let scratch = ScratchDir::new("table1");
    let redis = compliant_redis(&scratch);
    redis.store().stop_expiration_driver();
    let pg = compliant_postgres_mi(&scratch);

    let mut table = ExperimentTable::new(
        "Compliance coverage (articles satisfied out of Table 1's 12 rows)",
        &["connector", "satisfied", "gaps"],
    );
    for (name, report) in [
        ("redis (compliant)", redis.features()),
        ("postgres-mi (compliant)", pg.features()),
    ] {
        let satisfied = articles_satisfied_by(&report);
        let gaps: Vec<String> = report.gaps().iter().map(|g| g.name().to_string()).collect();
        table.push_row(vec![
            name.to_string(),
            format!("{}/12", satisfied.len()),
            if gaps.is_empty() {
                "none".into()
            } else {
                gaps.join(", ")
            },
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn article_table_has_twelve_rows() {
        let t = article_map_table();
        assert_eq!(t.rows.len(), 12);
        assert_eq!(t.cell(0, "article"), Some("G5"));
        assert!(t.cell(1, "actions").unwrap().contains("timely-deletion"));
    }

    #[test]
    fn compliant_connectors_cover_all_articles() {
        let t = compliance_table();
        for row in 0..t.rows.len() {
            assert_eq!(t.cell(row, "satisfied"), Some("12/12"), "row {row}: {t:?}");
        }
    }
}
