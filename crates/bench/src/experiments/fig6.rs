//! Figure 6: representative throughput of YCSB versus GDPRbench on the same
//! compliant stores, identical hardware and configuration.
//!
//! The paper's log-scale bar chart shows both stores sustaining ~10 K ops/s
//! on YCSB while GDPR workloads run 2–4 orders of magnitude slower. Here
//! "representative" means: YCSB workload A throughput, versus the mean
//! GDPRbench throughput across the four entity workloads.

use super::configs::ScratchDir;
use super::fig5::build_connector;
use crate::report::{fmt_ops, ExperimentTable};
use std::sync::Arc;
use workload::gdpr::{load_corpus, stable_corpus, GdprWorkloadKind};
use workload::ycsb::{ycsb_key, KvInterface, KvStoreYcsb, RelStoreYcsb, YcsbConfig};
use workload::{datagen, run_gdpr_workload, run_ycsb_workload};

/// Measured (label, ops/sec) bars.
pub type Bars = Vec<(String, f64)>;

/// YCSB-A throughput on a store carrying the same compliant configuration
/// (combined features) the GDPR connector uses.
fn ycsb_throughput(db: &str, records: u64, ops: u64, threads: usize) -> f64 {
    let scratch = ScratchDir::new("fig6");
    match db {
        "redis" => {
            let store = kvstore::KvStore::open(super::configs::kv_config(
                super::configs::Feature::Combined,
                &scratch,
            ))
            .expect("open");
            let adapter = KvStoreYcsb::new(Arc::clone(&store));
            for i in 0..records {
                adapter
                    .insert(&ycsb_key(i), &datagen::ycsb_value(i, 1000))
                    .expect("load");
            }
            store.start_expiration_driver();
            let report = run_ycsb_workload(
                Arc::new(adapter),
                YcsbConfig::workload('A'),
                records,
                ops,
                threads,
            );
            store.stop_expiration_driver();
            report.throughput_ops_per_sec()
        }
        _ => {
            let db_arc = relstore::Database::open(super::configs::rel_config(
                super::configs::Feature::Combined,
                &scratch,
            ))
            .expect("open");
            let adapter = RelStoreYcsb::new(Arc::clone(&db_arc)).expect("usertable");
            for i in 0..records {
                adapter
                    .insert(&ycsb_key(i), &datagen::ycsb_value(i, 1000))
                    .expect("load");
            }
            let report = run_ycsb_workload(
                Arc::new(adapter),
                YcsbConfig::workload('A'),
                records,
                ops,
                threads,
            );
            report.throughput_ops_per_sec()
        }
    }
}

/// Mean GDPRbench throughput across the four workloads on a compliant store.
fn gdpr_throughput(db: &str, records: usize, ops: u64, threads: usize) -> f64 {
    let mut total = 0.0;
    for kind in GdprWorkloadKind::ALL {
        let scratch = ScratchDir::new("fig6");
        let handle = build_connector(db, &scratch);
        let corpus = stable_corpus(records);
        load_corpus(handle.connector.as_ref(), &corpus).expect("load");
        let report = run_gdpr_workload(
            Arc::clone(&handle.connector),
            kind,
            corpus,
            ops,
            threads,
            false,
        );
        total += report.throughput_ops_per_sec();
    }
    total / GdprWorkloadKind::ALL.len() as f64
}

/// Run the comparison for both stores.
pub fn run(records: usize, ops: u64, threads: usize) -> (ExperimentTable, Bars) {
    let mut bars = Bars::new();
    let mut table = ExperimentTable::new(
        "Figure 6 — YCSB vs GDPRbench throughput on compliant stores (log-scale in the paper)",
        &["series", "ops/s"],
    );
    for (label, value) in [
        (
            "YCSB on Redis",
            ycsb_throughput("redis", records as u64, ops, threads),
        ),
        (
            "GDPRbench on Redis",
            gdpr_throughput("redis", records, ops, threads),
        ),
        (
            // Beyond the paper: the engine's metadata index narrows (but
            // does not close) the YCSB-vs-GDPR gap on the key-value store.
            "GDPRbench on Redis+MI",
            gdpr_throughput("redis-mi", records, ops, threads),
        ),
        (
            "YCSB on PostgreSQL",
            ycsb_throughput("postgres", records as u64, ops, threads),
        ),
        (
            "GDPRbench on PostgreSQL",
            gdpr_throughput("postgres", records, ops, threads),
        ),
    ] {
        table.push_row(vec![label.to_string(), fmt_ops(value)]);
        bars.push((label.to_string(), value));
    }
    (table, bars)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 6 gap: GDPR workloads run orders of magnitude slower than
    /// YCSB on the same compliant store. At toy scale we require ≥5×.
    #[test]
    fn gdpr_throughput_is_far_below_ycsb() {
        let ycsb = ycsb_throughput("redis", 500, 2000, 2);
        let gdpr = gdpr_throughput("redis", 500, 100, 2);
        assert!(ycsb > 0.0 && gdpr > 0.0);
        assert!(
            ycsb > gdpr * 5.0,
            "expected a wide gap: ycsb={ycsb:.0} gdpr={gdpr:.0}"
        );
    }
}
