//! In-process vs loopback-TCP throughput: the cost of the network layer.
//!
//! The paper drives *networked* servers (its Redis/PostgreSQL numbers
//! include the socket), while most of this reproduction's experiments call
//! the engine in-process. This experiment quantifies the gap: the same
//! point-op workload (90% READ-DATA-BY-KEY / 10% UPDATE-DATA-BY-KEY, same
//! key distribution, same engine) is measured three ways —
//!
//! 1. **in-process** — client threads call the sharded engine directly;
//! 2. **loopback / request-per-roundtrip** — each thread owns one
//!    `GdprClient` over 127.0.0.1 TCP and pays a full round trip per op;
//! 3. **loopback / pipelined** — same connections, but ops are burst in
//!    batches so the wire carries many requests per round trip.
//!
//! at 1, 4, and 16 client connections. The `remote_throughput` binary
//! prints the ladder; results are recorded in the README's performance
//! table.

use crate::report::{fmt_ops, ExperimentTable};
use connectors::{GdprClient, ShardedRedisConnector};
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::telemetry::{self, AtomicHistogram, HistogramSnapshot};
use gdpr_core::{EngineHandle, GdprConnector, GdprQuery, Session};
use gdpr_server::{GdprServer, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-connection counts the ladder measures.
pub const DEFAULT_CLIENTS: [usize; 3] = [1, 4, 16];

/// Pipelined batch size for the batched mode.
pub const PIPELINE_DEPTH: usize = 32;

const READ_FRACTION: f64 = 0.9;

fn point_record(i: usize) -> PersonalRecord {
    PersonalRecord::new(
        format!("k{i:07}"),
        format!("payload-{i:07}"),
        Metadata::new(
            format!("user-{:04}", i % 1024),
            vec!["ads".to_string()],
            Duration::from_secs(3600),
        ),
    )
}

/// Build the engine under test, preloaded with `records` point-op targets.
pub fn build_engine(shards: usize, records: usize) -> EngineHandle {
    let conn = Arc::new(ShardedRedisConnector::open(shards).expect("open sharded"));
    let controller = Session::controller();
    for i in 0..records {
        conn.execute(&controller, &GdprQuery::CreateRecord(point_record(i)))
            .expect("load");
    }
    conn
}

fn next_op(rng: &mut SmallRng, records: usize) -> (Session, GdprQuery) {
    let i = rng.gen_range(0usize..records.max(1));
    let key = format!("k{i:07}");
    if rng.gen_bool(READ_FRACTION) {
        (Session::processor("ads"), GdprQuery::ReadDataByKey(key))
    } else {
        (
            Session::controller(),
            GdprQuery::UpdateDataByKey {
                key,
                data: format!("rewrite-{i:07}"),
            },
        )
    }
}

/// Per-thread op quotas summing exactly to `ops`.
fn quotas(ops: u64, threads: usize) -> Vec<u64> {
    let threads = threads.max(1);
    let base = ops / threads as u64;
    let extra = ops % threads as u64;
    (0..threads as u64)
        .map(|t| base + u64::from(t < extra))
        .collect()
}

/// In-process baseline: `clients` threads calling the engine directly.
pub fn run_in_process(engine: &EngineHandle, records: usize, ops: u64, clients: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, quota) in quotas(ops, clients).into_iter().enumerate() {
            let engine = Arc::clone(engine);
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ t as u64);
                for _ in 0..quota {
                    let (session, query) = next_op(&mut rng, records);
                    engine.execute(&session, &query).expect("in-process op");
                }
            });
        }
    });
    start.elapsed()
}

/// Loopback TCP: one `GdprClient` per thread against `addr`, one round
/// trip per op (`pipeline_depth` = 1) or batched (`pipeline_depth` > 1).
/// The transport follows `GDPR_ENCRYPT` (like the server's default
/// config); [`run_remote_with`] pins it explicitly.
pub fn run_remote(
    addr: &str,
    records: usize,
    ops: u64,
    clients: usize,
    pipeline_depth: usize,
) -> Duration {
    let key = gdpr_server::secure::encrypt_key_from_env();
    run_remote_with(addr, records, ops, clients, pipeline_depth, key.as_deref())
}

/// [`run_remote`] with the transport pinned: `encrypt` carries the
/// pre-shared key for the SecureChannel handshake, `None` is plaintext.
pub fn run_remote_with(
    addr: &str,
    records: usize,
    ops: u64,
    clients: usize,
    pipeline_depth: usize,
    encrypt: Option<&str>,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (t, quota) in quotas(ops, clients).into_iter().enumerate() {
            let addr = addr.to_string();
            scope.spawn(move || {
                let client = GdprClient::connect_with(&addr, encrypt).expect("connect");
                let mut rng = SmallRng::seed_from_u64(0x5EED ^ t as u64);
                let mut left = quota;
                while left > 0 {
                    if pipeline_depth <= 1 {
                        let (session, query) = next_op(&mut rng, records);
                        client.execute(&session, &query).expect("remote op");
                        left -= 1;
                    } else {
                        let batch: Vec<_> = (0..pipeline_depth.min(left as usize))
                            .map(|_| next_op(&mut rng, records))
                            .collect();
                        left -= batch.len() as u64;
                        for result in client.pipeline(&batch).expect("pipeline") {
                            result.expect("remote op");
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// Measured `(mode, clients, ops/s)` rows.
pub type RemoteSeries = Vec<(&'static str, usize, f64)>;

/// The full comparison ladder. One engine instance serves all modes, so
/// in-process and loopback numbers face identical store state.
pub fn run_remote_comparison(
    client_counts: &[usize],
    shards: usize,
    records: usize,
    ops: u64,
) -> (ExperimentTable, RemoteSeries) {
    let mut table = ExperimentTable::new(
        format!(
            "In-process vs loopback TCP — point-op workload ({records} records, {ops} ops, \
             {shards} shards, pipeline depth {PIPELINE_DEPTH})"
        ),
        &["mode", "clients", "completion", "ops/s", "vs in-process"],
    );
    let mut series = RemoteSeries::new();
    let engine = build_engine(shards, records);
    let server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr().to_string();

    for &clients in client_counts {
        // Warm up allocator and connections outside the timed window.
        run_in_process(&engine, records, (ops / 10).max(1), clients);
        let in_process = run_in_process(&engine, records, ops, clients);
        let in_process_tp = ops as f64 / in_process.as_secs_f64().max(1e-9);

        run_remote(&addr, records, (ops / 10).max(1), clients, 1);
        let roundtrip = run_remote(&addr, records, ops, clients, 1);
        let roundtrip_tp = ops as f64 / roundtrip.as_secs_f64().max(1e-9);

        let pipelined = run_remote(&addr, records, ops, clients, PIPELINE_DEPTH);
        let pipelined_tp = ops as f64 / pipelined.as_secs_f64().max(1e-9);

        for (mode, completion, throughput) in [
            ("in-process", in_process, in_process_tp),
            ("tcp/roundtrip", roundtrip, roundtrip_tp),
            ("tcp/pipelined", pipelined, pipelined_tp),
        ] {
            table.push_row(vec![
                mode.to_string(),
                clients.to_string(),
                crate::report::fmt_duration(completion),
                fmt_ops(throughput),
                format!("{:.0}%", 100.0 * throughput / in_process_tp.max(1e-9)),
            ]);
            series.push((mode, clients, throughput));
        }
    }
    server.shutdown();
    (table, series)
}

/// Pipeline depths the sweep measures (depth 1 = one round trip per op).
pub const DEPTH_SWEEP: [usize; 4] = [1, 16, 64, 256];

/// Measured `(pipeline_depth, ops/s)` rows.
pub type DepthSeries = Vec<(usize, f64)>;

/// Pipeline-depth sweep: the same loopback workload at a fixed client
/// count while the number of requests in flight per connection grows.
/// Depth 1 pays a full round trip per op; deeper windows let the server's
/// event loop drain whole bursts into engine-side batches, so the curve
/// shows how much of the wire gap batching recovers — and where it
/// saturates.
pub fn run_depth_sweep(
    shards: usize,
    records: usize,
    ops: u64,
    clients: usize,
) -> (ExperimentTable, DepthSeries) {
    let mut table = ExperimentTable::new(
        format!(
            "Pipeline-depth sweep — loopback TCP point-op workload ({records} records, \
             {ops} ops, {shards} shards, {clients} clients)"
        ),
        &["depth", "completion", "ops/s", "vs depth 1"],
    );
    let mut series = DepthSeries::new();
    let engine = build_engine(shards, records);
    let server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr().to_string();

    let mut baseline: Option<f64> = None;
    for &depth in &DEPTH_SWEEP {
        run_remote(&addr, records, (ops / 10).max(1), clients, depth);
        let completion = run_remote(&addr, records, ops, clients, depth);
        let throughput = ops as f64 / completion.as_secs_f64().max(1e-9);
        let base = *baseline.get_or_insert(throughput);
        table.push_row(vec![
            depth.to_string(),
            crate::report::fmt_duration(completion),
            fmt_ops(throughput),
            format!("{:.1}x", throughput / base.max(1e-9)),
        ]);
        series.push((depth, throughput));
    }
    server.shutdown();
    (table, series)
}

/// Idle-connection ladder for the connection-scaling experiment. The top
/// rung matches the 10k-connection CI smoke (`conn_scale --conns 10000`).
pub const IDLE_LADDER: [usize; 4] = [0, 512, 2048, 10_000];

/// Measured `(idle_connections, ops/s)` rows.
pub type ConnSeries = Vec<(usize, f64)>;

/// Connection-count scaling: the pipelined workload while the server also
/// holds a growing population of idle connections. A readiness-driven
/// loop should charge idle sockets nothing (no thread, no wakeups), so
/// active throughput should barely move; every idle connection is
/// ping-probed after the timed window to prove it survived the load.
pub fn run_connection_scaling(
    shards: usize,
    records: usize,
    ops: u64,
    clients: usize,
    idle_ladder: &[usize],
) -> (ExperimentTable, ConnSeries) {
    let mut table = ExperimentTable::new(
        format!(
            "Connection scaling — {clients} active pipelined clients (depth {PIPELINE_DEPTH}) \
             vs idle-connection count ({records} records, {ops} ops, {shards} shards)"
        ),
        &["idle conns", "completion", "ops/s", "vs 0 idle"],
    );
    let mut series = ConnSeries::new();
    // Client and server share this process, so every idle connection
    // costs two descriptors; raise the soft limit before the big rungs,
    // and skip (loudly) any rung the hard limit cannot fit — the
    // separate-process `conn_scale` smoke covers those populations with
    // one descriptor per side.
    let peak = idle_ladder.iter().copied().max().unwrap_or(0);
    let budget = match gdpr_server::sys::raise_nofile_limit((peak as u64 * 2 + 1024).max(4096)) {
        Ok(limit) => (limit.saturating_sub(512) / 2) as usize,
        Err(e) => {
            eprintln!("connection scaling: could not raise fd limit: {e}");
            usize::MAX
        }
    };
    let engine = build_engine(shards, records);
    let server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr().to_string();

    let mut baseline: Option<f64> = None;
    for &idle in idle_ladder {
        if idle > budget {
            eprintln!(
                "connection scaling: skipping the {idle}-idle rung — the fd limit fits \
                 ~{budget} in-process connections (run `conn_scale --conns {idle}` against \
                 a separate gdpr-serve process instead)"
            );
            continue;
        }
        let idle_conns: Vec<GdprClient> = (0..idle)
            .map(|_| GdprClient::connect(&addr).expect("idle connect"))
            .collect();
        // One echo each: every idle socket is fully registered with the
        // event loop before the timed window opens.
        for conn in &idle_conns {
            conn.ping(b"idle").expect("idle ping");
        }
        run_remote(&addr, records, (ops / 10).max(1), clients, PIPELINE_DEPTH);
        let completion = run_remote(&addr, records, ops, clients, PIPELINE_DEPTH);
        let throughput = ops as f64 / completion.as_secs_f64().max(1e-9);
        // Liveness: the idle population must have survived the load.
        for conn in &idle_conns {
            let echo = conn.ping(b"still-here").expect("idle conn died under load");
            assert_eq!(echo, b"still-here");
        }
        let base = *baseline.get_or_insert(throughput);
        table.push_row(vec![
            idle.to_string(),
            crate::report::fmt_duration(completion),
            fmt_ops(throughput),
            crate::report::fmt_pct(throughput, base),
        ]);
        series.push((idle, throughput));
    }
    server.shutdown();
    (table, series)
}

/// Measured `(transport, clients, ops/s)` rows.
pub type EncSeries = Vec<(&'static str, usize, f64)>;

/// Plaintext vs encrypted loopback TCP: the pipelined point-op workload
/// against two servers over the *same* engine, one plaintext and one
/// requiring the SecureChannel handshake. The delta is the end-to-end
/// cost of the record layer (seal + open + 16 bytes per frame) at each
/// client count.
pub fn run_encryption_ladder(
    client_counts: &[usize],
    shards: usize,
    records: usize,
    ops: u64,
) -> (ExperimentTable, EncSeries) {
    let mut table = ExperimentTable::new(
        format!(
            "Plaintext vs encrypted TCP — pipelined point-op workload ({records} records, \
             {ops} ops, {shards} shards, pipeline depth {PIPELINE_DEPTH})"
        ),
        &[
            "transport",
            "clients",
            "completion",
            "ops/s",
            "vs plaintext",
        ],
    );
    let mut series = EncSeries::new();
    let engine = build_engine(shards, records);
    let plain_config = ServerConfig {
        encrypt: None,
        ..Default::default()
    };
    let enc_config = ServerConfig {
        encrypt: Some(gdpr_server::secure::DEFAULT_PSK.to_string()),
        ..Default::default()
    };
    let plain_server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", plain_config)
        .expect("bind plaintext server");
    let enc_server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", enc_config)
        .expect("bind encrypted server");
    let plain_addr = plain_server.local_addr().to_string();
    let enc_addr = enc_server.local_addr().to_string();
    let key = Some(gdpr_server::secure::DEFAULT_PSK);

    for &clients in client_counts {
        run_remote_with(
            &plain_addr,
            records,
            (ops / 10).max(1),
            clients,
            PIPELINE_DEPTH,
            None,
        );
        let plain = run_remote_with(&plain_addr, records, ops, clients, PIPELINE_DEPTH, None);
        let plain_tp = ops as f64 / plain.as_secs_f64().max(1e-9);

        run_remote_with(
            &enc_addr,
            records,
            (ops / 10).max(1),
            clients,
            PIPELINE_DEPTH,
            key,
        );
        let encrypted = run_remote_with(&enc_addr, records, ops, clients, PIPELINE_DEPTH, key);
        let encrypted_tp = ops as f64 / encrypted.as_secs_f64().max(1e-9);

        for (transport, completion, throughput) in [
            ("tcp/plaintext", plain, plain_tp),
            ("tcp/encrypted", encrypted, encrypted_tp),
        ] {
            table.push_row(vec![
                transport.to_string(),
                clients.to_string(),
                crate::report::fmt_duration(completion),
                fmt_ops(throughput),
                format!("{:.0}%", 100.0 * throughput / plain_tp.max(1e-9)),
            ]);
            series.push((transport, clients, throughput));
        }
    }
    plain_server.shutdown();
    enc_server.shutdown();
    (table, series)
}

/// Measured `(metric, value)` rows of the latency profile.
pub type LatencySeries = Vec<(String, f64)>;

/// Open-loop latency drive against a running server: send slots are due
/// on a fixed schedule derived from `rate` (ops/sec) and latency is
/// measured from each slot's *intended* send time, so percentiles include
/// any backlog the server builds — no coordinated omission. In roundtrip
/// mode (depth ≤ 1) a slot is one op; in pipelined mode a slot is one
/// depth-sized burst whose ops all share the burst's completion latency.
fn open_loop_remote(
    addr: &str,
    records: usize,
    ops: u64,
    clients: usize,
    depth: usize,
    rate: f64,
    encrypt: Option<&str>,
) -> HistogramSnapshot {
    let clients = clients.max(1);
    let depth = depth.max(1);
    let slots = ops.div_ceil(depth as u64);
    let slot_interval = Duration::from_secs_f64(depth as f64 / rate.max(1.0));
    let start = Instant::now();
    let mut merged = HistogramSnapshot::default();
    let snapshots: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let addr = addr.to_string();
                scope.spawn(move || {
                    let client = GdprClient::connect_with(&addr, encrypt).expect("connect");
                    let mut rng = SmallRng::seed_from_u64(0x1A7E ^ t as u64);
                    let latency = AtomicHistogram::new();
                    let mut slot = t as u64;
                    while slot < slots {
                        let intended = start + slot_interval.mul_f64(slot as f64);
                        let now = Instant::now();
                        if now < intended {
                            std::thread::sleep(intended - now);
                        }
                        if depth <= 1 {
                            let (session, query) = next_op(&mut rng, records);
                            client.execute(&session, &query).expect("open-loop op");
                            latency.record(intended.elapsed());
                        } else {
                            let batch: Vec<_> =
                                (0..depth).map(|_| next_op(&mut rng, records)).collect();
                            for result in client.pipeline(&batch).expect("pipeline") {
                                result.expect("open-loop op");
                            }
                            let elapsed = intended.elapsed();
                            for _ in 0..depth {
                                latency.record(elapsed);
                            }
                        }
                        slot += clients as u64;
                    }
                    latency.snapshot()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop sender panicked"))
            .collect()
    });
    for snap in &snapshots {
        merged.merge(snap);
    }
    merged
}

/// Latency profile: open-loop p50/p99/p999 for roundtrip and pipelined
/// modes over plaintext and encrypted transports. Each configuration
/// first calibrates with a short closed-loop run, then offers a fixed
/// arrival schedule at ~60% of the calibrated throughput — fast enough to
/// be interesting, slow enough that a healthy server keeps up and the
/// tail reflects jitter, not saturation collapse.
pub fn run_latency_profile(
    shards: usize,
    records: usize,
    ops: u64,
    clients: usize,
) -> (ExperimentTable, LatencySeries) {
    let mut table = ExperimentTable::new(
        format!(
            "Open-loop latency — point-op workload ({records} records, {ops} ops/config, \
             {shards} shards, {clients} clients, rate = 60% of calibrated throughput)"
        ),
        &["transport", "mode", "offered/s", "p50", "p99", "p999"],
    );
    let mut series = LatencySeries::new();
    for (transport, key) in [
        ("plain", None),
        ("encrypted", Some(gdpr_server::secure::DEFAULT_PSK)),
    ] {
        let engine = build_engine(shards, records);
        let config = ServerConfig {
            encrypt: key.map(str::to_string),
            ..Default::default()
        };
        let server =
            GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", config).expect("bind server");
        let addr = server.local_addr().to_string();
        for (mode, depth) in [("roundtrip", 1usize), ("pipelined", PIPELINE_DEPTH)] {
            let calib_ops = (ops / 4).max(1);
            let calib = run_remote_with(&addr, records, calib_ops, clients, depth, key);
            let sustainable = calib_ops as f64 / calib.as_secs_f64().max(1e-9);
            let rate = (sustainable * 0.6).max(1.0);
            let snap = open_loop_remote(&addr, records, ops, clients, depth, rate, key);
            let (p50, p99, p999) = (snap.p50_ns(), snap.p99_ns(), snap.p999_ns());
            table.push_row(vec![
                format!("tcp/{transport}"),
                mode.to_string(),
                fmt_ops(rate),
                crate::report::fmt_duration(Duration::from_nanos(p50)),
                crate::report::fmt_duration(Duration::from_nanos(p99)),
                crate::report::fmt_duration(Duration::from_nanos(p999)),
            ]);
            series.push((format!("{mode}_{transport}_rate_ops_per_sec"), rate));
            series.push((format!("{mode}_{transport}_p50_us"), p50 as f64 / 1e3));
            series.push((format!("{mode}_{transport}_p99_us"), p99 as f64 / 1e3));
            series.push((format!("{mode}_{transport}_p999_us"), p999 as f64 / 1e3));
        }
        server.shutdown();
    }
    (table, series)
}

/// Instrumentation overhead: the pipelined loopback ladder with telemetry
/// recording on vs off (same engine, same server, interleaved runs).
/// Returns `(ops_per_sec_on, ops_per_sec_off, overhead_pct)` where the
/// overhead is how much throughput recording costs — the ISSUE budget is
/// < 2%.
pub fn run_instrumentation_overhead(
    shards: usize,
    records: usize,
    ops: u64,
    clients: usize,
) -> (f64, f64, f64) {
    let engine = build_engine(shards, records);
    let server = GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default())
        .expect("bind server");
    let addr = server.local_addr().to_string();
    // Warm up, then alternate off/on twice and keep the best of each —
    // interleaving cancels drift (thermal, cache, scheduler) that a
    // one-shot A/B would mistake for overhead.
    run_remote(&addr, records, (ops / 10).max(1), clients, PIPELINE_DEPTH);
    let mut best_on = 0f64;
    let mut best_off = 0f64;
    for _ in 0..2 {
        telemetry::set_recording(false);
        let off = run_remote(&addr, records, ops, clients, PIPELINE_DEPTH);
        telemetry::set_recording(true);
        let on = run_remote(&addr, records, ops, clients, PIPELINE_DEPTH);
        best_off = best_off.max(ops as f64 / off.as_secs_f64().max(1e-9));
        best_on = best_on.max(ops as f64 / on.as_secs_f64().max(1e-9));
    }
    server.shutdown();
    let overhead_pct = 100.0 * (best_off - best_on) / best_off.max(1e-9);
    (best_on, best_off, overhead_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ladder runs end to end at toy scale and reports every mode at
    /// every client count. Deliberately tiny — the bench lib's tests run
    /// concurrently on few cores, so this checks plumbing, not speedups;
    /// the release-mode `remote_throughput` binary measures those (see the
    /// README's table).
    #[test]
    fn comparison_ladder_runs_every_mode() {
        let _gate = crate::timing_gate();
        let (table, series) = run_remote_comparison(&[1, 2], 2, 120, 400);
        assert_eq!(table.rows.len(), 6);
        assert_eq!(series.len(), 6);
        for (mode, clients, throughput) in &series {
            assert!(
                *throughput > 0.0,
                "mode {mode} at {clients} clients reported no throughput"
            );
        }
    }

    /// The depth sweep reports a row per depth; throughput is always
    /// positive. Speedups are a release-mode question (the README's
    /// table), not a debug-test one.
    #[test]
    fn depth_sweep_covers_every_depth() {
        let _gate = crate::timing_gate();
        let (table, series) = run_depth_sweep(2, 120, 400, 2);
        assert_eq!(table.rows.len(), DEPTH_SWEEP.len());
        assert_eq!(series.len(), DEPTH_SWEEP.len());
        for ((depth, throughput), expected) in series.iter().zip(DEPTH_SWEEP) {
            assert_eq!(*depth, expected);
            assert!(*throughput > 0.0, "depth {depth} reported no throughput");
        }
    }

    /// Idle connections survive the active load (the ladder ping-probes
    /// every one) and the active workload still completes at every rung.
    #[test]
    fn idle_connections_survive_active_load() {
        let _gate = crate::timing_gate();
        let (table, series) = run_connection_scaling(2, 120, 400, 2, &[0, 64]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(series[0].0, 0);
        assert_eq!(series[1].0, 64);
        assert!(series.iter().all(|&(_, tp)| tp > 0.0));
    }

    /// The encryption ladder reports both transports at every client
    /// count, and the two servers really differ: the encrypted rung is
    /// driven through the SecureChannel handshake, the plaintext one
    /// without.
    #[test]
    fn encryption_ladder_runs_both_transports() {
        let _gate = crate::timing_gate();
        let (table, series) = run_encryption_ladder(&[1, 2], 2, 120, 400);
        assert_eq!(table.rows.len(), 4);
        assert_eq!(series.len(), 4);
        for (transport, clients, throughput) in &series {
            assert!(
                *throughput > 0.0,
                "transport {transport} at {clients} clients reported no throughput"
            );
        }
        assert!(series.iter().any(|(t, _, _)| *t == "tcp/encrypted"));
        assert!(series.iter().any(|(t, _, _)| *t == "tcp/plaintext"));
    }

    /// The latency profile reports all four configurations with populated,
    /// monotone percentiles.
    #[test]
    fn latency_profile_covers_all_configs() {
        let _gate = crate::timing_gate();
        let (table, series) = run_latency_profile(2, 120, 400, 2);
        assert_eq!(table.rows.len(), 4);
        for mode in ["roundtrip", "pipelined"] {
            for transport in ["plain", "encrypted"] {
                let get = |suffix: &str| {
                    series
                        .iter()
                        .find(|(name, _)| name == &format!("{mode}_{transport}_{suffix}"))
                        .map(|&(_, v)| v)
                        .unwrap_or_else(|| panic!("missing {mode}_{transport}_{suffix}"))
                };
                let (p50, p99, p999) = (get("p50_us"), get("p99_us"), get("p999_us"));
                assert!(
                    p50 > 0.0 && p50 <= p99 && p99 <= p999,
                    "{mode}/{transport}: {p50} {p99} {p999}"
                );
                assert!(get("rate_ops_per_sec") > 0.0);
            }
        }
    }

    /// The overhead A/B runs both arms and reports a finite percentage.
    /// (The <2% budget is a release-mode claim — `bench_report` measures
    /// it at full scale; this checks the plumbing and that recording is
    /// back on afterwards.)
    #[test]
    fn instrumentation_overhead_measures_both_arms() {
        let _gate = crate::timing_gate();
        let (on, off, pct) = run_instrumentation_overhead(2, 120, 400, 2);
        assert!(on > 0.0 && off > 0.0);
        assert!(pct.is_finite());
        assert!(
            telemetry::recording_enabled(),
            "overhead run must leave recording enabled"
        );
    }

    /// Remote and in-process modes drive the same engine: the record count
    /// is stable (point ops only rewrite), and every key still answers.
    #[test]
    fn modes_share_one_engine_state() {
        let engine = build_engine(2, 64);
        let server =
            GdprServer::bind(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
        run_remote(&server.local_addr().to_string(), 64, 200, 2, 8);
        assert_eq!(engine.record_count(), 64);
        server.shutdown();
    }
}
