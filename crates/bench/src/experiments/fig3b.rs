//! Figure 3b: PostgreSQL throughput versus number of secondary indices.
//!
//! The paper runs pgbench against a table and adds secondary indices one at
//! a time; two indices (on the metadata criteria of purpose and user-id)
//! already cut throughput to ~33% of baseline. This reproduction runs a
//! pgbench-style transaction mix (update-by-pk + select-by-pk) over a table
//! with `k` indexed columns, sweeping `k`, so each write pays `k` extra
//! index-maintenance operations.

use crate::report::{fmt_ops, fmt_pct, ExperimentTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use relstore::{ColumnType, Database, Datum, Predicate, RelConfig, Statement};
use std::sync::Arc;
use std::time::Instant;

/// Columns available for secondary indexing.
const INDEXABLE: [&str; 7] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6"];

/// One measured point.
#[derive(Debug, Clone)]
pub struct IndexPoint {
    pub indices: usize,
    pub tps: f64,
}

fn build_db(rows: usize, index_count: usize) -> Arc<Database> {
    let db = Database::open(RelConfig::default()).expect("open");
    let mut columns = vec![("key".to_string(), ColumnType::Int)];
    for c in INDEXABLE {
        columns.push((c.to_string(), ColumnType::Int));
    }
    columns.push(("filler".to_string(), ColumnType::Text));
    db.execute(&Statement::CreateTable {
        table: "accounts".into(),
        columns,
        pk: "key".into(),
    })
    .expect("create");
    for i in 0..rows {
        let mut row = vec![Datum::Int(i as i64)];
        for (c, _) in INDEXABLE.iter().enumerate() {
            row.push(Datum::Int((i * (c + 3)) as i64 % 1000));
        }
        row.push(Datum::Text(format!("filler-{i:06}")));
        db.execute(&Statement::Insert {
            table: "accounts".into(),
            row,
        })
        .expect("insert");
    }
    for column in INDEXABLE.iter().take(index_count) {
        db.execute(&Statement::CreateIndex {
            table: "accounts".into(),
            index: format!("{column}_idx"),
            column: column.to_string(),
            inverted: false,
        })
        .expect("index");
    }
    db
}

/// Run the pgbench-like mix: each transaction updates one row's indexed
/// columns by primary key, then reads it back. Returns transactions/second.
pub fn measure_tps(rows: usize, index_count: usize, txs: u64, threads: usize) -> f64 {
    let db = build_db(rows, index_count);
    // Warm up before the timed section: the very first configuration
    // measured in a process otherwise pays one-off costs (allocator growth,
    // cold page tables) that skew the baseline point low.
    {
        let mut rng = SmallRng::seed_from_u64(0xFEED);
        for _ in 0..(txs / 10).clamp(50, 2_000) {
            let key = rng.gen_range(0..rows) as i64;
            db.execute(&Statement::Select {
                table: "accounts".into(),
                pred: Predicate::Eq("key".into(), Datum::Int(key)),
            })
            .expect("warmup select");
        }
    }
    let per_thread = txs / threads as u64;
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0x9b + t as u64);
            for _ in 0..per_thread {
                let key = rng.gen_range(0..rows) as i64;
                let delta = rng.gen_range(0..1000);
                let assignments: Vec<(String, Datum)> = INDEXABLE
                    .iter()
                    .map(|c| (c.to_string(), Datum::Int(delta)))
                    .collect();
                db.execute(&Statement::Update {
                    table: "accounts".into(),
                    pred: Predicate::Eq("key".into(), Datum::Int(key)),
                    assignments,
                })
                .expect("update");
                db.execute(&Statement::Select {
                    table: "accounts".into(),
                    pred: Predicate::Eq("key".into(), Datum::Int(key)),
                })
                .expect("select");
            }
        }));
    }
    for h in handles {
        h.join().expect("bench thread");
    }
    txs as f64 / start.elapsed().as_secs_f64()
}

/// Sweep index counts 0..=max_indices.
pub fn run(
    rows: usize,
    txs: u64,
    threads: usize,
    max_indices: usize,
) -> (ExperimentTable, Vec<IndexPoint>) {
    let mut table = ExperimentTable::new(
        "Figure 3b — PostgreSQL throughput vs. secondary indices (pgbench-style)",
        &["indices", "tps", "vs baseline"],
    );
    let mut points = Vec::new();
    let mut baseline = 0.0;
    for k in 0..=max_indices.min(INDEXABLE.len()) {
        let tps = measure_tps(rows, k, txs, threads);
        if k == 0 {
            baseline = tps;
        }
        table.push_row(vec![k.to_string(), fmt_ops(tps), fmt_pct(tps, baseline)]);
        points.push(IndexPoint { indices: k, tps });
    }
    (table, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_declines_as_indices_are_added() {
        // Wall-clock throughput on a machine that is also running the rest
        // of the test suite is noisy, and the noise is time-correlated
        // (early measurements run while sibling tests saturate the cores).
        // Interleave the configurations across rounds and keep each
        // configuration's best round, so every k samples every time window
        // and the max estimates its uncontended rate. Pin the paper's
        // load-bearing claim — secondary indexes tax write throughput —
        // via the endpoints (0 vs 4 indices), the comparison least
        // sensitive to scheduler noise; allow one remeasure before
        // declaring failure.
        let measure_round = || {
            let mut points = vec![0.0f64; 5];
            for _round in 0..3 {
                for (k, best) in points.iter_mut().enumerate() {
                    *best = best.max(measure_tps(2000, k, 4000, 2));
                }
            }
            points
        };
        let mut points = measure_round();
        if points[4] >= points[0] * 0.9 {
            points = measure_round();
        }
        assert!(points.iter().all(|tps| *tps > 0.0));
        assert!(
            points[4] < points[0] * 0.9,
            "4 indices should cost >10% of tps: {:?}",
            points.iter().map(|p| *p as u64).collect::<Vec<_>>()
        );
    }
}
