//! Experiment output: aligned text tables, matching the rows/series the
//! paper's figures plot.

use std::fmt::Write as _;

/// A titled table of results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Cell at (row, column-name), for assertions in tests.
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// All values of one column.
    pub fn column(&self, column: &str) -> Vec<&str> {
        let Some(col) = self.columns.iter().position(|c| c == column) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(col).map(String::as_str))
            .collect()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// Format a duration for table cells: ms under a second, seconds otherwise.
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs() >= 100 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}us", d.as_micros())
    }
}

/// Format a throughput value.
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1000.0 {
        format!("{:.1}k", ops_per_sec / 1000.0)
    } else {
        format!("{ops_per_sec:.1}")
    }
}

/// Percentage of a baseline.
pub fn fmt_pct(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.0}%", value / baseline * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_rendering_aligns() {
        let mut t = ExperimentTable::new("Demo", &["workload", "tput"]);
        t.push_row(vec!["A".into(), "123.4k".into()]);
        t.push_row(vec!["longer-name".into(), "5".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("workload"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.cell(0, "tput"), Some("123.4k"));
        assert_eq!(t.column("workload"), vec!["A", "longer-name"]);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "120.0s");
        assert_eq!(fmt_ops(12_345.0), "12.3k");
        assert_eq!(fmt_ops(12.0), "12.0");
        assert_eq!(fmt_pct(50.0, 100.0), "50%");
        assert_eq!(fmt_pct(50.0, 0.0), "n/a");
    }
}
