//! Experiment output: aligned text tables, matching the rows/series the
//! paper's figures plot.

use std::fmt::Write as _;

/// A titled table of results.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Cell at (row, column-name), for assertions in tests.
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// All values of one column.
    pub fn column(&self, column: &str) -> Vec<&str> {
        let Some(col) = self.columns.iter().position(|c| c == column) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r.get(col).map(String::as_str))
            .collect()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

/// A machine-readable benchmark report: suite → metric → value, rendered
/// as JSON by hand (the workspace vendors no serde). Suites and metrics
/// keep insertion order; recording an existing metric overwrites it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    suites: Vec<(String, Vec<(String, f64)>)>,
}

impl BenchReport {
    pub fn new() -> BenchReport {
        BenchReport::default()
    }

    /// Record `suite.metric = value`, creating the suite on first use.
    pub fn record(&mut self, suite: &str, metric: &str, value: f64) {
        let metrics = match self.suites.iter_mut().find(|(name, _)| name == suite) {
            Some((_, metrics)) => metrics,
            None => {
                self.suites.push((suite.to_string(), Vec::new()));
                &mut self.suites.last_mut().expect("just pushed").1
            }
        };
        match metrics.iter_mut().find(|(name, _)| name == metric) {
            Some((_, slot)) => *slot = value,
            None => metrics.push((metric.to_string(), value)),
        }
    }

    /// Look a recorded value back up, for assertions.
    pub fn get(&self, suite: &str, metric: &str) -> Option<f64> {
        let (_, metrics) = self.suites.iter().find(|(name, _)| name == suite)?;
        metrics
            .iter()
            .find(|(name, _)| name == metric)
            .map(|&(_, v)| v)
    }

    /// Render the whole report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (si, (suite, metrics)) in self.suites.iter().enumerate() {
            let _ = writeln!(out, "  {}: {{", json_string(suite));
            for (mi, (metric, value)) in metrics.iter().enumerate() {
                let comma = if mi + 1 < metrics.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "    {}: {}{comma}",
                    json_string(metric),
                    json_number(*value)
                );
            }
            let comma = if si + 1 < self.suites.len() { "," } else { "" };
            let _ = writeln!(out, "  }}{comma}");
        }
        out.push_str("}\n");
        out
    }
}

/// Quote and escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a number as a JSON literal: integers stay integral, fractions
/// keep three decimals with trailing zeros trimmed, non-finite values
/// (which JSON cannot carry) become `null`.
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.3}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Format a duration for table cells: ms under a second, seconds otherwise.
pub fn fmt_duration(d: std::time::Duration) -> String {
    if d.as_secs() >= 100 {
        format!("{:.1}s", d.as_secs_f64())
    } else if d.as_millis() >= 1000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}us", d.as_micros())
    }
}

/// Format a throughput value.
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1000.0 {
        format!("{:.1}k", ops_per_sec / 1000.0)
    } else {
        format!("{ops_per_sec:.1}")
    }
}

/// Percentage of a baseline.
pub fn fmt_pct(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.0}%", value / baseline * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_rendering_aligns() {
        let mut t = ExperimentTable::new("Demo", &["workload", "tput"]);
        t.push_row(vec!["A".into(), "123.4k".into()]);
        t.push_row(vec!["longer-name".into(), "5".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("workload"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.cell(0, "tput"), Some("123.4k"));
        assert_eq!(t.column("workload"), vec!["A", "longer-name"]);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn bench_report_renders_json() {
        let mut report = BenchReport::new();
        report.record("remote_throughput", "pipelined_c4_ops_per_sec", 51234.5678);
        report.record("remote_throughput", "roundtrip_c4_ops_per_sec", 9000.0);
        report.record("sharding", "shards_8_speedup", 3.25);
        report.record("sharding", "shards_8_speedup", 3.5); // overwrite
        assert_eq!(report.get("sharding", "shards_8_speedup"), Some(3.5));
        assert_eq!(report.get("sharding", "missing"), None);

        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"remote_throughput\": {"));
        assert!(json.contains("\"pipelined_c4_ops_per_sec\": 51234.568,"));
        assert!(json.contains("\"roundtrip_c4_ops_per_sec\": 9000\n"));
        assert!(json.contains("\"shards_8_speedup\": 3.5\n"));
        // One comma between the two suites, none after the last.
        assert!(json.contains("},\n  \"sharding\""));
    }

    #[test]
    fn json_primitives() {
        assert_eq!(json_number(12.0), "12");
        assert_eq!(json_number(0.5), "0.5");
        assert_eq!(json_number(1.0 / 3.0), "0.333");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00s");
        assert_eq!(fmt_duration(Duration::from_secs(120)), "120.0s");
        assert_eq!(fmt_ops(12_345.0), "12.3k");
        assert_eq!(fmt_ops(12.0), "12.0");
        assert_eq!(fmt_pct(50.0, 100.0), "50%");
        assert_eq!(fmt_pct(50.0, 0.0), "n/a");
    }
}
