//! Regenerates Figure 8: PostgreSQL (metadata-indexed) under scale —
//! (a) YCSB-C stays flat, (b) the customer workload grows only moderately.
use bench::experiments::fig7_8;
fn main() {
    let params = bench::cli::Params::from_env();
    if params.wants_part("a") {
        let scales = fig7_8::default_scales(params.records.max(64_000), "a");
        let (table, _) =
            fig7_8::run_part_a("postgres", &scales, params.ops.max(10_000), params.threads);
        table.print();
    }
    if params.wants_part("b") {
        let scales = fig7_8::default_scales(params.records, "b");
        let (table, _) = fig7_8::run_part_b("postgres-mi", &scales, params.ops, params.threads);
        table.print();
    }
}
