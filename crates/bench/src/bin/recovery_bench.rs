//! Restore-vs-rebuild index recovery at scale: the O(index) snapshot
//! load against the O(n) scan-decrypt-parse backfill, plus the honest
//! stale-fallback and snapshot-write rows. `--records N` scales the
//! store (the roadmap's acceptance point is 100000).

use bench::cli::Params;

fn main() {
    let params = Params::from_env();
    let (table, point) = bench::experiments::recovery::run(params.records);
    println!("{}", table.render());
    println!(
        "restore is {:.1}x faster than rebuild at {} records",
        point.speedup(),
        point.records
    );
}
