//! Restore-vs-rebuild index recovery at scale: the O(index) snapshot
//! load against the O(n) scan-decrypt-parse backfill, plus the honest
//! stale-fallback and snapshot-write rows. `--records N` scales the
//! store (the roadmap's acceptance point is 100000). The pagestore
//! table adds the store-recovery axis the kvstore doesn't have: reopen
//! through WAL-tail replay vs reopen from a checkpointed data file.

use bench::cli::Params;

fn main() {
    let params = Params::from_env();
    let (table, point) = bench::experiments::recovery::run(params.records);
    println!("{}", table.render());
    println!(
        "restore is {:.1}x faster than rebuild at {} records\n",
        point.speedup(),
        point.records
    );
    let (disk_table, disk_point) = bench::experiments::recovery::run_disk(params.records);
    println!("{}", disk_table.render());
    println!(
        "pagestore: restore is {:.1}x faster than rebuild at {} records; \
         WAL tail of {} frames replayed in {:?}",
        disk_point.speedup(),
        disk_point.records,
        disk_point.wal_frames,
        disk_point.wal_reopen
    );
}
