//! Regenerates Figure 3b: PostgreSQL throughput vs number of secondary
//! indices under a pgbench-style mix.
fn main() {
    let params = bench::cli::Params::from_env();
    let (table, _) =
        bench::experiments::fig3b::run(params.records, params.ops.max(2_000), params.threads, 7);
    table.print();
}
