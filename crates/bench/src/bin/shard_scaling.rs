//! Shard scaling: point-op throughput of the sharded Redis connector as
//! the shard count grows — the scale-out extension of the Figure 7 story.
//! `--shards N` pins a single shard count; the default runs the 1/2/4/8
//! ladder. `--records`, `--ops`, and `--threads` scale the workload.

use bench::cli::Params;
use bench::experiments::sharding::{run_point_op_scaling, DEFAULT_LADDER};

fn main() {
    let params = Params::from_env();
    let ladder: Vec<usize> = if params.shards == 0 {
        DEFAULT_LADDER.to_vec()
    } else {
        vec![params.shards]
    };
    let (table, _) = run_point_op_scaling(&ladder, params.records, params.ops, params.threads);
    println!("{}", table.render());
}
