//! Regenerates Figure 3a: Redis lazy vs strict TTL erasure delay
//! (simulated clock; `--records` caps the largest population).
fn main() {
    let mut params = bench::cli::Params::from_env();
    if params.records == bench::cli::Params::default().records {
        params.records = 128_000; // the paper's x-axis endpoint
    }
    let (table, _) = bench::experiments::fig3a::run(params.records);
    table.print();
}
