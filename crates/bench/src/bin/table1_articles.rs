//! Regenerates Table 1 of the paper plus a live compliance assessment.
fn main() {
    bench::experiments::table1::article_map_table().print();
    bench::experiments::table1::compliance_table().print();
}
