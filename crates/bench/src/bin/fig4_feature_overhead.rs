//! Regenerates Figure 4a/4b: per-feature GDPR overhead on YCSB A–F.
fn main() {
    let params = bench::cli::Params::from_env();
    for db in ["redis", "postgres"] {
        if params.wants_db(db) {
            let (table, _) = bench::experiments::fig4::run(
                db,
                params.records as u64,
                params.ops,
                params.threads,
            );
            table.print();
        }
    }
}
