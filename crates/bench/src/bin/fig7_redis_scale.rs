//! Regenerates Figure 7: Redis under scale — (a) YCSB-C stays flat,
//! (b) the GDPR customer workload grows linearly.
use bench::experiments::fig7_8;
fn main() {
    let params = bench::cli::Params::from_env();
    if params.wants_part("a") {
        let scales = fig7_8::default_scales(params.records.max(64_000), "a");
        let (table, _) =
            fig7_8::run_part_a("redis", &scales, params.ops.max(10_000), params.threads);
        table.print();
    }
    if params.wants_part("b") {
        let scales = fig7_8::default_scales(params.records, "b");
        let (table, _) = fig7_8::run_part_b("redis", &scales, params.ops, params.threads);
        table.print();
    }
}
