//! Regenerates Figure 5a/5b/5c: GDPRbench completion times on compliant
//! Redis, PostgreSQL, and PostgreSQL with metadata indices — plus the
//! engine's retrofit beyond the paper, Redis with a metadata index
//! (`redis-mi`), so the index-on/index-off trade-off is visible on both
//! stores.
fn main() {
    let params = bench::cli::Params::from_env();
    for db in ["redis", "redis-mi", "postgres", "postgres-mi"] {
        if params.wants_db(db) {
            let (table, _) =
                bench::experiments::fig5::run_one(db, params.records, params.ops, params.threads);
            table.print();
        }
    }
}
