//! CI regression gate over two `bench_report` JSON artifacts.
//!
//! ```sh
//! bench_gate BENCH_6.json BENCH_8.json [--tolerance PCT] [--gate-latency]
//! ```
//!
//! Compares every metric present in *both* files. Throughput metrics
//! (name ends in `_ops_per_sec`) are gated: the run fails (exit 1) when
//! the new value drops below the old one by more than the metric's
//! tolerance. Tolerances are per metric, calibrated to each suite's
//! measured cross-session variance on CI-class containers: the
//! pipelined/roundtrip TCP ladders and sharding suite are stable and
//! get the strict default (20%), while the single-threaded in-process
//! numbers and the idle-connection ladder swing up to ~30% between
//! sessions with identical code and get 40%. `--tolerance PCT`
//! overrides every class. All other shared metrics are printed for
//! context but never fail the gate — ratios and percentiles move with
//! machine load; the throughput floor is the contract CI enforces.
//!
//! `--gate-latency` additionally gates tail-latency metrics (name ends
//! in `_p99_us`) in the *inverted* direction: the run fails when the new
//! p99 exceeds the old by more than 40% (tails swing harder than means,
//! so the throughput tolerance classes don't apply; `--tolerance`
//! overrides this too). Opt-in because it is only meaningful for two
//! reports from the same machine class — cross-machine p99 comparisons
//! gate noise, not regressions.
//!
//! The parser is hand-rolled for the exact `BenchReport::to_json` shape
//! (object → object → number-or-null); it is not a general JSON reader.

use std::collections::BTreeMap;
use std::process::exit;

/// suite → metric → value, ordered for stable output.
type Metrics = BTreeMap<String, BTreeMap<String, f64>>;

/// Default tolerance (percent) for a gated metric, by measured
/// run-to-run variance class. `in-process_*` (single-process, CPU-bound,
/// very sensitive to host frequency/neighbors) and `idle_*` (the
/// idle-connection ladder, sensitive to accept/epoll timing) have shown
/// ~30% cross-session swings with identical code; the TCP throughput
/// ladders and the sharding suite stay well inside 20%.
fn default_tolerance(metric: &str) -> f64 {
    if metric.starts_with("in-process") || metric.starts_with("idle_") {
        40.0
    } else {
        20.0
    }
}

/// Tolerance (percent) for a `--gate-latency`-gated p99 metric: tails
/// swing harder than throughput means even on one machine.
const LATENCY_TOLERANCE_PCT: f64 = 40.0;

fn main() {
    let mut tolerance_override: Option<f64> = None;
    let mut gate_latency = false;
    let mut paths = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--tolerance" {
            let value = argv.next().and_then(|v| v.parse::<f64>().ok());
            match value {
                Some(pct) if (0.0..100.0).contains(&pct) => tolerance_override = Some(pct),
                _ => die("--tolerance requires a percentage in [0, 100)"),
            }
        } else if flag == "--gate-latency" {
            gate_latency = true;
        } else if flag == "--help" || flag == "-h" {
            println!("usage: bench_gate OLD.json NEW.json [--tolerance PCT] [--gate-latency]");
            return;
        } else {
            paths.push(flag);
        }
    }
    if paths.len() != 2 {
        die("usage: bench_gate OLD.json NEW.json [--tolerance PCT] [--gate-latency]");
    }
    let old = load(&paths[0]);
    let new = load(&paths[1]);

    let mut compared = 0usize;
    let mut regressions = Vec::new();
    println!(
        "{:<22} {:<36} {:>14} {:>14} {:>8}",
        "suite", "metric", "old", "new", "delta"
    );
    for (suite, old_metrics) in &old {
        let Some(new_metrics) = new.get(suite) else {
            continue;
        };
        for (metric, &old_value) in old_metrics {
            let Some(&new_value) = new_metrics.get(metric) else {
                continue;
            };
            compared += 1;
            let delta_pct = if old_value.abs() > f64::EPSILON {
                100.0 * (new_value - old_value) / old_value
            } else {
                0.0
            };
            let throughput_gated = metric.ends_with("_ops_per_sec");
            let latency_gated = gate_latency && metric.ends_with("_p99_us");
            let tolerance_pct = tolerance_override.unwrap_or_else(|| {
                if latency_gated {
                    LATENCY_TOLERANCE_PCT
                } else {
                    default_tolerance(metric)
                }
            });
            // Throughput regresses downward; latency regresses upward.
            let regressed = (throughput_gated
                && new_value < old_value * (1.0 - tolerance_pct / 100.0))
                || (latency_gated && new_value > old_value * (1.0 + tolerance_pct / 100.0));
            println!(
                "{:<22} {:<36} {:>14.3} {:>14.3} {:>+7.1}%{}",
                suite,
                metric,
                old_value,
                new_value,
                delta_pct,
                if regressed { "  REGRESSION" } else { "" }
            );
            if regressed {
                regressions.push(format!(
                    "{suite}/{metric}: {old_value:.1} -> {new_value:.1} (tolerance {tolerance_pct}%)"
                ));
            }
        }
    }
    if compared == 0 {
        die("no shared metrics between the two reports");
    }
    if regressions.is_empty() {
        println!(
            "\nbench_gate: OK — {compared} shared metrics, no gated metric beyond tolerance{}",
            if gate_latency {
                " (throughput + p99 latency)"
            } else {
                ""
            }
        );
    } else {
        eprintln!(
            "\nbench_gate: FAIL — {} gated metric(s) regressed beyond tolerance:",
            regressions.len()
        );
        for line in &regressions {
            eprintln!("  {line}");
        }
        exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    exit(2)
}

fn load(path: &str) -> Metrics {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    match parse_report(&text) {
        Ok(metrics) => metrics,
        Err(e) => die(&format!("{path}: {e}")),
    }
}

/// Parse the two-level suite → metric → number object. `null` values
/// (non-finite numbers in the writer) are skipped rather than rejected.
fn parse_report(text: &str) -> Result<Metrics, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut out = Metrics::new();
    p.expect(b'{')?;
    if !p.peek_is(b'}') {
        loop {
            let suite = p.string()?;
            p.expect(b':')?;
            let mut metrics = BTreeMap::new();
            p.expect(b'{')?;
            if !p.peek_is(b'}') {
                loop {
                    let metric = p.string()?;
                    p.expect(b':')?;
                    if let Some(value) = p.number_or_null()? {
                        metrics.insert(metric, value);
                    }
                    if !p.comma_or(b'}')? {
                        break;
                    }
                }
            }
            p.expect(b'}')?;
            out.insert(suite, metrics);
            if !p.comma_or(b'}')? {
                break;
            }
        }
    }
    p.expect(b'}')?;
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, want: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&want)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(&b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {:?}",
                want as char, self.pos, other
            )),
        }
    }

    /// After a value: consume ',' (returning true) or stop before `end`.
    fn comma_or(&mut self, end: u8) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == end => Ok(false),
            other => Err(format!(
                "expected ',' or '{}' at byte {}, found {:?}",
                end as char, self.pos, other
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                self.pos += 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                return Err("escape sequences are not supported".into());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number_or_null(&mut self) -> Result<Option<f64>, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Some)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}
