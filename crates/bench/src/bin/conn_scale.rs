//! Connection-scale smoke against a *running* `gdpr-serve`: open a large
//! population of idle connections, drive a pipelined workload through a
//! handful of active clients, then ping-probe every idle connection to
//! prove the server kept them all alive under load. Exits non-zero on
//! any failure — CI runs it against the release server with 1000
//! connections.
//!
//! ```sh
//! gdpr-serve --db redis-sharded --addr 127.0.0.1:7878 &
//! conn_scale --addr 127.0.0.1:7878 --conns 1000 --active 8 --ops 20000
//! ```

use connectors::GdprClient;
use gdpr_core::record::{Metadata, PersonalRecord};
use gdpr_core::{GdprQuery, Session};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

const USAGE: &str = "\
conn_scale — connection-scale smoke against a running gdpr-serve

USAGE:
  conn_scale [--addr HOST:PORT] [--conns N] [--active N] [--ops N] [--records N]
             [--encrypt] [--encrypt-key KEY]

Defaults: --addr 127.0.0.1:7878, --conns 1000 idle connections, --active 8
pipelined clients, --ops 20000, --records 2000 preloaded keys (prefix cs,
disjoint from other workloads on the same server). --encrypt (or
GDPR_ENCRYPT=1) runs every connection over the SecureChannel transport —
the key must match the server's. The process raises its own fd soft limit
toward 2*conns+1024 before connecting.";

const PIPELINE_DEPTH: usize = 32;

struct Args {
    addr: String,
    conns: usize,
    active: usize,
    ops: u64,
    records: usize,
    encrypt: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        conns: 1000,
        active: 8,
        ops: 20_000,
        records: 2_000,
        encrypt: gdpr_server::secure::encrypt_key_from_env(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut take = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("--{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = take("addr")?,
            "--conns" => {
                args.conns = take("conns")?
                    .parse()
                    .map_err(|e| format!("--conns: {e}"))?
            }
            "--active" => {
                args.active = take("active")?
                    .parse()
                    .map_err(|e| format!("--active: {e}"))?;
            }
            "--ops" => args.ops = take("ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--records" => {
                args.records = take("records")?
                    .parse()
                    .map_err(|e| format!("--records: {e}"))?;
            }
            "--encrypt" => {
                args.encrypt
                    .get_or_insert_with(|| gdpr_server::secure::DEFAULT_PSK.to_string());
            }
            "--encrypt-key" => args.encrypt = Some(take("encrypt-key")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if args.active == 0 || args.records == 0 {
        return Err("--active and --records must be > 0".into());
    }
    Ok(args)
}

fn smoke_record(i: usize) -> PersonalRecord {
    PersonalRecord::new(
        format!("cs{i:07}"),
        format!("smoke-payload-{i:07}"),
        Metadata::new(
            format!("smoke-user-{:04}", i % 256),
            vec!["ads".to_string()],
            Duration::from_secs(3600),
        ),
    )
}

fn next_op(rng: &mut SmallRng, records: usize) -> (Session, GdprQuery) {
    let i = rng.gen_range(0usize..records);
    let key = format!("cs{i:07}");
    if rng.gen_bool(0.9) {
        (Session::processor("ads"), GdprQuery::ReadDataByKey(key))
    } else {
        (
            Session::controller(),
            GdprQuery::UpdateDataByKey {
                key,
                data: format!("smoke-rewrite-{i:07}"),
            },
        )
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // The client side needs one fd per connection too; raise the soft
    // limit before opening a 10k population (the server raises its own).
    let fd_target = (args.conns as u64 * 2 + 1024).max(4096);
    match gdpr_server::sys::raise_nofile_limit(fd_target) {
        Ok(limit) if limit < args.conns as u64 + 64 => {
            eprintln!(
                "conn_scale: fd soft limit {limit} is below --conns {}; connects may fail",
                args.conns
            );
        }
        Ok(_) => {}
        Err(e) => eprintln!("conn_scale: could not raise fd limit: {e}"),
    }
    let encrypt = args.encrypt.as_deref();
    println!(
        "conn_scale: transport {}",
        if encrypt.is_some() {
            "encrypted (SecureChannel)"
        } else {
            "plaintext"
        }
    );

    // 1. Open the idle population. One echo each so every socket is fully
    // accepted and registered with the server's event loop before the
    // load starts.
    let connect_start = Instant::now();
    let idle: Vec<GdprClient> = (0..args.conns)
        .map(|i| {
            let conn = GdprClient::connect_with(&args.addr, encrypt)
                .unwrap_or_else(|e| panic!("idle connect #{i} to {}: {e}", args.addr));
            conn.ping(b"idle")
                .unwrap_or_else(|e| panic!("idle ping #{i}: {e}"));
            conn
        })
        .collect();
    println!(
        "conn_scale: {} idle connections established in {:.2}s",
        idle.len(),
        connect_start.elapsed().as_secs_f64()
    );

    // 2. Preload the smoke keyspace (prefix cs — disjoint from anything
    // else driving the same server) through one pipelined client.
    let loader = GdprClient::connect_with(&args.addr, encrypt).expect("loader connect");
    let controller = Session::controller();
    for chunk_start in (0..args.records).step_by(PIPELINE_DEPTH) {
        let batch: Vec<_> = (chunk_start..(chunk_start + PIPELINE_DEPTH).min(args.records))
            .map(|i| (controller.clone(), GdprQuery::CreateRecord(smoke_record(i))))
            .collect();
        for result in loader.pipeline(&batch).expect("preload pipeline") {
            result.expect("preload create");
        }
    }
    println!("conn_scale: preloaded {} records", args.records);

    // 3. Pipelined active load while the idle population sits registered.
    let ops = args.ops;
    let active = args.active;
    let records = args.records;
    let load_start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..active {
            let addr = args.addr.clone();
            let encrypt_key = args.encrypt.clone();
            let quota = ops / active as u64 + u64::from((t as u64) < ops % active as u64);
            scope.spawn(move || {
                let client = GdprClient::connect_with(&addr, encrypt_key.as_deref())
                    .expect("active connect");
                let mut rng = SmallRng::seed_from_u64(0xC0A7 ^ t as u64);
                let mut left = quota;
                while left > 0 {
                    let batch: Vec<_> = (0..PIPELINE_DEPTH.min(left as usize))
                        .map(|_| next_op(&mut rng, records))
                        .collect();
                    left -= batch.len() as u64;
                    for result in client.pipeline(&batch).expect("active pipeline") {
                        result.expect("active op");
                    }
                }
            });
        }
    });
    let elapsed = load_start.elapsed();
    println!(
        "conn_scale: {} ops through {} active clients in {:.2}s ({:.0} ops/s)",
        ops,
        active,
        elapsed.as_secs_f64(),
        ops as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    // 4. Every idle connection must have survived the load.
    for (i, conn) in idle.iter().enumerate() {
        let echo = conn
            .ping(b"still-here")
            .unwrap_or_else(|e| panic!("idle connection #{i} died under load: {e}"));
        assert_eq!(echo, b"still-here", "idle connection #{i} echoed garbage");
    }
    let stats = loader.conn_stats().expect("conn stats");
    println!(
        "conn_scale: all {} idle connections alive after load; server accepted {} connections, \
         served {} requests total",
        idle.len(),
        stats.server_connections,
        stats.server_requests
    );
}
