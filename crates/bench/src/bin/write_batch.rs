//! Batched vs per-record metadata-index maintenance, plus end-to-end
//! group-write latencies on the indexed engine. `--records N` scales the
//! stream, `--ops N` sets the measurement rounds.

use bench::cli::Params;

fn main() {
    let params = Params::from_env();
    let rounds = (params.ops as usize).clamp(1, 100);
    let (table, points) = bench::experiments::writebatch::run(params.records, rounds);
    println!("{}", table.render());
    for point in points {
        println!(
            "{}: one batched apply is {:.2}x cheaper than per-record maintenance",
            point.workload,
            point.speedup()
        );
    }
}
