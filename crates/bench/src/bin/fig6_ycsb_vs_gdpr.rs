//! Regenerates Figure 6: YCSB vs GDPRbench throughput on compliant stores.
fn main() {
    let params = bench::cli::Params::from_env();
    let (table, _) = bench::experiments::fig6::run(params.records, params.ops, params.threads);
    table.print();
}
