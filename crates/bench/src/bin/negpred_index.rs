//! Negative predicates (READ-DATA-BY-OBJ / READ-DATA-BY-DEC), index vs
//! full scan, at the selective (95% opted out) and broad (5%) regimes.
//! `--records N` scales the corpus, `--ops N` sets the samples per point.

use bench::cli::Params;

fn main() {
    let params = Params::from_env();
    let samples = (params.ops as usize).clamp(1, 1_000);
    let (table, points) = bench::experiments::negpred::run(params.records, samples);
    println!("{}", table.render());
    for point in points {
        println!(
            "{} ({}% opted out): indexed is {:.1}x faster than the full scan",
            point.query,
            point.optout_pct,
            point.speedup()
        );
    }
}
