//! In-process vs loopback-TCP throughput of the same sharded engine —
//! what the `gdpr-server` network layer costs, and what pipelining buys
//! back. `--threads N` pins a single client count; the default runs the
//! 1/4/16 ladder. `--records`, `--ops`, and `--shards` scale the workload
//! (shards 0 = 4).

use bench::cli::Params;
use bench::experiments::remote::{run_remote_comparison, DEFAULT_CLIENTS};

fn main() {
    let params = Params::from_env();
    let clients: Vec<usize> = if params.threads == Params::default().threads {
        DEFAULT_CLIENTS.to_vec()
    } else {
        vec![params.threads]
    };
    let shards = if params.shards == 0 { 4 } else { params.shards };
    let (table, _) = run_remote_comparison(&clients, shards, params.records, params.ops);
    println!("{}", table.render());
}
