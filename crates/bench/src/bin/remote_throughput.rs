//! In-process vs loopback-TCP throughput of the same sharded engine —
//! what the `gdpr-server` network layer costs, and what pipelining buys
//! back. Prints three ladders: the mode comparison (in-process vs
//! roundtrip vs pipelined TCP), the pipeline-depth sweep, and the
//! idle-connection scaling run. `--threads N` pins a single client count
//! for the comparison ladder (default runs 1/4/16) and sets the client
//! count for the sweep and scaling runs. `--records`, `--ops`, and
//! `--shards` scale the workload (shards 0 = 4).

use bench::cli::Params;
use bench::experiments::remote::{
    run_connection_scaling, run_depth_sweep, run_remote_comparison, DEFAULT_CLIENTS, IDLE_LADDER,
};

fn main() {
    let params = Params::from_env();
    let clients: Vec<usize> = if params.threads == Params::default().threads {
        DEFAULT_CLIENTS.to_vec()
    } else {
        vec![params.threads]
    };
    let shards = if params.shards == 0 { 4 } else { params.shards };
    let (table, _) = run_remote_comparison(&clients, shards, params.records, params.ops);
    println!("{}", table.render());

    let (depth_table, _) = run_depth_sweep(shards, params.records, params.ops, params.threads);
    println!("{}", depth_table.render());

    let (conn_table, _) = run_connection_scaling(
        shards,
        params.records,
        params.ops,
        params.threads,
        &IDLE_LADDER,
    );
    println!("{}", conn_table.render());
}
