//! Machine-readable benchmark report: runs the `remote_throughput`,
//! encrypted-transport, `shard_scaling`, and open-loop `latency` suites in
//! one process and writes a suite → metric → value JSON file (default
//! `BENCH_8.json`) alongside the usual text tables.
//!
//! ```sh
//! bench_report --records 20000 --ops 60000 --out BENCH_8.json
//! ```
//!
//! Accepts the common experiment flags (`--records`, `--ops`,
//! `--threads`, `--shards`; shards 0 = 4) plus `--out PATH`. The depth
//! sweep and connection-scaling runs use `--threads` clients; the mode
//! comparison runs the 1/4/16 client ladder unless `--threads` pins one.

use bench::cli::Params;
use bench::experiments::remote::{
    run_connection_scaling, run_depth_sweep, run_encryption_ladder, run_instrumentation_overhead,
    run_latency_profile, run_remote_comparison, DEFAULT_CLIENTS, DEPTH_SWEEP, IDLE_LADDER,
};
use bench::experiments::sharding::{run_point_op_scaling, DEFAULT_LADDER};
use bench::report::BenchReport;

fn main() {
    // Peel off `--out PATH`; everything else is the common flag set.
    let mut out_path = "BENCH_8.json".to_string();
    let mut rest = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--out" {
            match argv.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(flag);
        }
    }
    let params = match Params::parse_from(rest) {
        Ok(params) => params,
        Err(msg) => {
            eprintln!("{msg}\nplus: [--out PATH] (default BENCH_8.json)");
            std::process::exit(2);
        }
    };
    let shards = if params.shards == 0 { 4 } else { params.shards };
    let clients: Vec<usize> = if params.threads == Params::default().threads {
        DEFAULT_CLIENTS.to_vec()
    } else {
        vec![params.threads]
    };
    let mut report = BenchReport::new();
    report.record("workload", "records", params.records as f64);
    report.record("workload", "ops", params.ops as f64);
    report.record("workload", "shards", shards as f64);

    // Suite 1: in-process vs roundtrip vs pipelined TCP.
    let (table, series) = run_remote_comparison(&clients, shards, params.records, params.ops);
    println!("{}", table.render());
    for (mode, client_count, throughput) in &series {
        let metric = format!("{}_c{client_count}_ops_per_sec", mode.replace('/', "_"));
        report.record("remote_throughput", &metric, *throughput);
    }
    for &client_count in &clients {
        let find = |mode: &str| {
            series
                .iter()
                .find(|(m, c, _)| *m == mode && *c == client_count)
                .map(|&(_, _, tp)| tp)
        };
        if let (Some(roundtrip), Some(pipelined)) = (find("tcp/roundtrip"), find("tcp/pipelined")) {
            report.record(
                "remote_throughput",
                &format!("pipelined_vs_roundtrip_c{client_count}"),
                pipelined / roundtrip.max(1e-9),
            );
        }
    }

    // Suite 2: plaintext vs encrypted transport, pipelined.
    let (enc_table, enc_series) =
        run_encryption_ladder(&clients, shards, params.records, params.ops);
    println!("{}", enc_table.render());
    for (transport, client_count, throughput) in &enc_series {
        let metric = format!(
            "{}_c{client_count}_ops_per_sec",
            transport.replace('/', "_")
        );
        report.record("encrypted_transport", &metric, *throughput);
    }
    for &client_count in &clients {
        let find = |transport: &str| {
            enc_series
                .iter()
                .find(|(t, c, _)| *t == transport && *c == client_count)
                .map(|&(_, _, tp)| tp)
        };
        if let (Some(plain), Some(encrypted)) = (find("tcp/plaintext"), find("tcp/encrypted")) {
            report.record(
                "encrypted_transport",
                &format!("encrypted_vs_plaintext_c{client_count}"),
                encrypted / plain.max(1e-9),
            );
        }
    }

    // Suite 3: pipeline-depth sweep at a fixed client count.
    let (depth_table, depth_series) =
        run_depth_sweep(shards, params.records, params.ops, params.threads);
    println!("{}", depth_table.render());
    for (depth, throughput) in &depth_series {
        report.record(
            "pipeline_depth",
            &format!("depth_{depth}_ops_per_sec"),
            *throughput,
        );
    }
    if let (Some(&(_, base)), Some(&(deepest, top))) = (depth_series.first(), depth_series.last()) {
        report.record(
            "pipeline_depth",
            &format!("depth_{deepest}_vs_depth_{}", DEPTH_SWEEP[0]),
            top / base.max(1e-9),
        );
    }

    // Suite 4: active pipelined throughput vs idle-connection count.
    let (conn_table, conn_series) = run_connection_scaling(
        shards,
        params.records,
        params.ops,
        params.threads,
        &IDLE_LADDER,
    );
    println!("{}", conn_table.render());
    for (idle, throughput) in &conn_series {
        report.record(
            "connection_scaling",
            &format!("idle_{idle}_ops_per_sec"),
            *throughput,
        );
    }

    // Suite 5: shard-scaling ladder (in-process point ops).
    let (shard_table, shard_series) =
        run_point_op_scaling(&DEFAULT_LADDER, params.records, params.ops, params.threads);
    println!("{}", shard_table.render());
    for (shard_count, throughput) in &shard_series {
        report.record(
            "sharding",
            &format!("shards_{shard_count}_ops_per_sec"),
            *throughput,
        );
    }
    if let (Some(&(_, one)), Some(&(top_shards, top))) = (shard_series.first(), shard_series.last())
    {
        report.record(
            "sharding",
            &format!("shards_{top_shards}_speedup"),
            top / one.max(1e-9),
        );
    }

    // Suite 6: open-loop latency percentiles (coordinated-omission-safe)
    // for roundtrip/pipelined × plaintext/encrypted, plus the telemetry
    // instrumentation-overhead A/B on the pipelined ladder.
    let (lat_table, lat_series) = run_latency_profile(
        shards,
        params.records,
        params.ops.min(40_000),
        params.threads.max(4),
    );
    println!("{}", lat_table.render());
    for (metric, value) in &lat_series {
        report.record("latency", metric, *value);
    }
    let (tp_on, tp_off, overhead_pct) =
        run_instrumentation_overhead(shards, params.records, params.ops, params.threads.max(4));
    println!(
        "instrumentation overhead: {:.1} ops/s recording on vs {:.1} off ({overhead_pct:.2}%)\n",
        tp_on, tp_off
    );
    report.record("latency", "recording_on_ops_per_sec", tp_on);
    report.record("latency", "recording_off_ops_per_sec", tp_off);
    report.record("latency", "instrumentation_overhead_pct", overhead_pct);

    // Suite 7: the disk-native pagestore backend — both restart axes
    // (WAL-tail replay vs checkpointed reopen, snapshot restore vs scan
    // rebuild) and the indexed-vs-scan query ladder. Context metrics:
    // none are throughput floors, so the gate never fails on them, but
    // drift shows up in the report diff.
    let (disk_rec_table, disk_rec) = bench::experiments::recovery::run_disk(params.records);
    println!("{}", disk_rec_table.render());
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    report.record("pagestore", "wal_reopen_ms", ms(disk_rec.wal_reopen));
    report.record(
        "pagestore",
        "wal_frames_replayed",
        disk_rec.wal_frames as f64,
    );
    report.record(
        "pagestore",
        "checkpointed_reopen_ms",
        ms(disk_rec.checkpointed_reopen),
    );
    report.record("pagestore", "index_rebuild_ms", ms(disk_rec.rebuild));
    report.record("pagestore", "index_restore_ms", ms(disk_rec.restore));
    report.record(
        "pagestore",
        "snapshot_write_ms",
        ms(disk_rec.snapshot_write),
    );
    report.record("pagestore", "restore_speedup", disk_rec.speedup());
    let (disk_idx_table, disk_idx) =
        bench::experiments::metaindex::run_disk(params.records.min(20_000), 10);
    println!("{}", disk_idx_table.render());
    for point in &disk_idx {
        let metric = format!(
            "indexed_vs_scan_{}",
            point
                .query
                .replace("read-data-by-", "")
                .replace([' ', '(', ')'], "")
        );
        report.record("pagestore", &metric, point.speedup());
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
