//! Regenerates Table 3: storage space overhead of GDPR metadata.
fn main() {
    let params = bench::cli::Params::from_env();
    let (table, _) = bench::experiments::table3::run(params.records);
    table.print();
}
