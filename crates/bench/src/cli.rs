//! Minimal flag parsing for the experiment binaries (`--records N`,
//! `--ops N`, `--threads N`, `--db NAME`, `--part a|b`, `--shards N`).

/// Common experiment parameters with benchmark-friendly defaults.
#[derive(Debug, Clone)]
pub struct Params {
    /// Records to preload.
    pub records: usize,
    /// Operations to execute.
    pub ops: u64,
    /// Client threads.
    pub threads: usize,
    /// Database selector (`redis`, `postgres`, `postgres-mi`, `all`).
    pub db: String,
    /// Sub-figure selector (`a`, `b`, `all`).
    pub part: String,
    /// Shard count for the sharded experiments (0 = the default ladder).
    pub shards: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            records: 10_000,
            ops: 2_000,
            threads: 4,
            db: "all".to_string(),
            part: "all".to_string(),
            shards: 0,
        }
    }
}

impl Params {
    /// Parse from an iterator of arguments (exposed for tests).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Params, String> {
        let mut params = Params::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut take = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--records" => {
                    params.records = take("--records")?
                        .parse()
                        .map_err(|e| format!("--records: {e}"))?;
                }
                "--ops" => {
                    params.ops = take("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
                }
                "--threads" => {
                    params.threads = take("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--db" => params.db = take("--db")?,
                "--part" => params.part = take("--part")?,
                "--shards" => {
                    params.shards = take("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--records N] [--ops N] [--threads N] [--db redis|postgres|postgres-mi|all] [--part a|b|all] [--shards N]"
                            .to_string(),
                    );
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if params.threads == 0 {
            return Err("--threads must be > 0".into());
        }
        Ok(params)
    }

    /// Parse the process arguments, exiting with a message on error.
    pub fn from_env() -> Params {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Does the `--db` selector include `name`?
    pub fn wants_db(&self, name: &str) -> bool {
        self.db == "all" || self.db == name
    }

    /// Does the `--part` selector include `part`?
    pub fn wants_part(&self, part: &str) -> bool {
        self.part == "all" || self.part == part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Params, String> {
        Params::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.records, 10_000);
        assert!(p.wants_db("redis") && p.wants_db("postgres"));
        assert!(p.wants_part("a"));
    }

    #[test]
    fn full_flags() {
        let p = parse(&[
            "--records",
            "500",
            "--ops",
            "100",
            "--threads",
            "2",
            "--db",
            "redis",
            "--part",
            "b",
            "--shards",
            "8",
        ])
        .unwrap();
        assert_eq!(p.records, 500);
        assert_eq!(p.ops, 100);
        assert_eq!(p.threads, 2);
        assert_eq!(p.shards, 8);
        assert!(p.wants_db("redis"));
        assert!(!p.wants_db("postgres"));
        assert!(p.wants_part("b") && !p.wants_part("a"));
    }

    #[test]
    fn errors() {
        assert!(parse(&["--records"]).is_err());
        assert!(parse(&["--records", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
