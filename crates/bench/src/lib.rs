//! The GDPRbench-rs experiment harness.
//!
//! Every table and figure in the paper's evaluation has a binary under
//! `src/bin/` that regenerates it; the logic lives in [`experiments`] so
//! integration tests can run each experiment at toy scale. Binaries accept
//! `--records N --ops N --threads N` to scale toward the paper's sizes
//! (which take hours at full scale, exactly as the paper's runs did).
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_articles` | Table 1 (article → attribute/action map) |
//! | `fig3a_ttl_delay` | Fig 3a (Redis lazy vs strict expiration lag) |
//! | `fig3b_index_overhead` | Fig 3b (PostgreSQL throughput vs #indices) |
//! | `fig4_feature_overhead` | Fig 4a/4b (YCSB throughput per GDPR feature) |
//! | `fig5_gdpr_workloads` | Fig 5a/5b/5c (GDPRbench completion times) |
//! | `table3_space_overhead` | Table 3 (space overhead factors) |
//! | `fig6_ycsb_vs_gdpr` | Fig 6 (YCSB vs GDPRbench throughput) |
//! | `fig7_redis_scale` | Fig 7a/7b (Redis scaling) |
//! | `fig8_postgres_scale` | Fig 8a/8b (PostgreSQL scaling) |
//! | `negpred_index` | negative predicates (BY-OBJ/BY-DEC), index vs scan |
//! | `write_batch` | batched vs per-record metadata-index maintenance |

pub mod cli;
pub mod experiments;
pub mod report;

/// Relative-timing assertions ("A is not slower than B") are meaningless
/// while another CPU-saturating measurement shares the test binary's few
/// cores, so those tests serialize through this gate. Functional tests
/// stay parallel.
#[cfg(test)]
pub(crate) fn timing_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
