//! Per-statement costs of the PostgreSQL-like engine as secondary indices
//! accumulate — the microscopic view of Figure 3b.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relstore::{ColumnType, Database, Datum, Predicate, RelConfig, Statement};
use std::sync::Arc;

fn db_with_indices(rows: usize, indices: usize) -> Arc<Database> {
    let db = Database::open(RelConfig::default()).unwrap();
    db.execute(&Statement::CreateTable {
        table: "t".into(),
        columns: vec![
            ("key".into(), ColumnType::Int),
            ("a".into(), ColumnType::Int),
            ("b".into(), ColumnType::Int),
            ("c".into(), ColumnType::Text),
        ],
        pk: "key".into(),
    })
    .unwrap();
    for i in 0..rows {
        db.execute(&Statement::Insert {
            table: "t".into(),
            row: vec![
                Datum::Int(i as i64),
                Datum::Int((i % 97) as i64),
                Datum::Int((i % 31) as i64),
                Datum::Text(format!("val{i:06}")),
            ],
        })
        .unwrap();
    }
    for col in ["a", "b", "c"].iter().take(indices) {
        db.execute(&Statement::CreateIndex {
            table: "t".into(),
            index: format!("{col}_idx"),
            column: col.to_string(),
            inverted: false,
        })
        .unwrap();
    }
    db
}

fn bench_insert_vs_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("relstore/insert");
    for indices in [0usize, 1, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(indices),
            &indices,
            |bench, &indices| {
                let db = db_with_indices(5_000, indices);
                let mut i = 1_000_000i64;
                bench.iter(|| {
                    i += 1;
                    db.execute(&Statement::Insert {
                        table: "t".into(),
                        row: vec![
                            Datum::Int(i),
                            Datum::Int(i % 97),
                            Datum::Int(i % 31),
                            Datum::Text(format!("val{i:06}")),
                        ],
                    })
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_select_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("relstore/select");
    // Sequential scan vs index probe on the same predicate.
    let seq_db = db_with_indices(5_000, 0);
    group.bench_function("seq_scan", |b| {
        b.iter(|| {
            seq_db
                .execute(&Statement::Select {
                    table: "t".into(),
                    pred: Predicate::Eq("a".into(), Datum::Int(13)),
                })
                .unwrap()
        });
    });
    let idx_db = db_with_indices(5_000, 1);
    group.bench_function("index_probe", |b| {
        b.iter(|| {
            idx_db
                .execute(&Statement::Select {
                    table: "t".into(),
                    pred: Predicate::Eq("a".into(), Datum::Int(13)),
                })
                .unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_insert_vs_indices, bench_select_paths
}
criterion_main!(benches);
