//! Microbenchmarks for the security substrate: the per-byte costs behind
//! the "Encrypt" bars of Figure 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crypto::{ChaCha20, SecureChannel, SipHash24, Volume};

fn bench_chacha20(c: &mut Criterion) {
    let cipher = ChaCha20::from_seed(b"bench-key");
    let nonce = [7u8; 12];
    let mut group = c.benchmark_group("chacha20");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xAB; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| cipher.apply_copy(&nonce, 0, std::hint::black_box(data)));
        });
    }
    group.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let hasher = SipHash24::new(1, 2);
    let mut group = c.benchmark_group("siphash24");
    for size in [8usize, 64, 1024] {
        let data = vec![0xCD; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| hasher.hash(std::hint::black_box(data)));
        });
    }
    group.finish();
}

fn bench_volume_seal_open(c: &mut Criterion) {
    let volume = Volume::new(b"at-rest");
    let record = vec![0x42; 256];
    c.bench_function("volume/seal_open_256B", |b| {
        let mut block = 0u64;
        b.iter(|| {
            let sealed = volume.seal(block, std::hint::black_box(&record));
            block += 1;
            volume.open(&sealed).unwrap()
        });
    });
}

fn bench_channel_roundtrip(c: &mut Criterion) {
    c.bench_function("channel/roundtrip_256B", |b| {
        let (mut client, mut server) = SecureChannel::pair(b"session");
        let msg = vec![0x17; 256];
        b.iter(|| {
            let wire = client.seal(std::hint::black_box(&msg));
            server.open(&wire).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_chacha20, bench_siphash, bench_volume_seal_open, bench_channel_roundtrip
}
criterion_main!(benches);
