//! Per-command costs of the Redis-like store, with and without the GDPR
//! retrofits — the microscopic view of Figure 4a.

use bench::experiments::configs::{kv_config, Feature, ScratchDir};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvstore::KvStore;
use std::sync::Arc;

fn store_with(feature: Feature, scratch: &ScratchDir, records: u64) -> Arc<KvStore> {
    let store = KvStore::open(kv_config(feature, scratch)).unwrap();
    for i in 0..records {
        store
            .set(format!("user{i:012}").as_bytes(), &[0x55; 100])
            .unwrap();
    }
    store
}

fn bench_set_get(c: &mut Criterion) {
    let scratch = ScratchDir::new("kvbench");
    let mut group = c.benchmark_group("kvstore");
    for feature in [
        Feature::Baseline,
        Feature::Encrypt,
        Feature::Log,
        Feature::Combined,
    ] {
        let store = store_with(feature, &scratch, 10_000);
        group.bench_with_input(
            BenchmarkId::new("set", feature.name()),
            &store,
            |b, store| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store
                        .set(format!("bench{:08}", i % 10_000).as_bytes(), &[0x66; 100])
                        .unwrap();
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("get", feature.name()),
            &store,
            |b, store| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store
                        .get(format!("user{:012}", i % 10_000).as_bytes())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let scratch = ScratchDir::new("kvbench-scan");
    let store = store_with(Feature::Baseline, &scratch, 10_000);
    c.bench_function("kvstore/scan_full_10k", |b| {
        b.iter(|| {
            let mut cursor = 0usize;
            let mut seen = 0usize;
            loop {
                let reply = store
                    .execute(kvstore::Command::Scan {
                        cursor,
                        count: 512,
                        pattern: None,
                    })
                    .unwrap();
                let parts = reply.as_array().unwrap();
                seen += parts[1].as_array().unwrap().len();
                let next = parts[0].as_int().unwrap() as usize;
                if next == 0 {
                    break;
                }
                cursor = next;
            }
            seen
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_set_get, bench_scan
}
criterion_main!(benches);
