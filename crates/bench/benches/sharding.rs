//! Sharded vs single-engine point-op throughput — the criterion view of
//! the shard-scaling experiment. Each sample executes a fixed batch of
//! point operations (90% READ-DATA-BY-KEY / 10% UPDATE-DATA-BY-KEY)
//! spread across client threads; the shard ladder shows the per-shard
//! locking win over the single store's global lock.
//!
//! Override the corpus with `GDPRBENCH_SHARD_RECORDS`, the per-sample op
//! batch with `GDPRBENCH_SHARD_OPS`, and the client thread count with
//! `GDPRBENCH_SHARD_THREADS`.

use bench::experiments::sharding::{build_sharded, run_point_ops};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_shard_scaling(c: &mut Criterion) {
    let records = env_or("GDPRBENCH_SHARD_RECORDS", 20_000);
    let ops = env_or("GDPRBENCH_SHARD_OPS", 20_000) as u64;
    let threads = env_or("GDPRBENCH_SHARD_THREADS", 4);

    let mut group = c.benchmark_group(format!("sharding/{records}r-{ops}ops-{threads}t"));
    for shards in [1usize, 2, 4, 8] {
        let conn = build_sharded(shards, records);
        group.bench_with_input(BenchmarkId::new("point-ops", shards), &(), |b, ()| {
            b.iter(|| run_point_ops(&conn, records, ops, threads));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_shard_scaling
}
criterion_main!(benches);
