//! Negative predicates at 100 K records: the index-resolved
//! READ-DATA-BY-OBJ / READ-DATA-BY-DEC vs the full scan-decrypt-parse
//! path, at the selective (95% opted out) and broad (5%) regimes — the
//! coverage-gap companion to the `metaindex` bench. Also times the
//! batched vs per-record index-maintenance stream at the same scale.
//!
//! Override the corpus size with `GDPRBENCH_INDEX_RECORDS` for quicker
//! local runs, e.g. `GDPRBENCH_INDEX_RECORDS=10000 cargo bench -p bench
//! --bench negpred`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::{GdprConnector, GdprQuery, Session};

fn corpus_records() -> usize {
    std::env::var("GDPRBENCH_INDEX_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn bench_negative_predicates(c: &mut Criterion) {
    let records = corpus_records();
    for optout_pct in [95usize, 5] {
        let (scan_conn, index_conn) = bench::experiments::negpred::build_pair(records, optout_pct);
        let session = Session::processor("audit");
        let mut group = c.benchmark_group(format!("negpred/{records}/{optout_pct}pct"));
        for (variant, conn) in [("scan", &scan_conn), ("indexed", &index_conn)] {
            for (label, query) in [
                (
                    "read-data-by-obj",
                    GdprQuery::ReadDataNotObjecting(
                        bench::experiments::negpred::PROBE_USAGE.to_string(),
                    ),
                ),
                ("read-data-by-dec", GdprQuery::ReadDataDecisionEligible),
            ] {
                group.bench_with_input(BenchmarkId::new(label, variant), &(), |b, ()| {
                    b.iter(|| conn.execute(&session, &query).unwrap());
                });
            }
        }
        group.finish();
    }

    let (table, points) = bench::experiments::negpred::run(records, 3);
    table.print();
    for point in points {
        println!(
            "{} ({}% opted out): indexed is {:.1}x faster than the full scan",
            point.query,
            point.optout_pct,
            point.speedup()
        );
    }
    let (table, points) = bench::experiments::writebatch::run(records.min(50_000), 3);
    table.print();
    for point in points {
        println!(
            "{}: batched apply {:.2}x cheaper than per-record",
            point.workload,
            point.speedup()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_negative_predicates
}
criterion_main!(benches);
