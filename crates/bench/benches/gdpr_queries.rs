//! Per-query-class cost on both GDPR connectors: why metadata-conditioned
//! queries dominate GDPRbench completion times (Figures 5 and 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::{GdprConnector, GdprQuery, Session};
use std::sync::Arc;
use workload::datagen;
use workload::gdpr::{load_corpus, stable_corpus};

fn connectors(records: usize) -> Vec<(&'static str, Arc<dyn GdprConnector>)> {
    let corpus = stable_corpus(records);
    let redis = Arc::new(connectors::RedisConnector::new(
        kvstore::KvStore::open(kvstore::KvConfig::default()).unwrap(),
    ));
    load_corpus(redis.as_ref(), &corpus).unwrap();
    let pg = Arc::new(
        connectors::PostgresConnector::new(
            relstore::Database::open(relstore::RelConfig::default()).unwrap(),
        )
        .unwrap(),
    );
    load_corpus(pg.as_ref(), &corpus).unwrap();
    let pg_mi = Arc::new(
        connectors::PostgresConnector::with_metadata_indices(
            relstore::Database::open(relstore::RelConfig::default()).unwrap(),
        )
        .unwrap(),
    );
    load_corpus(pg_mi.as_ref(), &corpus).unwrap();
    vec![
        ("redis", redis as Arc<dyn GdprConnector>),
        ("postgres", pg as Arc<dyn GdprConnector>),
        ("postgres-mi", pg_mi as Arc<dyn GdprConnector>),
    ]
}

fn bench_query_classes(c: &mut Criterion) {
    const RECORDS: usize = 2_000;
    let corpus = stable_corpus(RECORDS);
    let conns = connectors(RECORDS);
    let mut group = c.benchmark_group("gdpr");

    // A key-based read (cheap everywhere) vs a user-scoped metadata read
    // (O(n) on redis, seq-scan on postgres, probe on postgres-mi).
    let record = datagen::record_of(42, &corpus);
    let user = record.metadata.user.clone();
    let purpose = record.metadata.purposes[0].clone();
    for (name, conn) in &conns {
        let processor = Session::processor(purpose.clone());
        let by_key = GdprQuery::ReadDataByKey(record.key.clone());
        group.bench_with_input(
            BenchmarkId::new("read-data-by-key", name),
            conn,
            |b, conn| {
                b.iter(|| conn.execute(&processor, &by_key).unwrap());
            },
        );

        let customer = Session::customer(user.clone());
        let by_usr = GdprQuery::ReadDataByUser(user.clone());
        group.bench_with_input(
            BenchmarkId::new("read-data-by-usr", name),
            conn,
            |b, conn| {
                b.iter(|| conn.execute(&customer, &by_usr).unwrap());
            },
        );

        let regulator = Session::regulator();
        let meta_usr = GdprQuery::ReadMetadataByUser(user.clone());
        group.bench_with_input(
            BenchmarkId::new("read-metadata-by-usr", name),
            conn,
            |b, conn| {
                b.iter(|| conn.execute(&regulator, &meta_usr).unwrap());
            },
        );

        let by_pur = GdprQuery::ReadDataByPurpose(purpose.clone());
        let processor2 = Session::processor(purpose.clone());
        group.bench_with_input(
            BenchmarkId::new("read-data-by-pur", name),
            conn,
            |b, conn| {
                b.iter(|| conn.execute(&processor2, &by_pur).unwrap());
            },
        );

        let verify = GdprQuery::VerifyDeletion("ph-nonexistent".into());
        group.bench_with_input(
            BenchmarkId::new("verify-deletion", name),
            conn,
            |b, conn| {
                b.iter(|| conn.execute(&regulator, &verify).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_query_classes
}
criterion_main!(benches);
