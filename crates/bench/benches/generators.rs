//! Generator microbenchmarks: the request-distribution machinery must be
//! cheap relative to the operations it drives.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use workload::generator::{IndexGenerator, ScrambledZipfian, Uniform, Zipfian};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    let mut rng = SmallRng::seed_from_u64(1);

    let mut uniform = Uniform::new(1_000_000);
    group.bench_function("uniform", |b| b.iter(|| uniform.next(&mut rng)));

    let mut zipf = Zipfian::new(1_000_000);
    group.bench_function("zipfian", |b| b.iter(|| zipf.next(&mut rng)));

    let mut scrambled = ScrambledZipfian::new(1_000_000);
    group.bench_function("scrambled_zipfian", |b| b.iter(|| scrambled.next(&mut rng)));
    group.finish();

    c.bench_function("zipfian/construct_1M", |b| {
        b.iter(|| Zipfian::new(1_000_000));
    });
}

fn bench_record_generation(c: &mut Criterion) {
    let corpus = workload::datagen::CorpusConfig::default();
    c.bench_function("datagen/record_of", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            workload::datagen::record_of(i, &corpus)
        });
    });
    c.bench_function("wire/serialize_parse", |b| {
        let record = workload::datagen::record_of(7, &corpus);
        b.iter(|| {
            let wire = gdpr_core::wire::serialize(&record);
            gdpr_core::wire::parse(&wire).unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_generators, bench_record_generation
}
criterion_main!(benches);
