//! Indexed vs full-scan metadata queries on the Redis backend at 100 K
//! records — the engine-level reproduction of the paper's Figure 5
//! index trade-off. The indexed `read-data-by-usr` / `read-data-by-pur`
//! probes must beat the scan path by well over an order of magnitude at
//! this scale (the scan parses all 100 K records per query; the index
//! touches only the matches).
//!
//! Override the corpus size with `GDPRBENCH_INDEX_RECORDS` for quicker
//! local runs, e.g. `GDPRBENCH_INDEX_RECORDS=10000 cargo bench -p bench
//! --bench metaindex`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::{GdprConnector, GdprQuery, Session};
use workload::datagen;
use workload::gdpr::stable_corpus;

fn corpus_records() -> usize {
    std::env::var("GDPRBENCH_INDEX_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn bench_index_vs_scan(c: &mut Criterion) {
    let records = corpus_records();
    let (scan_conn, index_conn) = bench::experiments::metaindex::build_pair(records);
    let corpus = stable_corpus(records);
    let probe = datagen::record_of(records / 2, &corpus);
    let user = probe.metadata.user.clone();
    // Selective purpose (COHORT_SIZE matches) vs broad vocabulary purpose
    // (~n/4 matches): the index wins O(n)/O(matches), so the first shows
    // the headline speedup and the second its honest lower bound.
    let cohort_purpose = datagen::cohort_purpose_of(records / 2);
    let broad_purpose = probe
        .metadata
        .purposes
        .iter()
        .find(|p| !p.starts_with("cohort-"))
        .expect("vocabulary purpose")
        .clone();

    let mut group = c.benchmark_group(format!("metaindex/{records}"));
    for (variant, conn) in [("scan", &scan_conn), ("indexed", &index_conn)] {
        let customer = Session::customer(user.clone());
        let by_usr = GdprQuery::ReadDataByUser(user.clone());
        group.bench_with_input(
            BenchmarkId::new("read-data-by-usr", variant),
            &(),
            |b, ()| {
                b.iter(|| conn.execute(&customer, &by_usr).unwrap());
            },
        );

        for (label, purpose) in [
            ("read-data-by-pur-cohort", &cohort_purpose),
            ("read-data-by-pur-broad", &broad_purpose),
        ] {
            let processor = Session::processor(purpose.clone());
            let by_pur = GdprQuery::ReadDataByPurpose(purpose.clone());
            group.bench_with_input(BenchmarkId::new(label, variant), &(), |b, ()| {
                b.iter(|| conn.execute(&processor, &by_pur).unwrap());
            });
        }
    }
    group.finish();

    let (table, points) = bench::experiments::metaindex::run(records, 3);
    table.print();
    for point in points {
        println!(
            "{}: indexed is {:.1}x faster than the full scan",
            point.query,
            point.speedup()
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_index_vs_scan
}
criterion_main!(benches);
