//! Time substrate for gdprbench-rs.
//!
//! The paper's time-dominated experiments (e.g. Figure 3a, where Redis takes
//! close to three hours to erase expired keys under its lazy expiration
//! algorithm) cannot be reproduced in wall-clock time inside a test suite.
//! This crate abstracts time behind the [`Clock`] trait so that production
//! code paths run against [`WallClock`] while experiment harnesses drive the
//! exact same code against a [`SimClock`] whose time is advanced manually.
//!
//! All timestamps are nanoseconds since an arbitrary epoch (process start for
//! [`WallClock`], zero for [`SimClock`]). Only differences between timestamps
//! produced by the *same* clock are meaningful.

mod sim;
mod timestamp;
mod wall;

pub use sim::SimClock;
pub use timestamp::Timestamp;
pub use wall::WallClock;

use std::sync::Arc;
use std::time::Duration;

/// A monotonic source of time.
///
/// Implementations must be cheap to call and safe to share across threads.
pub trait Clock: Send + Sync {
    /// The current instant on this clock.
    fn now(&self) -> Timestamp;

    /// Block the calling thread until at least `d` has elapsed on this clock.
    ///
    /// On [`WallClock`] this is a real sleep; on [`SimClock`] it advances the
    /// simulated time (the simulation treats the caller as the only actor
    /// driving time forward).
    fn sleep(&self, d: Duration);
}

/// A shareable, dynamically-dispatched clock handle.
///
/// Stores and daemons hold one of these so that the same binary can run
/// against real or simulated time.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience constructor for a shared wall clock.
pub fn wall() -> SharedClock {
    Arc::new(WallClock::new())
}

/// Convenience constructor for a shared simulated clock starting at time zero.
pub fn sim() -> Arc<SimClock> {
    Arc::new(SimClock::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_wall_clock_advances() {
        let c = wall();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "wall clock must advance: {a:?} -> {b:?}");
    }

    #[test]
    fn shared_clock_is_object_safe() {
        let c: SharedClock = sim();
        let a = c.now();
        c.sleep(Duration::from_secs(1));
        assert_eq!(c.now() - a, Duration::from_secs(1));
    }
}
