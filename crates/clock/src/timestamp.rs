use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant on a [`Clock`](crate::Clock), in nanoseconds since that clock's
/// epoch.
///
/// Timestamps are plain numbers: they are `Copy`, totally ordered, and support
/// `+ Duration` / `- Timestamp`. Subtracting a later timestamp from an earlier
/// one saturates to zero rather than panicking, because expiry math routinely
/// asks "how long past due is this key" about keys that are not yet due.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (a [`SimClock`](crate::SimClock)'s epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Construct from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000_000)
    }

    /// Construct from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// `self - earlier`, saturating to zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, earlier: Timestamp) -> Duration {
        self.saturating_since(earlier)
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;

    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.as_nanos() as u64))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:?}", Duration::from_nanos(self.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_roundtrip() {
        let t = Timestamp::from_secs(10);
        let later = t + Duration::from_millis(1500);
        assert_eq!(later.as_millis(), 11_500);
        assert_eq!(later - t, Duration::from_millis(1500));
    }

    #[test]
    fn sub_saturates_to_zero() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(2);
        assert_eq!(early - late, Duration::ZERO);
        assert_eq!(early - Duration::from_secs(5), Timestamp::ZERO);
    }

    #[test]
    fn ordering_matches_nanos() {
        assert!(Timestamp::from_millis(999) < Timestamp::from_secs(1));
        assert_eq!(Timestamp::from_millis(1000), Timestamp::from_secs(1));
    }

    #[test]
    fn unit_conversions() {
        let t = Timestamp::from_nanos(2_500_000_000);
        assert_eq!(t.as_secs(), 2);
        assert_eq!(t.as_millis(), 2500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
    }

    #[test]
    fn max_picks_later() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
