use crate::{Clock, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A [`Clock`] whose time only moves when told to.
///
/// Experiment harnesses use this to measure *algorithmic* time: the Figure 3a
/// reproduction drives the key-expiration cycle loop against a `SimClock`,
/// advancing 100 ms per cycle exactly as the lazy algorithm specifies, and
/// reads off how much simulated time elapsed before all expired keys were
/// gone — without actually waiting hours.
///
/// `sleep` advances the clock by the requested duration. This models a
/// single-driver simulation; daemons that must interleave with a workload are
/// instead driven explicitly (see `kvstore::expire::ExpirationCycle`).
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A simulated clock starting at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        SimClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// A simulated clock starting at `at`.
    pub fn starting_at(at: Timestamp) -> Self {
        SimClock {
            nanos: AtomicU64::new(at.as_nanos()),
        }
    }

    /// Advance simulated time by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Jump simulated time forward to `to`. Does nothing if `to` is in the
    /// past; simulated time never moves backwards.
    pub fn advance_to(&self, to: Timestamp) {
        self.nanos.fetch_max(to.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        c.advance(Duration::from_secs(3600));
        assert_eq!(c.now(), Timestamp::from_secs(3600));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::starting_at(Timestamp::from_secs(100));
        c.advance_to(Timestamp::from_secs(50));
        assert_eq!(c.now(), Timestamp::from_secs(100));
        c.advance_to(Timestamp::from_secs(200));
        assert_eq!(c.now(), Timestamp::from_secs(200));
    }

    #[test]
    fn sleep_is_instant_in_sim_time() {
        let c = SimClock::new();
        let wall_before = std::time::Instant::now();
        c.sleep(Duration::from_secs(10_000));
        assert!(wall_before.elapsed() < Duration::from_secs(1));
        assert_eq!(c.now(), Timestamp::from_secs(10_000));
    }

    #[test]
    fn concurrent_advances_accumulate() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new());
        let mut handles = vec![];
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance(Duration::from_nanos(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), Timestamp::from_nanos(8000));
    }
}
