use crate::{Clock, Timestamp};
use std::time::{Duration, Instant};

/// A [`Clock`] backed by the operating system's monotonic clock.
///
/// The epoch is the moment this `WallClock` was constructed, so timestamps
/// from different `WallClock` instances are not comparable.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let c = WallClock::new();
        let mut prev = c.now();
        for _ in 0..100 {
            let t = c.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn sleep_advances_at_least_requested() {
        let c = WallClock::new();
        let before = c.now();
        c.sleep(Duration::from_millis(5));
        assert!(c.now() - before >= Duration::from_millis(5));
    }
}
