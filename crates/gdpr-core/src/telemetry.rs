//! Runtime telemetry: allocation-free, log-bucketed latency histograms
//! (HDR-style) plus per-opcode operation/error counters — the measurement
//! layer threaded through the engine, the server, and the bench harness.
//!
//! # Histogram format
//!
//! [`AtomicHistogram`] covers roughly 100 ns to 100 s with **two buckets
//! per octave**: bucket `2i` holds values in `[2^(6+i), 1.5·2^(6+i))`
//! nanoseconds and bucket `2i+1` holds `[1.5·2^(6+i), 2^(7+i))`, for
//! octaves `2^6` (64 ns) through `2^38` (~275 s). Values below 64 ns land
//! in bucket 0; values at or above `2^38` ns **saturate** into the last
//! bucket instead of overflowing — the histogram never loses a count and
//! never panics. That yields [`BUCKETS`] = 64 buckets with a worst-case
//! quantile error of ~33% (half an octave), constant memory, and a
//! lock-free `record` path: one atomic add per bucket plus min/max/sum
//! maintenance, all `Ordering::Relaxed`.
//!
//! Snapshots ([`HistogramSnapshot`]) are plain `u64` arrays: mergeable
//! (bucket-wise addition, which is associative and commutative — shard
//! and thread snapshots combine in any order), serializable over the wire,
//! and queryable for p50/p90/p99/p999/max. Quantiles report the upper
//! bound of the containing bucket, so they are conservative and monotone
//! in the quantile argument.
//!
//! Recording can be disabled process-wide via [`set_recording`] — the
//! bench harness uses this to measure the instrumentation's own overhead.

use crate::query::GdprQuery;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// First octave: bucket 0 starts at `2^MIN_POW` ns (64 ns ≈ 100 ns floor).
const MIN_POW: u32 = 6;
/// One-past-last octave: `2^MAX_POW` ns (~275 s ≥ the 100 s ceiling).
const MAX_POW: u32 = 38;
/// Total bucket count: two per octave.
pub const BUCKETS: usize = ((MAX_POW - MIN_POW) * 2) as usize;

/// The bucket index holding `ns` (saturating at the last bucket).
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let ns = ns.max(1);
    let msb = 63 - ns.leading_zeros();
    if msb < MIN_POW {
        return 0;
    }
    if msb >= MAX_POW {
        return BUCKETS - 1;
    }
    // Second-highest bit selects the half-octave.
    let half = ((ns >> (msb - 1)) & 1) as usize;
    ((msb - MIN_POW) as usize) * 2 + half
}

/// The `[lower, upper)` nanosecond bounds of bucket `idx`. Bucket 0's
/// lower bound is 0 (it absorbs the sub-64 ns underflow); the last
/// bucket's upper bound is `u64::MAX` (it absorbs saturation).
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index {idx} out of range");
    let octave = MIN_POW + (idx / 2) as u32;
    let base = 1u64 << octave;
    let half = base + base / 2;
    let (lo, hi) = if idx.is_multiple_of(2) {
        (base, half)
    } else {
        (half, base << 1)
    };
    let lo = if idx == 0 { 0 } else { lo };
    let hi = if idx == BUCKETS - 1 { u64::MAX } else { hi };
    (lo, hi)
}

/// Process-wide recording switch (default on). Disabling turns every
/// `record` into a load-and-return — used to measure instrumentation
/// overhead, not as an operational knob.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enable or disable all telemetry recording in this process.
pub fn set_recording(enabled: bool) {
    RECORDING.store(enabled, Ordering::Relaxed);
}

/// Is telemetry recording currently enabled?
#[inline]
pub fn recording_enabled() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// A lock-free, log-bucketed latency histogram (see the module docs for
/// the exact bucket layout). `record` is wait-free: a handful of relaxed
/// atomic RMWs, no allocation, no lock.
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration. Durations past ~584 years clamp to `u64::MAX`
    /// nanoseconds (and then saturate into the last bucket).
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_value(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record one raw value (nanoseconds for latencies; the same buckets
    /// serve dimensionless values like batch sizes).
    ///
    /// Hot-path budget: three uncontended-case atomic RMWs (bucket, count,
    /// sum) plus two plain loads. min/max only pay an RMW when the value
    /// actually extends the envelope — after warmup those lines stay in
    /// shared state across cores instead of ping-ponging, which is what
    /// keeps the instrumentation's measured overhead low.
    #[inline]
    pub fn record_value(&self, v: u64) {
        if !recording_enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum without a CAS loop: detect the (practically
        // impossible outside deliberate u64::MAX records) wrap after the
        // fact and pin the total to MAX — it must never wrap to a lie.
        let prev = self.sum_ns.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            self.sum_ns.store(u64::MAX, Ordering::Relaxed);
        }
        if v < self.min_ns.load(Ordering::Relaxed) {
            self.min_ns.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max_ns.load(Ordering::Relaxed) {
            self.max_ns.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy. Concurrent recorders may land between the
    /// bucket loads — the snapshot is consistent per counter, not across
    /// counters, which is the usual (and sufficient) histogram contract.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of an [`AtomicHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    /// `u64::MAX` when empty.
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot in. Bucket-wise addition is associative and
    /// commutative, so shard/thread snapshots combine in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The `q` quantile (0.0–1.0) in nanoseconds: the upper bound of the
    /// bucket containing it, clamped to the observed max — conservative
    /// (never under-reports) and monotone in `q`. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Observed minimum (0 when empty, for display).
    pub fn min_observed_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }
}

/// How many per-opcode slots [`OpTelemetry`] tracks — one per
/// [`GdprQuery`] variant, in wire-opcode order.
pub const QUERY_SLOTS: usize = 20;

/// Slot names, indexed by [`query_slot`] (the §3.3 taxonomy order the
/// wire codec uses).
pub const QUERY_NAMES: [&str; QUERY_SLOTS] = [
    "create-record",
    "delete-record-by-key",
    "delete-record-by-pur",
    "delete-record-by-ttl",
    "delete-record-by-usr",
    "read-data-by-key",
    "read-data-by-pur",
    "read-data-by-usr",
    "read-data-by-obj",
    "read-data-by-dec",
    "read-metadata-by-key",
    "read-metadata-by-usr",
    "read-metadata-by-shr",
    "update-data-by-key",
    "update-metadata-by-key",
    "update-metadata-by-pur",
    "update-metadata-by-usr",
    "get-system-logs",
    "get-system-features",
    "verify-deletion",
];

/// The telemetry slot of a query — same order as the wire opcodes.
pub fn query_slot(query: &GdprQuery) -> usize {
    use GdprQuery::*;
    match query {
        CreateRecord(_) => 0,
        DeleteByKey(_) => 1,
        DeleteByPurpose(_) => 2,
        DeleteExpired => 3,
        DeleteByUser(_) => 4,
        ReadDataByKey(_) => 5,
        ReadDataByPurpose(_) => 6,
        ReadDataByUser(_) => 7,
        ReadDataNotObjecting(_) => 8,
        ReadDataDecisionEligible => 9,
        ReadMetadataByKey(_) => 10,
        ReadMetadataByUser(_) => 11,
        ReadMetadataBySharedWith(_) => 12,
        UpdateDataByKey { .. } => 13,
        UpdateMetadataByKey { .. } => 14,
        UpdateMetadataByPurpose { .. } => 15,
        UpdateMetadataByUser { .. } => 16,
        GetSystemLogs { .. } => 17,
        GetSystemFeatures => 18,
        VerifyDeletion(_) => 19,
    }
}

struct OpSlot {
    ok: AtomicU64,
    errors: AtomicU64,
    latency: AtomicHistogram,
}

/// Per-opcode service-time telemetry: one counter pair and one histogram
/// per [`GdprQuery`] variant, recorded by whichever engine is the entry
/// point (the unsharded [`crate::ComplianceEngine`] or the
/// [`crate::ShardedEngine`] router — never both for one op).
///
/// Also hosts the slow-op log: any op whose service time exceeds the
/// configured threshold emits one rate-limited stderr line (at most one
/// per second process-wide). The threshold defaults from the
/// `GDPR_SLOW_OP_MS` environment variable (unset/0 = disabled).
pub struct OpTelemetry {
    slots: [OpSlot; QUERY_SLOTS],
    /// Slow-op threshold in nanoseconds; 0 = disabled.
    slow_threshold_ns: AtomicU64,
    /// Tenant label stamped on slow-op log lines (`"default"` for the
    /// degenerate single-tenant table).
    label: String,
}

/// Monotonic milliseconds since the first call — the slow-op rate
/// limiter's clock (std-only; no wall-clock skew).
fn monotonic_ms() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    epoch.elapsed().as_millis() as u64
}

/// Last slow-op log line's timestamp (shared by every `OpTelemetry`, so
/// the stderr budget is one line per second per process).
static LAST_SLOW_LOG_MS: AtomicU64 = AtomicU64::new(0);

impl Default for OpTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl OpTelemetry {
    pub fn new() -> OpTelemetry {
        Self::labeled("default")
    }

    /// A table whose slow-op log lines carry `tenant=<label>` — one per
    /// tenant partition in a multi-tenant engine.
    pub fn labeled(label: impl Into<String>) -> OpTelemetry {
        let slow_ms = std::env::var("GDPR_SLOW_OP_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        OpTelemetry {
            slots: std::array::from_fn(|_| OpSlot {
                ok: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                latency: AtomicHistogram::new(),
            }),
            slow_threshold_ns: AtomicU64::new(slow_ms.saturating_mul(1_000_000)),
            label: label.into(),
        }
    }

    /// The tenant label slow-op lines are attributed to.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Override the slow-op threshold (`None`/zero disables).
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Record one executed op: which query, how long its dispatch took,
    /// and whether it returned a GDPR error.
    #[inline]
    pub fn record(&self, query: &GdprQuery, elapsed: Duration, is_err: bool) {
        if !recording_enabled() {
            return;
        }
        let slot = &self.slots[query_slot(query)];
        if is_err {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.ok.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency.record(elapsed);
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            if ns >= threshold {
                self.log_slow(query, elapsed);
            }
        }
    }

    /// Rate-limited slow-op line: at most one per second process-wide, so
    /// a pathological backlog cannot turn stderr into the bottleneck.
    fn log_slow(&self, query: &GdprQuery, elapsed: Duration) {
        let now = monotonic_ms();
        let last = LAST_SLOW_LOG_MS.load(Ordering::Relaxed);
        if now.saturating_sub(last) < 1_000 {
            return;
        }
        if LAST_SLOW_LOG_MS
            .compare_exchange(last, now.max(1), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!(
                "[gdpr-telemetry] slow op: op={} tenant={} took {:.3} ms",
                query.name(),
                self.label,
                elapsed.as_secs_f64() * 1e3,
            );
        }
    }

    /// Snapshot every slot (names in taxonomy order, empty slots included
    /// — callers filter if they only want touched opcodes).
    pub fn snapshot(&self) -> OpTelemetrySnapshot {
        OpTelemetrySnapshot {
            ops: self
                .slots
                .iter()
                .enumerate()
                .map(|(i, slot)| OpSnapshot {
                    name: QUERY_NAMES[i].to_string(),
                    ok: slot.ok.load(Ordering::Relaxed),
                    errors: slot.errors.load(Ordering::Relaxed),
                    latency: slot.latency.snapshot(),
                })
                .collect(),
        }
    }
}

/// One opcode's snapshot: counters plus the service-time histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSnapshot {
    pub name: String,
    pub ok: u64,
    pub errors: u64,
    pub latency: HistogramSnapshot,
}

impl OpSnapshot {
    pub fn total(&self) -> u64 {
        self.ok + self.errors
    }
}

/// A point-in-time copy of an [`OpTelemetry`] table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpTelemetrySnapshot {
    pub ops: Vec<OpSnapshot>,
}

impl OpTelemetrySnapshot {
    /// Merge another snapshot in, matching slots by name (append unknown
    /// names — merging snapshots from different protocol revisions must
    /// not drop data).
    pub fn merge(&mut self, other: &OpTelemetrySnapshot) {
        for theirs in &other.ops {
            if let Some(ours) = self.ops.iter_mut().find(|o| o.name == theirs.name) {
                ours.ok += theirs.ok;
                ours.errors += theirs.errors;
                ours.latency.merge(&theirs.latency);
            } else {
                self.ops.push(theirs.clone());
            }
        }
    }

    /// The snapshot for one query name, if present.
    pub fn get(&self, name: &str) -> Option<&OpSnapshot> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// Total executed ops across every opcode.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(OpSnapshot::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_bracket_their_values() {
        // Every bucket's own bounds map back to that bucket.
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let probe = lo.max(1);
            assert_eq!(bucket_index(probe), idx, "lower bound of {idx}");
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), idx, "upper bound of {idx}");
                assert_ne!(bucket_index(hi), idx, "upper bound is exclusive");
            }
        }
        // The documented anchors.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(63), 0);
        assert_eq!(bucket_index(64), 0); // [64, 96) is bucket 0
        assert_eq!(bucket_index(96), 1); // [96, 128) is bucket 1
        assert_eq!(bucket_index(128), 2);
    }

    #[test]
    fn saturation_lands_in_the_last_bucket_without_panicking() {
        let h = AtomicHistogram::new();
        h.record_value(u64::MAX);
        h.record_value(1u64 << 62);
        h.record(Duration::from_secs(1_000_000));
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[BUCKETS - 1], 3);
        assert_eq!(snap.max_ns, u64::MAX);
        // The saturating sum did not wrap.
        assert_eq!(snap.sum_ns, u64::MAX);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let h = AtomicHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        let mut last = 0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = snap.quantile_ns(q);
            assert!(v >= last, "quantile must be monotone at q={q}");
            assert!(v <= snap.max_ns, "quantile must not exceed max at q={q}");
            last = v;
        }
        // p50 of 1..=1000 µs is ~500 µs; half-octave buckets bound the
        // error to [value, 1.5·value).
        let p50 = snap.p50_ns();
        assert!(
            (500_000..=768_000).contains(&p50),
            "p50 {p50} out of bucket range"
        );
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = AtomicHistogram::new();
            for &v in values {
                h.record_value(v);
            }
            h.snapshot()
        };
        let a = mk(&[100, 2_000, 30_000]);
        let b = mk(&[5, 400_000]);
        let c = mk(&[7_000_000, 80, 80, 80]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        ba.merge(&c);
        assert_eq!(ab_c, ba);
        assert_eq!(ab_c.count, 9);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let snap = AtomicHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile_ns(0.99), 0);
        assert_eq!(snap.mean_ns(), 0);
        assert_eq!(snap.min_observed_ns(), 0);
    }

    #[test]
    fn op_table_records_per_opcode_and_merges_by_name() {
        let t = OpTelemetry::new();
        let ping = GdprQuery::ReadDataByKey("k".into());
        let del = GdprQuery::DeleteByKey("k".into());
        t.record(&ping, Duration::from_micros(10), false);
        t.record(&ping, Duration::from_micros(20), true);
        t.record(&del, Duration::from_micros(30), false);
        let snap = t.snapshot();
        let read = snap.get("read-data-by-key").unwrap();
        assert_eq!((read.ok, read.errors), (1, 1));
        assert_eq!(read.latency.count, 2);
        let delete = snap.get("delete-record-by-key").unwrap();
        assert_eq!((delete.ok, delete.errors), (1, 0));
        assert_eq!(snap.total_ops(), 3);

        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.get("read-data-by-key").unwrap().ok, 2);
        assert_eq!(merged.total_ops(), 6);
    }

    #[test]
    fn disabled_recording_drops_samples() {
        let h = AtomicHistogram::new();
        set_recording(false);
        h.record_value(100);
        set_recording(true);
        h.record_value(100);
        assert_eq!(h.snapshot().count, 1);
    }

    /// Property test, hand-rolled (no proptest in the tree): for randomized
    /// values across the whole u64 range, the bucket chosen by
    /// `bucket_index` must bracket the value, and a histogram fed those
    /// values must account for every sample with quantiles inside the
    /// observed [min, max] envelope.
    #[test]
    fn random_values_land_in_brackets_that_contain_them() {
        // xorshift64* — deterministic, no dependencies.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let h = AtomicHistogram::new();
        let mut min_seen = u64::MAX;
        let mut max_seen = 0u64;
        for i in 0..4096 {
            // Vary the magnitude: raw 64-bit values alone almost always
            // saturate the top octave, so shift by a random amount to
            // exercise every bucket.
            let value = next() >> (next() % 64);
            let idx = bucket_index(value);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= value && (value < hi || hi == u64::MAX),
                "iteration {i}: value {value} outside bucket {idx} bounds [{lo}, {hi})"
            );
            h.record_value(value);
            min_seen = min_seen.min(value);
            max_seen = max_seen.max(value);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4096);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4096);
        assert_eq!(snap.max_ns, max_seen);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let v = snap.quantile_ns(q);
            assert!(
                v <= max_seen,
                "quantile {q} = {v} exceeds observed max {max_seen}"
            );
        }
        assert!(snap.quantile_ns(0.0) >= bucket_bounds(bucket_index(min_seen)).0);
    }

    #[test]
    fn query_slots_match_names() {
        assert_eq!(query_slot(&GdprQuery::GetSystemFeatures), 18);
        assert_eq!(QUERY_NAMES[18], "get-system-features");
        assert_eq!(
            QUERY_NAMES[query_slot(&GdprQuery::VerifyDeletion("k".into()))],
            GdprQuery::VerifyDeletion("k".into()).name()
        );
    }
}
