//! The five security-centric features a compliant store must support
//! (§3.2), and the capability report GET-SYSTEM-FEATURES returns (G24, G25).

use std::fmt;

/// One of the paper's five GDPR security features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComplianceFeature {
    /// G5(1e), G17: expired and erased data must actually go away, promptly.
    TimelyDeletion,
    /// G30, G33(3a): audit every data- and control-path operation.
    MonitoringAndLogging,
    /// G15-18, G20-22, G25(2), G28(3c), G31: group access via metadata.
    MetadataIndexing,
    /// G32: encryption at rest and in transit.
    Encryption,
    /// G25(2): fine-grained, dynamic access control.
    AccessControl,
}

impl ComplianceFeature {
    pub const ALL: [ComplianceFeature; 5] = [
        ComplianceFeature::TimelyDeletion,
        ComplianceFeature::MonitoringAndLogging,
        ComplianceFeature::MetadataIndexing,
        ComplianceFeature::Encryption,
        ComplianceFeature::AccessControl,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ComplianceFeature::TimelyDeletion => "timely-deletion",
            ComplianceFeature::MonitoringAndLogging => "monitoring-and-logging",
            ComplianceFeature::MetadataIndexing => "metadata-indexing",
            ComplianceFeature::Encryption => "encryption",
            ComplianceFeature::AccessControl => "access-control",
        }
    }
}

impl fmt::Display for ComplianceFeature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a store provides a feature — natively, via external machinery, or
/// not at all. This mirrors the paper's assessment grid (§5: Redis offers
/// no native encryption but LUKS+stunnel retrofit it; PostgreSQL has no
/// native TTL but a daemon retrofits it, etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureSupport {
    /// Implemented inside the store.
    Native,
    /// Bolted on (external module, client-side enforcement, daemon, ...).
    Retrofitted,
    /// Absent.
    #[default]
    Unsupported,
}

impl FeatureSupport {
    pub fn is_supported(&self) -> bool {
        !matches!(self, FeatureSupport::Unsupported)
    }
}

/// The capability report a connector returns for GET-SYSTEM-FEATURES.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FeatureReport {
    pub timely_deletion: FeatureSupport,
    pub monitoring_and_logging: FeatureSupport,
    pub metadata_indexing: FeatureSupport,
    pub encryption: FeatureSupport,
    pub access_control: FeatureSupport,
}

impl FeatureReport {
    pub fn support_for(&self, feature: ComplianceFeature) -> FeatureSupport {
        match feature {
            ComplianceFeature::TimelyDeletion => self.timely_deletion,
            ComplianceFeature::MonitoringAndLogging => self.monitoring_and_logging,
            ComplianceFeature::MetadataIndexing => self.metadata_indexing,
            ComplianceFeature::Encryption => self.encryption,
            ComplianceFeature::AccessControl => self.access_control,
        }
    }

    /// True when every feature is at least retrofitted.
    pub fn is_fully_compliant(&self) -> bool {
        ComplianceFeature::ALL
            .iter()
            .all(|f| self.support_for(*f).is_supported())
    }

    /// Features that are missing entirely.
    pub fn gaps(&self) -> Vec<ComplianceFeature> {
        ComplianceFeature::ALL
            .iter()
            .copied()
            .filter(|f| !self.support_for(*f).is_supported())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> FeatureReport {
        FeatureReport {
            timely_deletion: FeatureSupport::Retrofitted,
            monitoring_and_logging: FeatureSupport::Native,
            metadata_indexing: FeatureSupport::Native,
            encryption: FeatureSupport::Retrofitted,
            access_control: FeatureSupport::Retrofitted,
        }
    }

    #[test]
    fn full_report_is_compliant() {
        assert!(full().is_fully_compliant());
        assert!(full().gaps().is_empty());
    }

    #[test]
    fn default_report_has_all_gaps() {
        let r = FeatureReport::default();
        assert!(!r.is_fully_compliant());
        assert_eq!(r.gaps().len(), 5);
    }

    #[test]
    fn single_gap_detected() {
        let mut r = full();
        r.encryption = FeatureSupport::Unsupported;
        assert!(!r.is_fully_compliant());
        assert_eq!(r.gaps(), vec![ComplianceFeature::Encryption]);
    }

    #[test]
    fn support_lookup_matches_fields() {
        let r = full();
        assert_eq!(
            r.support_for(ComplianceFeature::MonitoringAndLogging),
            FeatureSupport::Native
        );
        assert_eq!(
            r.support_for(ComplianceFeature::TimelyDeletion),
            FeatureSupport::Retrofitted
        );
    }
}
