use std::fmt;

/// Errors surfaced by the GDPR layer and its connectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdprError {
    /// The session's role (or identity) may not perform this query — the
    /// access-control matrix of Figure 1.
    AccessDenied {
        role: String,
        query: String,
        reason: String,
    },
    /// No record under this key.
    NotFound(String),
    /// A record with this key already exists.
    AlreadyExists(String),
    /// The record (or its wire form) is malformed.
    InvalidRecord(String),
    /// The underlying store rejected or failed the operation.
    Store(String),
    /// The query is not supported by this connector/configuration.
    Unsupported(String),
    /// A record was found in a shard that does not own its key — the
    /// loud failure mode when a sharded engine is reopened over stores
    /// laid out for a different shard count (silent misrouting would make
    /// point lookups miss live personal data, an Article 15/17 hazard).
    ShardMisroute {
        key: String,
        found_in: usize,
        owner: usize,
        shard_count: usize,
    },
}

impl fmt::Display for GdprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdprError::AccessDenied {
                role,
                query,
                reason,
            } => {
                write!(f, "access denied: role {role} may not {query}: {reason}")
            }
            GdprError::NotFound(key) => write!(f, "no record with key {key:?}"),
            GdprError::AlreadyExists(key) => write!(f, "record {key:?} already exists"),
            GdprError::InvalidRecord(msg) => write!(f, "invalid record: {msg}"),
            GdprError::Store(msg) => write!(f, "store error: {msg}"),
            GdprError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            GdprError::ShardMisroute {
                key,
                found_in,
                owner,
                shard_count,
            } => write!(
                f,
                "shard misroute: key {key:?} found in shard {found_in} but owned by shard \
                 {owner} of {shard_count} — reopen with the original shard count or rebalance"
            ),
        }
    }
}

impl std::error::Error for GdprError {}

/// Result alias for the GDPR layer.
pub type GdprResult<T> = Result<T, GdprError>;
