//! The four GDPR roles and the session identity a query executes under
//! (Figure 1 of the paper).

use crate::tenant::TenantId;
use std::fmt;

/// Who is talking to the datastore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Collects and manages personal data (e.g. Netflix).
    Controller,
    /// The data subject exercising GDPR rights over their own records.
    Customer,
    /// Processes personal data on the controller's behalf (e.g. a cloud
    /// MapReduce service).
    Processor,
    /// Supervisory authority investigating complaints.
    Regulator,
}

impl Role {
    pub const ALL: [Role; 4] = [
        Role::Controller,
        Role::Customer,
        Role::Processor,
        Role::Regulator,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Role::Controller => "controller",
            Role::Customer => "customer",
            Role::Processor => "processor",
            Role::Regulator => "regulator",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An authenticated session: a role plus, where relevant, an identity.
///
/// * Customers carry their user id — they may only touch their own records.
/// * Processors carry the purpose they are processing under (G28: access
///   only with requisite purpose).
/// * Controllers and regulators act under their role alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    pub role: Role,
    /// The customer's user id (required for [`Role::Customer`]).
    pub user: Option<String>,
    /// The processing purpose (required for [`Role::Processor`] data reads).
    pub purpose: Option<String>,
    /// Which controller's partition the session operates in. Defaults to
    /// the degenerate single-tenant [`TenantId::default`].
    pub tenant: TenantId,
}

impl Session {
    pub fn controller() -> Session {
        Session {
            role: Role::Controller,
            user: None,
            purpose: None,
            tenant: TenantId::default(),
        }
    }

    pub fn customer(user: impl Into<String>) -> Session {
        Session {
            role: Role::Customer,
            user: Some(user.into()),
            purpose: None,
            tenant: TenantId::default(),
        }
    }

    pub fn processor(purpose: impl Into<String>) -> Session {
        Session {
            role: Role::Processor,
            user: None,
            purpose: Some(purpose.into()),
            tenant: TenantId::default(),
        }
    }

    pub fn regulator() -> Session {
        Session {
            role: Role::Regulator,
            user: None,
            purpose: None,
            tenant: TenantId::default(),
        }
    }

    /// The same session, scoped to `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Session {
        self.tenant = tenant;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_identities() {
        assert_eq!(Session::controller().role, Role::Controller);
        let c = Session::customer("neo");
        assert_eq!(c.role, Role::Customer);
        assert_eq!(c.user.as_deref(), Some("neo"));
        let p = Session::processor("ads");
        assert_eq!(p.purpose.as_deref(), Some("ads"));
        assert_eq!(Session::regulator().role, Role::Regulator);
        assert!(Session::controller().tenant.is_default());
        let t = Session::controller().with_tenant(TenantId::new("acme").unwrap());
        assert_eq!(t.tenant.name(), "acme");
    }

    #[test]
    fn role_names() {
        assert_eq!(Role::Controller.to_string(), "controller");
        assert_eq!(Role::ALL.len(), 4);
    }
}
