//! Access control: which role may issue which query over whose records —
//! the matrix drawn in Figure 1 of the paper, enforced.
//!
//! Two layers cooperate:
//!
//! 1. [`authorize`] — a static check of (role, query-class, query scope)
//!    before execution. Customers may only target their own user id;
//!    processors may only read under their session's purpose.
//! 2. [`record_visible`] — a per-record check applied by connectors after
//!    lookup, covering the cases a static check cannot (a customer asking
//!    for a *key* that belongs to someone else; a processor touching a
//!    record whose purposes or objections exclude its processing purpose,
//!    G28(3c)/G21).

use crate::error::{GdprError, GdprResult};
use crate::query::GdprQuery;
use crate::record::PersonalRecord;
use crate::role::{Role, Session};

/// The outcome of a successful static authorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AclDecision {
    /// The connector must additionally verify per-record ownership or
    /// purpose via [`record_visible`] before acting.
    pub requires_record_check: bool,
}

fn deny(session: &Session, query: &GdprQuery, reason: &str) -> GdprError {
    GdprError::AccessDenied {
        role: session.role.name().to_string(),
        query: query.name().to_string(),
        reason: reason.to_string(),
    }
}

/// Statically authorize `query` under `session`.
pub fn authorize(session: &Session, query: &GdprQuery) -> GdprResult<AclDecision> {
    use GdprQuery::*;
    let ok = AclDecision {
        requires_record_check: false,
    };
    let ok_checked = AclDecision {
        requires_record_check: true,
    };

    match session.role {
        // The controller administers the store: collection, deletion, and
        // metadata management (Figure 1's create/delete/update arrow), plus
        // metadata reads and log access for breach notification (G33).
        Role::Controller => match query {
            CreateRecord(_)
            | DeleteByKey(_)
            | DeleteByPurpose(_)
            | DeleteExpired
            | DeleteByUser(_)
            | UpdateDataByKey { .. }
            | UpdateMetadataByKey { .. }
            | UpdateMetadataByPurpose { .. }
            | UpdateMetadataByUser { .. }
            | ReadMetadataByKey(_)
            | ReadMetadataByUser(_)
            | ReadMetadataBySharedWith(_)
            | GetSystemLogs { .. }
            | GetSystemFeatures
            | VerifyDeletion(_) => Ok(ok),
            ReadDataByKey(_)
            | ReadDataByPurpose(_)
            | ReadDataByUser(_)
            | ReadDataNotObjecting(_)
            | ReadDataDecisionEligible => Err(deny(
                session,
                query,
                "controllers manage personal data but processing reads require a processor purpose (G28)",
            )),
        },

        // Customers exercise rights over their own records only (G15-G22).
        Role::Customer => {
            let me = session
                .user
                .as_deref()
                .ok_or_else(|| deny(session, query, "customer session lacks a user id"))?;
            let scoped_to_me = |target: &str, q: &GdprQuery| -> GdprResult<AclDecision> {
                if target == me {
                    Ok(ok)
                } else {
                    Err(deny(session, q, "customers may only target their own records"))
                }
            };
            match query {
                ReadDataByUser(u) | ReadMetadataByUser(u) | DeleteByUser(u) => {
                    scoped_to_me(u, query)
                }
                UpdateMetadataByUser { user, .. } => scoped_to_me(user, query),
                // Key-scoped rights: ownership is checked per record.
                ReadMetadataByKey(_)
                | UpdateDataByKey { .. }
                | UpdateMetadataByKey { .. }
                | DeleteByKey(_) => Ok(ok_checked),
                GetSystemFeatures => Ok(ok),
                _ => Err(deny(session, query, "not a customer right")),
            }
        }

        // Processors read personal data under a declared purpose (G28), and
        // may register automated-decision use (G22.3).
        Role::Processor => {
            let purpose = session
                .purpose
                .as_deref()
                .ok_or_else(|| deny(session, query, "processor session lacks a purpose"))?;
            match query {
                ReadDataByKey(_) => Ok(ok_checked),
                ReadDataByPurpose(p) => {
                    if p == purpose {
                        Ok(ok)
                    } else {
                        Err(deny(
                            session,
                            query,
                            "processors may only read under their session purpose (G28.3c)",
                        ))
                    }
                }
                ReadDataNotObjecting(_) | ReadDataDecisionEligible => Ok(ok),
                UpdateMetadataByKey { update, .. } => {
                    // Only registering an automated decision is permitted.
                    use crate::query::{MetadataField, MetadataUpdate};
                    match update {
                        MetadataUpdate::Add(MetadataField::Decisions, _) => Ok(ok_checked),
                        _ => Err(deny(
                            session,
                            query,
                            "processors may only register automated-decision use (G22.3)",
                        )),
                    }
                }
                GetSystemFeatures => Ok(ok),
                _ => Err(deny(session, query, "processors only read personal data")),
            }
        }

        // Regulators see metadata and logs — never personal data (§4.2.2).
        Role::Regulator => match query {
            ReadMetadataByKey(_)
            | ReadMetadataByUser(_)
            | ReadMetadataBySharedWith(_)
            | GetSystemLogs { .. }
            | GetSystemFeatures
            | VerifyDeletion(_) => Ok(ok),
            _ => Err(deny(
                session,
                query,
                "regulators access GDPR metadata and logs only",
            )),
        },
    }
}

/// Per-record visibility: may `session` act on `record`?
pub fn record_visible(session: &Session, record: &PersonalRecord) -> bool {
    match session.role {
        Role::Controller | Role::Regulator => true,
        Role::Customer => session.user.as_deref() == Some(record.metadata.user.as_str()),
        Role::Processor => session
            .purpose
            .as_deref()
            .is_some_and(|p| record.metadata.allows_purpose(p)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{MetadataField, MetadataUpdate};
    use crate::record::Metadata;
    use std::time::Duration;

    fn record_for(user: &str, purposes: &[&str]) -> PersonalRecord {
        PersonalRecord::new(
            "k1",
            "data",
            Metadata::new(
                user,
                purposes.iter().map(|s| s.to_string()).collect(),
                Duration::from_secs(60),
            ),
        )
    }

    #[test]
    fn controller_manages_but_does_not_process() {
        let s = Session::controller();
        assert!(authorize(&s, &GdprQuery::CreateRecord(record_for("u", &[]))).is_ok());
        assert!(authorize(&s, &GdprQuery::DeleteExpired).is_ok());
        assert!(authorize(
            &s,
            &GdprQuery::UpdateMetadataByUser {
                user: "u".into(),
                update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
            }
        )
        .is_ok());
        assert!(authorize(&s, &GdprQuery::ReadDataByKey("k".into())).is_err());
        assert!(authorize(&s, &GdprQuery::ReadDataByPurpose("ads".into())).is_err());
    }

    #[test]
    fn customer_scoped_to_self() {
        let s = Session::customer("neo");
        assert!(authorize(&s, &GdprQuery::ReadDataByUser("neo".into())).is_ok());
        assert!(authorize(&s, &GdprQuery::ReadDataByUser("smith".into())).is_err());
        assert!(authorize(&s, &GdprQuery::DeleteByUser("neo".into())).is_ok());
        assert!(authorize(&s, &GdprQuery::DeleteByUser("smith".into())).is_err());
        // Key-scoped rights need the record check.
        let d = authorize(&s, &GdprQuery::DeleteByKey("k1".into())).unwrap();
        assert!(d.requires_record_check);
        // Customers cannot run processor/controller queries.
        assert!(authorize(&s, &GdprQuery::CreateRecord(record_for("neo", &[]))).is_err());
        assert!(authorize(&s, &GdprQuery::ReadDataByPurpose("ads".into())).is_err());
        assert!(authorize(
            &s,
            &GdprQuery::GetSystemLogs {
                from_ms: 0,
                to_ms: 1
            }
        )
        .is_err());
    }

    #[test]
    fn processor_purpose_scoping() {
        let s = Session::processor("ads");
        assert!(authorize(&s, &GdprQuery::ReadDataByPurpose("ads".into())).is_ok());
        assert!(authorize(&s, &GdprQuery::ReadDataByPurpose("sales".into())).is_err());
        assert!(authorize(&s, &GdprQuery::ReadDataDecisionEligible).is_ok());
        assert!(authorize(&s, &GdprQuery::DeleteByKey("k".into())).is_err());
        assert!(authorize(&s, &GdprQuery::ReadMetadataByUser("u".into())).is_err());
        // DEC registration is the one permitted write.
        assert!(authorize(
            &s,
            &GdprQuery::UpdateMetadataByKey {
                key: "k".into(),
                update: MetadataUpdate::Add(MetadataField::Decisions, "scoring".into()),
            }
        )
        .is_ok());
        assert!(authorize(
            &s,
            &GdprQuery::UpdateMetadataByKey {
                key: "k".into(),
                update: MetadataUpdate::Add(MetadataField::Purposes, "sales".into()),
            }
        )
        .is_err());
    }

    #[test]
    fn regulator_sees_metadata_not_data() {
        let s = Session::regulator();
        assert!(authorize(&s, &GdprQuery::ReadMetadataByUser("u".into())).is_ok());
        assert!(authorize(
            &s,
            &GdprQuery::GetSystemLogs {
                from_ms: 0,
                to_ms: 9
            }
        )
        .is_ok());
        assert!(authorize(&s, &GdprQuery::VerifyDeletion("k".into())).is_ok());
        assert!(authorize(&s, &GdprQuery::ReadDataByUser("u".into())).is_err());
        assert!(authorize(&s, &GdprQuery::DeleteByKey("k".into())).is_err());
    }

    #[test]
    fn sessions_missing_identity_are_rejected() {
        let bad_customer = Session {
            role: Role::Customer,
            user: None,
            purpose: None,
            tenant: Default::default(),
        };
        assert!(authorize(&bad_customer, &GdprQuery::ReadDataByUser("u".into())).is_err());
        let bad_processor = Session {
            role: Role::Processor,
            user: None,
            purpose: None,
            tenant: Default::default(),
        };
        assert!(authorize(&bad_processor, &GdprQuery::ReadDataByKey("k".into())).is_err());
    }

    #[test]
    fn record_visibility() {
        let record = record_for("neo", &["ads"]);
        assert!(record_visible(&Session::controller(), &record));
        assert!(record_visible(&Session::regulator(), &record));
        assert!(record_visible(&Session::customer("neo"), &record));
        assert!(!record_visible(&Session::customer("smith"), &record));
        assert!(record_visible(&Session::processor("ads"), &record));
        assert!(!record_visible(&Session::processor("sales"), &record));
    }

    #[test]
    fn objection_blocks_processor_visibility() {
        let mut record = record_for("neo", &["ads"]);
        record.metadata.objections.push("ads".into());
        assert!(!record_visible(&Session::processor("ads"), &record));
    }
}
