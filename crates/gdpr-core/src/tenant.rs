//! Tenant identity: the first-class dimension that lets one deployment
//! serve many data controllers with hard isolation.
//!
//! A [`TenantId`] names one controller. The **default tenant** (the empty
//! name) is the degenerate single-tenant case: every pre-tenancy caller
//! lands there and observes byte-identical behavior to a build without
//! tenancy at all.
//!
//! # Storage-key namespacing
//!
//! Isolation is enforced at the key layer: a non-default tenant's records
//! live under `"<tenant>\x1d<key>"` in the shared [`crate::RecordStore`],
//! where `\x1d` (ASCII GROUP SEPARATOR) is [`TENANT_SEPARATOR`]. The
//! default tenant's records keep their raw keys, which is what makes the
//! degenerate case byte-equivalent. Two rules make the scheme forgery-proof:
//!
//! * tenant names may not contain the separator (they are restricted to
//!   `[A-Za-z0-9._-]`, at most [`MAX_TENANT_LEN`] bytes), and
//! * **logical** keys containing the separator are rejected outright
//!   ([`TenantId::check_logical_key`]), so no caller — default tenant
//!   included — can craft a key that addresses another tenant's partition.
//!
//! Everything above the store (index partitions, audit trails, telemetry
//! labels, snapshot sections, shard routing) keys off the same identity.

use std::fmt;

/// ASCII GROUP SEPARATOR — joins tenant name and logical key into a
/// storage key. Not a valid byte in tenant names or logical keys.
pub const TENANT_SEPARATOR: char = '\u{1d}';

/// Longest accepted tenant name, in bytes.
pub const MAX_TENANT_LEN: usize = 64;

/// One controller's identity. `TenantId::default()` is the degenerate
/// single-tenant case (empty name).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// Parse and validate a tenant name. The empty string is the default
    /// tenant; anything else must be `[A-Za-z0-9._-]{1,64}`.
    pub fn new(name: impl Into<String>) -> Result<TenantId, String> {
        let name = name.into();
        Self::check_name(&name)?;
        Ok(TenantId(name))
    }

    /// Validate a tenant name without constructing one.
    pub fn check_name(name: &str) -> Result<(), String> {
        if name.is_empty() {
            return Ok(());
        }
        if name.len() > MAX_TENANT_LEN {
            return Err(format!(
                "tenant name of {} bytes exceeds the {MAX_TENANT_LEN}-byte cap",
                name.len()
            ));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
        {
            return Err(format!(
                "tenant name {name:?} contains {bad:?}; allowed: [A-Za-z0-9._-]"
            ));
        }
        Ok(())
    }

    /// Reject logical keys that could forge a cross-tenant storage key.
    /// Applied to every key-addressed query before translation.
    pub fn check_logical_key(key: &str) -> Result<(), String> {
        if key.contains(TENANT_SEPARATOR) {
            return Err(format!(
                "record key {key:?} contains the reserved tenant separator (0x1d)"
            ));
        }
        Ok(())
    }

    /// The degenerate single-tenant case?
    #[inline]
    pub fn is_default(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw name (empty for the default tenant).
    pub fn name(&self) -> &str {
        &self.0
    }

    /// A human/metric label: `"default"` for the default tenant, the name
    /// otherwise. Used by the slow-op log and the Prometheus series.
    pub fn label(&self) -> &str {
        if self.0.is_empty() {
            "default"
        } else {
            &self.0
        }
    }

    /// Translate a logical key into the storage key this tenant owns.
    /// The default tenant's storage keys are the logical keys themselves.
    pub fn storage_key(&self, logical: &str) -> String {
        if self.is_default() {
            logical.to_string()
        } else {
            let mut k = String::with_capacity(self.0.len() + 1 + logical.len());
            k.push_str(&self.0);
            k.push(TENANT_SEPARATOR);
            k.push_str(logical);
            k
        }
    }

    /// Does this tenant own `storage_key`? The default tenant owns exactly
    /// the keys without a separator.
    pub fn owns(&self, storage_key: &str) -> bool {
        match storage_key.find(TENANT_SEPARATOR) {
            None => self.is_default(),
            Some(at) => storage_key[..at] == self.0,
        }
    }

    /// Strip this tenant's prefix off a storage key, yielding the logical
    /// key. Keys the tenant does not own come back unchanged (callers
    /// filter on [`Self::owns`] first).
    pub fn logical<'a>(&self, storage_key: &'a str) -> &'a str {
        if self.is_default() {
            return storage_key;
        }
        match storage_key.find(TENANT_SEPARATOR) {
            Some(at) if storage_key[..at] == self.0 => &storage_key[at + 1..],
            _ => storage_key,
        }
    }

    /// Split a storage key into `(tenant name, logical key)`. Keys without
    /// a separator belong to the default tenant.
    pub fn split_storage_key(storage_key: &str) -> (&str, &str) {
        match storage_key.find(TENANT_SEPARATOR) {
            None => ("", storage_key),
            Some(at) => (&storage_key[..at], &storage_key[at + 1..]),
        }
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_transparent() {
        let t = TenantId::default();
        assert!(t.is_default());
        assert_eq!(t.storage_key("ph-1"), "ph-1");
        assert_eq!(t.logical("ph-1"), "ph-1");
        assert!(t.owns("ph-1"));
        assert!(!t.owns("acme\u{1d}ph-1"));
        assert_eq!(t.label(), "default");
    }

    #[test]
    fn named_tenant_prefixes_and_strips() {
        let t = TenantId::new("acme").unwrap();
        let sk = t.storage_key("ph-1");
        assert_eq!(sk, "acme\u{1d}ph-1");
        assert!(t.owns(&sk));
        assert!(!t.owns("ph-1"));
        assert!(!t.owns("acme2\u{1d}ph-1"));
        assert_eq!(t.logical(&sk), "ph-1");
        assert_eq!(TenantId::split_storage_key(&sk), ("acme", "ph-1"));
        assert_eq!(TenantId::split_storage_key("ph-1"), ("", "ph-1"));
    }

    #[test]
    fn hostile_names_and_keys_are_rejected() {
        assert!(TenantId::new("ok-name_1.2").is_ok());
        assert!(TenantId::new("").unwrap().is_default());
        assert!(TenantId::new("has space").is_err());
        assert!(TenantId::new("sep\u{1d}inside").is_err());
        assert!(TenantId::new("x".repeat(MAX_TENANT_LEN + 1)).is_err());
        assert!(TenantId::new("x".repeat(MAX_TENANT_LEN)).is_ok());
        assert!(TenantId::check_logical_key("plain").is_ok());
        assert!(TenantId::check_logical_key("a\u{1d}b").is_err());
    }

    #[test]
    fn a_tenant_name_prefixing_another_does_not_collide() {
        let a = TenantId::new("acme").unwrap();
        let ab = TenantId::new("acme2").unwrap();
        assert!(!a.owns(&ab.storage_key("k")));
        assert!(!ab.owns(&a.storage_key("k")));
    }
}
