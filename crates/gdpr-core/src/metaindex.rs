//! Engine-side secondary indexes over GDPR metadata.
//!
//! The paper's central performance finding is that GDPR queries are
//! *metadata-predicate* queries (by user, purpose, objection, sharing,
//! TTL), and that a store without secondary indexes on that metadata
//! answers them orders of magnitude too slowly (Figures 5a/7b: every such
//! query on Redis is a full SCAN-decrypt-parse of the keyspace). This
//! module is the retrofit: four inverted indexes — `user → keys`,
//! `purpose → keys`, `objection → keys`, `sharing → keys` — plus a live
//! *all-keys* set, a *decision-eligibility* set, and a deadline-ordered
//! expiry set, maintained by the compliance engine on every
//! put/rewrite/delete and invalidated by the store on every TTL
//! expiration, so predicate lookups become O(matches) instead of O(n).
//!
//! Coverage is total: [`MetadataIndex::keys_for`] answers **every**
//! [`RecordPredicate`] variant. The two negative predicates resolve as set
//! algebra over the live key population — `NotObjecting(usage)` is
//! `all_keys − objecting(usage)` and `DecisionEligible` is a directly
//! maintained set (keys without the G22 opt-out marker) — so even
//! "everything except ..." queries fetch only their matches instead of
//! scan-decrypt-parsing the whole keyspace.
//!
//! Writers maintain the index either per record ([`MetadataIndex::upsert`]
//! / [`MetadataIndex::remove`]) or in bulk via an [`IndexBatch`] applied by
//! [`MetadataIndex::apply`], which takes the write lock **once** for the
//! whole batch — the multi-record engine paths (group updates, group
//! deletes, TTL purges, backfill, shard rebalance) coalesce their index
//! maintenance this way instead of paying one lock round-trip per record.
//!
//! Expiry deadlines are **inclusive**: a record whose deadline equals the
//! current instant is already expired. [`MetadataIndex::expired_keys`],
//! the key-value store's reaper, and the relational sweep daemon all agree
//! on this boundary, so an index-driven purge and a scan-driven purge
//! delete identical sets at the boundary instant (pinned by the
//! conformance suite).
//!
//! The index stores *keys only*; record payloads stay in (and are re-read
//! from) the backing store, so encrypted-at-rest data is never duplicated
//! in plaintext and a stale index entry can at worst cause one extra fetch
//! that comes back empty — the engine re-verifies every candidate against
//! the predicate before returning it (see
//! [`crate::store::RecordPredicate::matches`]).

use crate::record::{Metadata, PersonalRecord};
use crate::store::RecordPredicate;
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap};

/// What was indexed for one key — kept so removal needs no record fetch
/// (the record may already be gone from the store when invalidation runs).
#[derive(Debug, Clone, Default)]
struct IndexedTerms {
    user: String,
    purposes: Vec<String>,
    objections: Vec<String>,
    sharing: Vec<String>,
    deadline_ms: Option<u64>,
}

#[derive(Default)]
struct Inner {
    by_user: HashMap<String, BTreeSet<String>>,
    by_purpose: HashMap<String, BTreeSet<String>>,
    by_objection: HashMap<String, BTreeSet<String>>,
    by_sharing: HashMap<String, BTreeSet<String>>,
    /// Every live key — the universe the negative predicates subtract
    /// from (`NotObjecting` = `all_keys − objecting`).
    all_keys: BTreeSet<String>,
    /// Keys eligible for automated decision-making (no G22 opt-out
    /// marker) — `DecisionEligible` reads this set directly.
    decision_eligible: BTreeSet<String>,
    /// `(absolute deadline ms, key)`, ordered — expired prefixes pop in
    /// O(expired · log n).
    by_deadline: BTreeSet<(u64, String)>,
    /// Per-key snapshot of the indexed terms.
    terms: HashMap<String, IndexedTerms>,
}

impl Inner {
    fn unindex(&mut self, key: &str) -> bool {
        let Some(terms) = self.terms.remove(key) else {
            return false;
        };
        detach(&mut self.by_user, &terms.user, key);
        for p in &terms.purposes {
            detach(&mut self.by_purpose, p, key);
        }
        for o in &terms.objections {
            detach(&mut self.by_objection, o, key);
        }
        for s in &terms.sharing {
            detach(&mut self.by_sharing, s, key);
        }
        self.all_keys.remove(key);
        self.decision_eligible.remove(key);
        if let Some(at) = terms.deadline_ms {
            self.by_deadline.remove(&(at, key.to_string()));
        }
        true
    }
}

fn detach(map: &mut HashMap<String, BTreeSet<String>>, term: &str, key: &str) {
    if let Some(set) = map.get_mut(term) {
        set.remove(key);
        if set.is_empty() {
            map.remove(term);
        }
    }
}

fn keys_of(map: &HashMap<String, BTreeSet<String>>, term: &str) -> Vec<String> {
    map.get(term)
        .map(|set| set.iter().cloned().collect())
        .unwrap_or_default()
}

/// One deferred index mutation inside an [`IndexBatch`]. Ops hold only
/// the key and the metadata terms — never the data payload — so a queued
/// batch buffers no plaintext personal data, upholding the module's
/// "keys only" contract even while mutations are in flight.
#[derive(Debug, Clone)]
enum IndexOp {
    /// Same semantics as [`MetadataIndex::upsert`].
    Upsert {
        key: String,
        metadata: Metadata,
        now_ms: u64,
        keep_deadline: bool,
    },
    /// Same semantics as [`MetadataIndex::upsert_with_deadline`].
    UpsertAt {
        key: String,
        metadata: Metadata,
        deadline_ms: Option<u64>,
    },
    /// Same semantics as [`MetadataIndex::remove`].
    Remove { key: String },
}

/// A batch of index mutations applied under **one** write-lock
/// acquisition ([`MetadataIndex::apply`]). The engine's multi-record
/// write paths (group updates and deletes, TTL purges, backfill, shard
/// rebalance) build one of these instead of locking per record. Ops apply
/// in insertion order, so a batch touching the same key twice behaves
/// exactly like the equivalent per-record call sequence.
#[derive(Debug, Clone, Default)]
pub struct IndexBatch {
    ops: Vec<IndexOp>,
}

impl IndexBatch {
    pub fn new() -> IndexBatch {
        IndexBatch::default()
    }

    /// Queue an upsert with [`MetadataIndex::upsert`] semantics. Takes the
    /// record by value — callers on the write path own it anyway — and
    /// keeps only its key and metadata; the data payload is dropped here.
    pub fn upsert(&mut self, record: PersonalRecord, now_ms: u64, keep_deadline: bool) {
        self.ops.push(IndexOp::Upsert {
            key: record.key,
            metadata: record.metadata,
            now_ms,
            keep_deadline,
        });
    }

    /// Queue an upsert under an explicit absolute deadline (payload
    /// dropped, as in [`Self::upsert`]).
    pub fn upsert_at(&mut self, record: PersonalRecord, deadline_ms: Option<u64>) {
        self.ops.push(IndexOp::UpsertAt {
            key: record.key,
            metadata: record.metadata,
            deadline_ms,
        });
    }

    /// Queue a removal.
    pub fn remove(&mut self, key: impl Into<String>) {
        self.ops.push(IndexOp::Remove { key: key.into() });
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The four inverted metadata indexes, the all-keys and
/// decision-eligibility sets, and the TTL expiry set.
#[derive(Default)]
pub struct MetadataIndex {
    inner: RwLock<Inner>,
}

impl MetadataIndex {
    pub fn new() -> MetadataIndex {
        MetadataIndex::default()
    }

    /// Index (or re-index) a record. `now_ms` anchors the TTL deadline;
    /// with `keep_deadline`, a previously indexed deadline survives the
    /// rewrite (the store preserved the remaining TTL, so must we).
    pub fn upsert(&self, record: &PersonalRecord, now_ms: u64, keep_deadline: bool) {
        Self::upsert_locked(
            &mut self.inner.write(),
            &record.key,
            &record.metadata,
            now_ms,
            keep_deadline,
        );
    }

    /// Index a record under an explicit absolute deadline — the backfill
    /// path, where the store's own remaining deadline (not `now + declared
    /// TTL`) is authoritative for records that already existed.
    pub fn upsert_with_deadline(&self, record: &PersonalRecord, deadline_ms: Option<u64>) {
        Self::index_locked(
            &mut self.inner.write(),
            &record.key,
            &record.metadata,
            deadline_ms,
        );
    }

    /// Apply a whole [`IndexBatch`] under one write-lock acquisition, in
    /// op order. Returns how many ops were applied. This is the engine's
    /// multi-record maintenance path: a group update over k records costs
    /// one lock round-trip instead of k.
    pub fn apply(&self, batch: IndexBatch) -> usize {
        if batch.ops.is_empty() {
            return 0;
        }
        let mut inner = self.inner.write();
        let n = batch.ops.len();
        for op in batch.ops {
            match op {
                IndexOp::Upsert {
                    key,
                    metadata,
                    now_ms,
                    keep_deadline,
                } => Self::upsert_locked(&mut inner, &key, &metadata, now_ms, keep_deadline),
                IndexOp::UpsertAt {
                    key,
                    metadata,
                    deadline_ms,
                } => Self::index_locked(&mut inner, &key, &metadata, deadline_ms),
                IndexOp::Remove { key } => {
                    inner.unindex(&key);
                }
            }
        }
        n
    }

    /// The one deadline-derivation rule, shared by the per-record and
    /// batched upsert paths so they cannot silently diverge: keep the
    /// previously indexed deadline when `keep_deadline`, else re-arm from
    /// `now_ms + declared TTL`.
    fn upsert_locked(inner: &mut Inner, key: &str, m: &Metadata, now_ms: u64, keep_deadline: bool) {
        let deadline_ms = if keep_deadline {
            inner.terms.get(key).and_then(|t| t.deadline_ms)
        } else {
            m.ttl.map(|ttl| now_ms + ttl.as_millis() as u64)
        };
        Self::index_locked(inner, key, m, deadline_ms);
    }

    fn index_locked(inner: &mut Inner, key: &str, m: &Metadata, deadline_ms: Option<u64>) {
        inner.unindex(key);
        let key = key.to_string();
        inner
            .by_user
            .entry(m.user.clone())
            .or_default()
            .insert(key.clone());
        for p in &m.purposes {
            inner
                .by_purpose
                .entry(p.clone())
                .or_default()
                .insert(key.clone());
        }
        for o in &m.objections {
            inner
                .by_objection
                .entry(o.clone())
                .or_default()
                .insert(key.clone());
        }
        for s in &m.sharing {
            inner
                .by_sharing
                .entry(s.clone())
                .or_default()
                .insert(key.clone());
        }
        inner.all_keys.insert(key.clone());
        if m.allows_automated_decisions() {
            inner.decision_eligible.insert(key.clone());
        }
        if let Some(at) = deadline_ms {
            inner.by_deadline.insert((at, key.clone()));
        }
        inner.terms.insert(
            key,
            IndexedTerms {
                user: m.user.clone(),
                purposes: m.purposes.clone(),
                objections: m.objections.clone(),
                sharing: m.sharing.clone(),
                deadline_ms,
            },
        );
    }

    /// Drop a key from every index. Returns whether it was indexed. This is
    /// the invalidation path stores call on TTL expiration.
    pub fn remove(&self, key: &str) -> bool {
        self.inner.write().unindex(key)
    }

    /// Candidate keys for a predicate. Every [`RecordPredicate`] variant is
    /// index-answerable, so this always returns `Some` — the `Option` stays
    /// in the signature so a future predicate the index cannot cover can
    /// still fall back to the engine's scan path. Candidates are a
    /// *superset-modulo-staleness* of the true matches; callers must
    /// re-verify each fetched record.
    ///
    /// For the *difference-based* predicates (`AllowsPurpose`,
    /// `NotObjecting`, `DecisionEligible`) staleness can also *narrow*
    /// the candidate set: a read racing a metadata write's
    /// store-committed-but-not-yet-reindexed window subtracts the
    /// pre-write objection/opt-out terms, i.e. it serializes before that
    /// write. The narrowing is only ever toward treating an objection or
    /// opt-out as still in force — the privacy-conservative direction —
    /// and closes as soon as the writer's (batched) reindex lands; the
    /// engine is non-transactional by design and makes no linearizability
    /// promise across concurrent writes.
    pub fn keys_for(&self, pred: &RecordPredicate) -> Option<Vec<String>> {
        let inner = self.inner.read();
        match pred {
            RecordPredicate::User(u) => Some(keys_of(&inner.by_user, u)),
            RecordPredicate::DeclaredPurpose(p) => Some(keys_of(&inner.by_purpose, p)),
            RecordPredicate::AllowsPurpose(p) => {
                let declared = inner.by_purpose.get(p.as_str());
                let objecting = inner.by_objection.get(p.as_str());
                Some(match (declared, objecting) {
                    (None, _) => Vec::new(),
                    (Some(d), None) => d.iter().cloned().collect(),
                    (Some(d), Some(o)) => d.difference(o).cloned().collect(),
                })
            }
            RecordPredicate::SharedWith(s) => Some(keys_of(&inner.by_sharing, s)),
            // Negative predicates are set differences over the live key
            // population: the walk is O(|all_keys|) string compares, but the
            // caller then fetches (and decrypt-parses) only the matches —
            // the expensive part a full scan pays for every record.
            RecordPredicate::NotObjecting(usage) => {
                Some(match inner.by_objection.get(usage.as_str()) {
                    None => inner.all_keys.iter().cloned().collect(),
                    Some(o) => inner.all_keys.difference(o).cloned().collect(),
                })
            }
            RecordPredicate::DecisionEligible => {
                Some(inner.decision_eligible.iter().cloned().collect())
            }
        }
    }

    /// Keys whose deadline is at or before `now_ms`, in deadline order.
    pub fn expired_keys(&self, now_ms: u64) -> Vec<String> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .take_while(|(at, _)| *at <= now_ms)
            .map(|(_, key)| key.clone())
            .collect()
    }

    /// The earliest deadline currently indexed.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.inner
            .read()
            .by_deadline
            .iter()
            .next()
            .map(|(at, _)| *at)
    }

    /// The indexed deadline of one key.
    pub fn deadline_of(&self, key: &str) -> Option<u64> {
        self.inner.read().terms.get(key).and_then(|t| t.deadline_ms)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.inner.read().terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything.
    pub fn clear(&self) {
        *self.inner.write() = Inner::default();
    }

    // ---- term-level inspection (tests, space accounting, diagnostics) ----

    pub fn keys_by_user(&self, user: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_user, user)
    }

    pub fn keys_by_purpose(&self, purpose: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_purpose, purpose)
    }

    pub fn keys_with_objection(&self, usage: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_objection, usage)
    }

    pub fn keys_shared_with(&self, party: &str) -> Vec<String> {
        keys_of(&self.inner.read().by_sharing, party)
    }

    /// True when `key` appears in *no* inverted index and no deadline —
    /// the invariant after invalidation.
    pub fn fully_absent(&self, key: &str) -> bool {
        let inner = self.inner.read();
        !inner.terms.contains_key(key)
            && !inner.by_user.values().any(|s| s.contains(key))
            && !inner.by_purpose.values().any(|s| s.contains(key))
            && !inner.by_objection.values().any(|s| s.contains(key))
            && !inner.by_sharing.values().any(|s| s.contains(key))
            && !inner.all_keys.contains(key)
            && !inner.decision_eligible.contains(key)
            && !inner.by_deadline.iter().any(|(_, k)| k == key)
    }

    /// Approximate footprint, for space-overhead visibility (the engine's
    /// analogue of the paper's Table 3 index cost).
    pub fn size_bytes(&self) -> usize {
        let inner = self.inner.read();
        let map_bytes = |m: &HashMap<String, BTreeSet<String>>| {
            m.iter()
                .map(|(term, keys)| term.len() + keys.iter().map(|k| k.len() + 16).sum::<usize>())
                .sum::<usize>()
        };
        map_bytes(&inner.by_user)
            + map_bytes(&inner.by_purpose)
            + map_bytes(&inner.by_objection)
            + map_bytes(&inner.by_sharing)
            + inner.all_keys.iter().map(|k| k.len() + 16).sum::<usize>()
            + inner
                .decision_eligible
                .iter()
                .map(|k| k.len() + 16)
                .sum::<usize>()
            + inner
                .by_deadline
                .iter()
                .map(|(_, k)| k.len() + 24)
                .sum::<usize>()
            + inner
                .terms
                .iter()
                .map(|(k, t)| {
                    k.len()
                        + t.user.len()
                        + t.purposes.iter().map(String::len).sum::<usize>()
                        + t.objections.iter().map(String::len).sum::<usize>()
                        + t.sharing.iter().map(String::len).sum::<usize>()
                        + 16
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Metadata;
    use std::time::Duration;

    fn record(key: &str, user: &str, purposes: &[&str], ttl_secs: Option<u64>) -> PersonalRecord {
        let mut m = Metadata::new(
            user,
            purposes.iter().map(|s| s.to_string()).collect(),
            Duration::from_secs(ttl_secs.unwrap_or(1)),
        );
        if ttl_secs.is_none() {
            m.ttl = None;
        }
        PersonalRecord::new(key, "d", m)
    }

    #[test]
    fn upsert_and_lookup_all_dimensions() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads", "2fa"], Some(60));
        r.metadata.objections.push("ads".into());
        r.metadata.sharing.push("x-corp".into());
        idx.upsert(&r, 1_000, false);
        idx.upsert(&record("k2", "neo", &["ads"], None), 1_000, false);

        assert_eq!(idx.keys_by_user("neo"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("ads"), vec!["k1", "k2"]);
        assert_eq!(idx.keys_by_purpose("2fa"), vec!["k1"]);
        assert_eq!(idx.keys_with_objection("ads"), vec!["k1"]);
        assert_eq!(idx.keys_shared_with("x-corp"), vec!["k1"]);
        assert_eq!(idx.deadline_of("k1"), Some(61_000));
        assert_eq!(idx.deadline_of("k2"), None);
        assert_eq!(idx.len(), 2);

        // AllowsPurpose = declared minus objecting.
        assert_eq!(
            idx.keys_for(&RecordPredicate::AllowsPurpose("ads".into())),
            Some(vec!["k2".to_string()])
        );
        // Negative predicates resolve as set differences over all_keys.
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("ads".into())),
            Some(vec!["k2".to_string()])
        );
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("spam".into())),
            Some(vec!["k1".to_string(), "k2".to_string()])
        );
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec!["k1".to_string(), "k2".to_string()])
        );
    }

    #[test]
    fn every_predicate_variant_is_index_answerable() {
        let idx = MetadataIndex::new();
        idx.upsert(&record("k1", "neo", &["ads"], None), 0, false);
        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x".into()),
        ] {
            assert!(
                idx.keys_for(&pred).is_some(),
                "{pred:?} must be index-answerable"
            );
        }
    }

    #[test]
    fn decision_opt_out_leaves_the_eligible_set() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], None);
        idx.upsert(&r, 0, false);
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec!["k1".to_string()])
        );
        r.metadata.decisions.push(Metadata::DEC_OPT_OUT.to_string());
        idx.upsert(&r, 0, false);
        assert_eq!(
            idx.keys_for(&RecordPredicate::DecisionEligible),
            Some(vec![])
        );
        // The key is still live, just ineligible.
        assert_eq!(
            idx.keys_for(&RecordPredicate::NotObjecting("ads".into())),
            Some(vec!["k1".to_string()])
        );
    }

    /// A batch applied in one lock acquisition leaves the index in exactly
    /// the state the equivalent per-record call sequence would — including
    /// keep-deadline upserts and same-key reordering within the batch.
    #[test]
    fn batch_apply_matches_per_record_sequence() {
        let per_record = MetadataIndex::new();
        let batched = MetadataIndex::new();

        let mut r1 = record("k1", "neo", &["ads"], Some(10));
        r1.metadata.objections.push("ads".into());
        let r2 = record("k2", "trinity", &["2fa"], Some(20));
        let mut r2b = r2.clone();
        r2b.metadata.sharing.push("x-corp".into());

        per_record.upsert(&r1, 0, false);
        per_record.upsert(&r2, 0, false);
        per_record.upsert(&r2b, 5_000, true); // rewrite keeping the deadline
        per_record.remove("k1");
        per_record.upsert_with_deadline(&r1, Some(42_000));

        let mut batch = IndexBatch::new();
        batch.upsert(r1.clone(), 0, false);
        batch.upsert(r2.clone(), 0, false);
        batch.upsert(r2b.clone(), 5_000, true);
        batch.remove("k1");
        batch.upsert_at(r1.clone(), Some(42_000));
        assert_eq!(batch.len(), 5);
        assert_eq!(batched.apply(batch), 5);

        for pred in [
            RecordPredicate::User("neo".into()),
            RecordPredicate::User("trinity".into()),
            RecordPredicate::DeclaredPurpose("ads".into()),
            RecordPredicate::AllowsPurpose("ads".into()),
            RecordPredicate::NotObjecting("ads".into()),
            RecordPredicate::DecisionEligible,
            RecordPredicate::SharedWith("x-corp".into()),
        ] {
            assert_eq!(
                batched.keys_for(&pred),
                per_record.keys_for(&pred),
                "batch and per-record disagree on {pred:?}"
            );
        }
        for key in ["k1", "k2"] {
            assert_eq!(batched.deadline_of(key), per_record.deadline_of(key));
        }
        assert_eq!(batched.deadline_of("k1"), Some(42_000));
        assert_eq!(
            batched.deadline_of("k2"),
            Some(20_000),
            "kept, not re-armed"
        );
        assert_eq!(batched.len(), per_record.len());
        assert_eq!(MetadataIndex::new().apply(IndexBatch::new()), 0);
    }

    #[test]
    fn remove_clears_every_structure() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        r.metadata.objections.push("spam".into());
        r.metadata.sharing.push("x".into());
        idx.upsert(&r, 0, false);
        assert!(!idx.fully_absent("k1"));
        assert!(idx.remove("k1"));
        assert!(idx.fully_absent("k1"));
        assert!(!idx.remove("k1"), "second removal is a no-op");
        assert!(idx.is_empty());
        assert_eq!(idx.next_deadline_ms(), None);
    }

    #[test]
    fn reindex_replaces_stale_terms() {
        let idx = MetadataIndex::new();
        let mut r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        r.metadata.user = "smith".into();
        r.metadata.purposes = vec!["2fa".into()];
        idx.upsert(&r, 0, false);
        assert!(idx.keys_by_user("neo").is_empty());
        assert_eq!(idx.keys_by_user("smith"), vec!["k1"]);
        assert!(idx.keys_by_purpose("ads").is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn deadline_preserved_across_rewrite_when_requested() {
        let idx = MetadataIndex::new();
        let r = record("k1", "neo", &["ads"], Some(10));
        idx.upsert(&r, 0, false);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite later without TTL change: deadline must not slide.
        idx.upsert(&r, 5_000, true);
        assert_eq!(idx.deadline_of("k1"), Some(10_000));
        // Rewrite with TTL re-armed: deadline recomputed from now.
        idx.upsert(&r, 5_000, false);
        assert_eq!(idx.deadline_of("k1"), Some(15_000));
    }

    #[test]
    fn expiry_order_and_cutoff() {
        let idx = MetadataIndex::new();
        idx.upsert(&record("a", "u", &[], Some(5)), 0, false);
        idx.upsert(&record("b", "u", &[], Some(1)), 0, false);
        idx.upsert(&record("c", "u", &[], Some(9)), 0, false);
        idx.upsert(&record("d", "u", &[], None), 0, false);
        assert_eq!(idx.next_deadline_ms(), Some(1_000));
        assert_eq!(idx.expired_keys(4_999), vec!["b"]);
        assert_eq!(idx.expired_keys(5_000), vec!["b", "a"]);
        assert_eq!(idx.expired_keys(u64::MAX), vec!["b", "a", "c"]);
        assert!(idx.expired_keys(999).is_empty());
    }

    #[test]
    fn size_bytes_tracks_content() {
        let idx = MetadataIndex::new();
        assert_eq!(idx.size_bytes(), 0);
        idx.upsert(&record("k1", "neo", &["ads"], Some(10)), 0, false);
        let one = idx.size_bytes();
        assert!(one > 0);
        idx.upsert(
            &record("k2", "trinity", &["ads", "2fa"], Some(10)),
            0,
            false,
        );
        assert!(idx.size_bytes() > one);
        idx.clear();
        assert_eq!(idx.size_bytes(), 0);
    }
}
